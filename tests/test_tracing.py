"""End-to-end tests for the wired-in tracer."""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.sim.trace import Tracer
from repro.units import MS, SEC
from tests.conftest import busy


def traced_machine(categories, pcpus=2):
    tracer = Tracer(categories)
    machine = Machine(HostConfig(pcpus=pcpus), seed=1, tracer=tracer)
    domain = machine.create_domain("vm", vcpus=2)
    kernel = GuestKernel(domain)
    return machine, kernel, tracer


def test_sched_events_recorded():
    machine, kernel, tracer = traced_machine(["sched"])
    kernel.spawn(busy(100 * MS), "w")
    machine.start()
    machine.run(until=500 * MS)
    runs = tracer.count(category="sched", event="run")
    stops = tracer.count(category="sched", event="stop")
    assert runs >= 1
    assert stops >= 1
    assert abs(runs - stops) <= 2  # every run eventually stops


def test_irq_events_carry_delay():
    machine, kernel, tracer = traced_machine(["irq"])
    kernel.spawn(busy(1 * SEC), "w", pinned_to=0)
    machine.start()
    machine.run(until=10 * MS)
    channel = kernel.domain.new_event_channel("nic", bound_vcpu=0)
    channel.handler = lambda p: None
    channel.post("x")
    machine.run(until=machine.sim.now + 10 * MS)
    posts = list(tracer.select(category="irq", event="post"))
    delivers = list(tracer.select(category="irq", event="deliver"))
    assert posts and delivers
    assert delivers[-1].details["delay_ns"] >= 0
    assert delivers[-1].details["kind"] == "evtchn"


def test_vscale_events_recorded():
    machine, kernel, tracer = traced_machine(["vscale"])
    for index in range(2):
        kernel.spawn(busy(5 * SEC), f"w{index}")
    machine.start()
    machine.run(until=50 * MS)
    balancer = VScaleBalancer(kernel)
    balancer.freeze(1)
    machine.run(until=machine.sim.now + 50 * MS)
    balancer.unfreeze(1)
    machine.run(until=machine.sim.now + 50 * MS)
    assert tracer.count(category="vscale", event="freeze_mark") == 1
    assert tracer.count(category="vscale", event="unfreeze") == 1


def test_guest_migration_events():
    machine, kernel, tracer = traced_machine(["guest"])
    for index in range(4):
        kernel.spawn(busy(2 * SEC), f"w{index}")
    machine.start()
    machine.run(until=200 * MS)
    balancer = VScaleBalancer(kernel)
    balancer.freeze(1)
    machine.run(until=machine.sim.now + 100 * MS)
    migrations = list(tracer.select(category="guest", event="migrate"))
    assert migrations
    assert all(m.details["src"] != m.details["dst"] for m in migrations)


def test_default_machine_traces_nothing(monkeypatch):
    # The sanitizer deliberately swaps NULL_TRACER for a ring tracer so
    # violations carry context; this test is about the *default* machine.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = Machine(HostConfig(pcpus=1), seed=1)
    domain = machine.create_domain("vm", vcpus=1)
    kernel = GuestKernel(domain)
    kernel.spawn(busy(10 * MS), "w")
    machine.start()
    machine.run(until=100 * MS)
    assert machine.tracer.records == []
