"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(300, fired.append, "c")
    sim.schedule(100, fired.append, "a")
    sim.schedule(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 300


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(50, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    event = sim.schedule(1, fired.append, "x")
    sim.run()
    event.cancel()
    assert fired == ["x"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.schedule(500, lambda: None)
    sim.run(until=250)
    assert sim.now == 250
    sim.run(until=600)
    assert sim.now == 600


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(300, fired.append, "late")
    sim.run(until=200)
    assert fired == ["early"]
    sim.run(until=400)
    assert fired == ["early", "late"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(10, fired.append, "second")

    sim.schedule(5, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 15


def test_zero_delay_event_fires_after_current():
    sim = Simulator()
    fired = []

    def outer():
        sim.schedule(0, fired.append, "inner")
        fired.append("outer")

    sim.schedule(1, outer)
    sim.run()
    assert fired == ["outer", "inner"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_step_fires_exactly_one():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, 1)
    sim.schedule(2, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_pending_count_and_peek():
    sim = Simulator()
    assert sim.peek_time() is None
    a = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending_count() == 2
    assert sim.peek_time() == 10
    a.cancel()
    assert sim.pending_count() == 1
    assert sim.peek_time() == 20


def test_reentrant_run_raises():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1, nested)
    with pytest.raises(SimulationError):
        sim.run()


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_firing_order_is_sorted_and_stable(delays):
    """Property: events fire sorted by time, insertion order breaking ties."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, fired.append, (delay, index))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=40),
    st.data(),
)
def test_cancellation_subset_property(delays, data):
    """Property: cancelled events never fire; all others always do."""
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for index in to_cancel:
        events[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel
