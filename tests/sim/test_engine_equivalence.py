"""Wheel-vs-heap engine equivalence.

The timer-wheel and binary-heap queues must be observationally identical:
the (time, seq) total order fully determines firing order, so any correct
priority queue produces the same simulation.  These tests drive both
engines through the same program — including cancellations, nested
scheduling, and delays spanning granule/window/far-heap boundaries — and
require identical traces.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator

#: Wheel geometry, mirrored from the engine: ~1.05 ms granules, ~268 ms window.
GRANULE = 1 << 20
WINDOW = GRANULE * 256

#: Delay pool biased towards the wheel's structural boundaries.
_boundary_delays = st.sampled_from(
    [
        0,
        1,
        GRANULE - 1,
        GRANULE,
        GRANULE + 1,
        WINDOW - GRANULE,
        WINDOW - 1,
        WINDOW,
        WINDOW + 1,
        3 * WINDOW + 12345,
    ]
)
_delays = st.one_of(
    st.integers(min_value=0, max_value=4 * WINDOW),
    _boundary_delays,
)


def _run_program(engine, schedules, cancel_indices, followups):
    """Execute one schedule/cancel program, returning the full trace."""
    sim = Simulator(engine=engine)
    fired = []
    events = []

    def make_fn(label, extra_delay):
        def fn():
            fired.append((sim.now, label))
            if extra_delay is not None:
                sim.schedule(extra_delay, fired.append, (sim.now, ("nested", label)))

        return fn

    for label, (delay, followup_slot) in enumerate(schedules):
        extra = followups[followup_slot] if followup_slot is not None else None
        events.append(sim.schedule(delay, make_fn(label, extra)))
    for index in cancel_indices:
        events[index % len(events)].cancel()
    sim.run()
    return fired, sim.now, sim.pending_count()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(_delays, st.one_of(st.none(), st.integers(0, 3))),
        min_size=1,
        max_size=50,
    ),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=10),
    st.tuples(_delays, _delays, _delays, _delays),
)
def test_wheel_and_heap_traces_identical(schedules, cancel_indices, followups):
    wheel = _run_program("wheel", schedules, cancel_indices, followups)
    heap = _run_program("heap", schedules, cancel_indices, followups)
    assert wheel == heap


def test_engines_agree_on_tick_chain_across_window():
    """A 1 ms tick chain walks every granule boundary across many windows."""

    def run(engine):
        sim = Simulator(engine=engine)
        fired = []

        def tick():
            fired.append(sim.now)
            if sim.now < 3 * WINDOW:
                sim.schedule(GRANULE - 7, tick)

        sim.schedule(0, tick)
        sim.run()
        return fired, sim.now

    assert run("wheel") == run("heap")


def test_engines_agree_with_interleaved_cancel_and_far_events():
    def run(engine):
        sim = Simulator(engine=engine)
        fired = []
        # A far event beyond the window, a bucket event, and a near chain
        # that cancels and reschedules the bucket event as it goes.
        far = sim.schedule(2 * WINDOW + 3, fired.append, "far")
        bucket = [sim.schedule(50 * GRANULE, fired.append, "bucket")]

        def churn(n):
            fired.append((sim.now, n))
            bucket[0].cancel()
            bucket[0] = sim.schedule(60 * GRANULE, fired.append, ("bucket", n))
            if n:
                sim.schedule(GRANULE // 3, churn, n - 1)

        sim.schedule(10, churn, 5)
        sim.run()
        assert not far.pending
        return fired, sim.now, sim.pending_count()

    assert run("wheel") == run("heap")


def test_engine_selection_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "heap")
    assert Simulator().engine == "heap"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "wheel")
    assert Simulator().engine == "wheel"
    assert Simulator(engine="heap").engine == "heap"
