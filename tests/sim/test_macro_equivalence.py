"""Macro-vs-wheel engine equivalence at the full-simulation level.

The macro engine must be *observationally invisible*: it detects
quiescent regions of a guest's tick chain — spans where the runnable set
and the pick-next outcome are provably stable — and advances them in
closed form instead of firing every 1 ms tick event.  Any divergence in
when a tick preempts, balances, or kicks nohz siblings would change
scheduling decisions and cascade through the whole run.

The property-based test here drives random (scheduler, configuration,
workload, fault-plan) draws through the wheel and macro engines and
requires bit-identical machine state: same engine-invariant checkpoint
fingerprint, same guest-visible tick counters (after ``sync_ticks``
flushes the closed-form folds), same thread/vCPU states and vruntimes,
same fault-injection decisions.  The directed tests pin the two hardest
boundary cases: freeze edges (regions torn down mid-span by Algorithm 2
reconfigurations) and scripted daemon stalls (long idle spans where the
whole tick chain is elided at once).
"""

from dataclasses import replace

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.setups import Config, ScenarioBuilder
from repro.faults import FaultConfig, FaultEvent, FaultPlan
from repro.hypervisor.schedulers import available
from repro.recovery import fingerprint, state_dict
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_DEFAULT

WARMUP_NS = 20 * MS

#: A daemon-stall-heavy plan: long stretches where the worker guest goes
#: fully idle and the macro engine elides entire tick chains at once.
STALL_PLAN = FaultPlan(
    config=FaultConfig(daemon_stall_rate=0.3, daemon_stall_periods=4),
    seed=11,
    events=(FaultEvent(at_ns=60 * MS, site="daemon_stall", magnitude=6.0),),
)
#: A mixed transient plan touching the IPI and channel fault sites whose
#: RNG draws must line up exactly across engines.
MIXED_PLAN = FaultPlan(
    config=FaultConfig(
        ipi_drop_rate=0.05,
        ipi_delay_rate=0.1,
        channel_fail_rate=0.05,
        daemon_jitter_rate=0.1,
    ),
    seed=23,
)


def _observe(scenario) -> dict:
    """Everything an engine could plausibly perturb, in comparable form."""
    machine = scenario.machine
    for domain in machine.domains:
        guest = domain.guest
        if guest is not None:
            guest.sync_ticks()  # flush closed-form tick folds
    worker = scenario.worker_kernel
    stats = machine.faults.stats if machine.faults is not None else None
    return {
        "now": machine.sim.now,
        "fingerprint": fingerprint(state_dict(machine)),
        "worker_ticks": [int(c) for c in worker.timer_interrupts],
        "worker_threads": sorted(
            (t.name, t.done, t.vcpu_index, t.vruntime) for t in worker.threads
        ),
        "freeze_mask": sorted(worker.cpu_freeze_mask),
        "vcpu_states": [
            f"{d.name}/{v.index}:{v.state.name}"
            for d in machine.domains
            for v in d.vcpus
        ],
        "fault_stats": None if stats is None else repr(stats),
    }


def _run(engine, *, scheduler, config, seed, vcpus, pcpus, plan,
         until_ns, with_app) -> dict:
    previous = os.environ.get("REPRO_SIM_ENGINE")
    os.environ["REPRO_SIM_ENGINE"] = engine
    try:
        scenario = (
            ScenarioBuilder(seed=seed, pcpus=pcpus, scheduler=scheduler)
            .with_worker_vm(vcpus)
            .with_config(config)
            .with_faults(plan)
            .build()
        )
        scenario.start()
        scenario.run(WARMUP_NS)
        if with_app:
            profile = replace(NPB_PROFILES["cg"], iterations=2)
            app = NPBApp(
                scenario.worker_kernel,
                profile,
                SPINCOUNT_DEFAULT,
                SeedSequenceFactory(seed).stream("npb", "normal"),
                kernel_lock=scenario.worker_kernel_lock,
            )
            app.launch()
        scenario.run(until_ns)
        return _observe(scenario)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_ENGINE", None)
        else:
            os.environ["REPRO_SIM_ENGINE"] = previous


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler=st.sampled_from(available()),
    config=st.sampled_from(
        [Config.VANILLA, Config.VSCALE, Config.VSCALE_PVLOCK]
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    vcpus=st.sampled_from([2, 4]),
    plan=st.sampled_from([None, STALL_PLAN, MIXED_PLAN]),
    until_ms=st.sampled_from([90, 131, 170]),
    with_app=st.booleans(),
)
def test_macro_is_bit_identical_to_wheel(
    scheduler, config, seed, vcpus, plan, until_ms, with_app
):
    kwargs = dict(
        scheduler=scheduler,
        config=config,
        seed=seed,
        vcpus=vcpus,
        pcpus=4,
        plan=plan,
        until_ns=until_ms * MS,
        with_app=with_app,
    )
    assert _run("wheel", **kwargs) == _run("macro", **kwargs)


def test_macro_identical_across_freeze_edges():
    """An overcommitted vScale worker (4 vCPUs on a 2-pCPU pool) forces
    the daemon through freeze/unfreeze reconfigurations, tearing down
    macro regions mid-span on the target vCPU and re-arming them on the
    survivors.  The run must still be bit-identical — and must actually
    have exercised a freeze, or the test is vacuous."""
    kwargs = dict(
        scheduler=None,
        config=Config.VSCALE,
        seed=5,
        vcpus=4,
        pcpus=2,
        plan=None,
        until_ns=400 * MS,
        with_app=True,
    )
    wheel = _run("wheel", **kwargs)
    macro = _run("macro", **kwargs)
    assert wheel == macro
    assert wheel["freeze_mask"], "scenario never froze a vCPU (vacuous)"


def test_macro_identical_under_scripted_daemon_stalls():
    """Scripted + stochastic daemon stalls leave the worker guest idle
    for multi-period spans — exactly the infinite-horizon regions the
    macro engine elides wholesale — and their fault-RNG draws must land
    on the same reads under both engines."""
    kwargs = dict(
        scheduler=None,
        config=Config.VSCALE,
        seed=9,
        vcpus=4,
        pcpus=4,
        plan=STALL_PLAN,
        until_ns=250 * MS,
        with_app=True,
    )
    wheel = _run("wheel", **kwargs)
    macro = _run("macro", **kwargs)
    assert wheel == macro
    assert wheel["fault_stats"] is not None
    assert "daemon_stalls=0" not in wheel["fault_stats"], (
        "no stall ever injected (vacuous)"
    )
