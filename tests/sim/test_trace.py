"""Tests for the structured tracer."""

import pytest

from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer


def test_disabled_category_is_noop():
    tracer = Tracer(["sched"])
    tracer.emit(10, "guest", "migrate", "t1")
    assert tracer.records == []
    tracer.emit(10, "sched", "switch", "v0")
    assert len(tracer.records) == 1


def test_unknown_category_rejected():
    with pytest.raises(ValueError):
        Tracer(["nonsense"])
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.enable("nonsense")


def test_enable_disable_roundtrip():
    tracer = Tracer()
    assert not tracer.enabled_for("irq")
    tracer.enable("irq")
    assert tracer.enabled_for("irq")
    tracer.disable("irq")
    assert not tracer.enabled_for("irq")


def test_capacity_bounds_and_counts_drops():
    tracer = Tracer(["sched"], capacity=3)
    for i in range(5):
        tracer.emit(i, "sched", "tick", "v0")
    assert len(tracer.records) == 3
    assert tracer.dropped == 2


def test_select_filters():
    tracer = Tracer(["sched", "irq"])
    tracer.emit(1, "sched", "switch", "v0")
    tracer.emit(2, "irq", "post", "v1", kind="resched")
    tracer.emit(3, "sched", "switch", "v1")
    assert tracer.count(category="sched") == 2
    assert tracer.count(event="post") == 1
    assert tracer.count(subject="v1") == 2
    assert tracer.count(since_ns=2) == 2


def test_sinks_receive_records():
    tracer = Tracer(["vscale"])
    seen = []
    tracer.sinks.append(seen.append)
    tracer.emit(5, "vscale", "freeze", "worker/v3")
    assert len(seen) == 1
    assert seen[0].event == "freeze"


def test_record_renders_readably():
    record = TraceRecord(2_500_000, "sched", "switch", "v0", {"to": "v1"})
    text = str(record)
    assert "sched/switch" in text
    assert "to=v1" in text


def test_null_tracer_swallows_everything():
    NULL_TRACER.emit(1, "sched", "switch", "x")
    assert NULL_TRACER.records == []


def test_clear_resets():
    tracer = Tracer(["sched"], capacity=1)
    tracer.emit(1, "sched", "a", "x")
    tracer.emit(2, "sched", "b", "x")
    assert tracer.dropped == 1
    tracer.clear()
    assert tracer.records == [] and tracer.dropped == 0
