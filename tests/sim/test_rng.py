"""Tests for the seeded RNG plumbing."""

import numpy as np

from repro.sim.rng import SeedSequenceFactory, jittered


def test_same_name_same_stream():
    a = SeedSequenceFactory(42)
    b = SeedSequenceFactory(42)
    xs = a.generator("workload").random(8)
    ys = b.generator("workload").random(8)
    assert np.allclose(xs, ys)


def test_same_name_returns_same_generator_instance():
    factory = SeedSequenceFactory(1)
    assert factory.generator("x") is factory.generator("x")


def test_different_names_independent():
    factory = SeedSequenceFactory(42)
    xs = factory.generator("a").random(8)
    ys = factory.generator("b").random(8)
    assert not np.allclose(xs, ys)


def test_different_seeds_differ():
    xs = SeedSequenceFactory(1).generator("w").random(8)
    ys = SeedSequenceFactory(2).generator("w").random(8)
    assert not np.allclose(xs, ys)


def test_adding_stream_does_not_perturb_others():
    """The name-keyed derivation means new consumers are non-invasive."""
    a = SeedSequenceFactory(7)
    before = a.generator("stable").random(4)
    b = SeedSequenceFactory(7)
    b.generator("newcomer").random(4)  # drawn first
    after = b.generator("stable").random(4)
    assert np.allclose(before, after)


def test_spawn_children_are_deterministic_and_distinct():
    parent = SeedSequenceFactory(5)
    child1 = parent.spawn("sub")
    child2 = SeedSequenceFactory(5).spawn("sub")
    assert child1.seed == child2.seed
    assert child1.seed != parent.seed
    other = parent.spawn("other")
    assert other.seed != child1.seed


def test_jittered_positive_and_near_mean():
    rng = np.random.default_rng(0)
    samples = [jittered(rng, 1000, 0.05) for _ in range(500)]
    assert all(s >= 1 for s in samples)
    assert abs(np.mean(samples) - 1000) < 25


def test_jittered_clamps_tiny_means():
    rng = np.random.default_rng(0)
    assert all(jittered(rng, 1, 5.0) >= 1 for _ in range(100))


# ----------------------------------------------------------------------
# Buffered streams: bit-identity with unbuffered draws
# ----------------------------------------------------------------------

def _raw(name="s", seed=9):
    """A generator identical to the one backing stream(name) of seed."""
    return SeedSequenceFactory(seed).generator(name)


def test_stream_scalar_normal_bit_identical_across_refills():
    stream = SeedSequenceFactory(9).stream("s", "normal", block=4)
    rng = _raw()
    ours = [stream.normal(250.0, 12.5) for _ in range(11)]
    ref = [rng.normal(250.0, 12.5) for _ in range(11)]
    assert ours == ref  # exact equality, not allclose


def test_stream_scalar_exponential_bit_identical():
    stream = SeedSequenceFactory(9).stream("s", "exponential", block=4)
    rng = _raw()
    ours = [stream.exponential(1e6) for _ in range(11)]
    ref = [rng.exponential(1e6) for _ in range(11)]
    assert ours == ref


def test_stream_scalar_random_bit_identical():
    stream = SeedSequenceFactory(9).stream("s", "random", block=4)
    rng = _raw()
    assert [stream.random() for _ in range(11)] == [rng.random() for _ in range(11)]


def test_stream_vector_normal_bit_identical():
    stream = SeedSequenceFactory(9).stream("s", "normal", block=4)
    rng = _raw()
    ours = stream.normal(5.0, 2.0, size=10)
    ref = rng.normal(5.0, 2.0, size=10)
    assert np.array_equal(ours, ref)
    # and the stream position stays aligned for subsequent scalars
    assert stream.normal(5.0, 2.0) == rng.normal(5.0, 2.0)


def test_stream_batch_apis_bit_identical():
    factory = SeedSequenceFactory(9)
    assert np.array_equal(
        factory.stream("n", "normal").normal_batch(100.0, 7.0, 9),
        _raw("n").normal(100.0, 7.0, size=9),
    )
    assert np.array_equal(
        factory.stream("e", "exponential").exponential_batch(3.0, 9),
        _raw("e").exponential(3.0, size=9),
    )


def test_stream_mixed_scalar_and_vector_stay_aligned():
    stream = SeedSequenceFactory(9).stream("s", "normal", block=8)
    rng = _raw()
    ours = [stream.normal(1.0, 0.5)]
    ref = [rng.normal(1.0, 0.5)]
    ours.extend(stream.normal(1.0, 0.5, size=13))
    ref.extend(rng.normal(1.0, 0.5, size=13))
    ours.append(stream.normal(1.0, 0.5))
    ref.append(rng.normal(1.0, 0.5))
    assert ours == ref


def test_jittered_identical_on_stream_and_generator():
    stream = SeedSequenceFactory(9).stream("s", "normal", block=4)
    rng = _raw()
    assert [jittered(stream, 1000, 0.06) for _ in range(20)] == [
        jittered(rng, 1000, 0.06) for _ in range(20)
    ]


def test_stream_is_cached_per_name():
    factory = SeedSequenceFactory(1)
    assert factory.stream("x", "normal") is factory.stream("x", "normal")


def test_stream_kind_conflicts_raise():
    import pytest

    factory = SeedSequenceFactory(1)
    factory.stream("x", "normal")
    with pytest.raises(RuntimeError):
        factory.stream("x", "exponential")
    with pytest.raises(RuntimeError):
        factory.stream("x", "normal").exponential(1.0)


def test_stream_and_raw_generator_are_mutually_exclusive():
    import pytest

    factory = SeedSequenceFactory(1)
    factory.stream("buffered", "normal")
    with pytest.raises(RuntimeError):
        factory.generator("buffered")
    factory.generator("raw")
    with pytest.raises(RuntimeError):
        factory.stream("raw", "normal")
