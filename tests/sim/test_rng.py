"""Tests for the seeded RNG plumbing."""

import numpy as np

from repro.sim.rng import SeedSequenceFactory, jittered


def test_same_name_same_stream():
    a = SeedSequenceFactory(42)
    b = SeedSequenceFactory(42)
    xs = a.generator("workload").random(8)
    ys = b.generator("workload").random(8)
    assert np.allclose(xs, ys)


def test_same_name_returns_same_generator_instance():
    factory = SeedSequenceFactory(1)
    assert factory.generator("x") is factory.generator("x")


def test_different_names_independent():
    factory = SeedSequenceFactory(42)
    xs = factory.generator("a").random(8)
    ys = factory.generator("b").random(8)
    assert not np.allclose(xs, ys)


def test_different_seeds_differ():
    xs = SeedSequenceFactory(1).generator("w").random(8)
    ys = SeedSequenceFactory(2).generator("w").random(8)
    assert not np.allclose(xs, ys)


def test_adding_stream_does_not_perturb_others():
    """The name-keyed derivation means new consumers are non-invasive."""
    a = SeedSequenceFactory(7)
    before = a.generator("stable").random(4)
    b = SeedSequenceFactory(7)
    b.generator("newcomer").random(4)  # drawn first
    after = b.generator("stable").random(4)
    assert np.allclose(before, after)


def test_spawn_children_are_deterministic_and_distinct():
    parent = SeedSequenceFactory(5)
    child1 = parent.spawn("sub")
    child2 = SeedSequenceFactory(5).spawn("sub")
    assert child1.seed == child2.seed
    assert child1.seed != parent.seed
    other = parent.spawn("other")
    assert other.seed != child1.seed


def test_jittered_positive_and_near_mean():
    rng = np.random.default_rng(0)
    samples = [jittered(rng, 1000, 0.05) for _ in range(500)]
    assert all(s >= 1 for s in samples)
    assert abs(np.mean(samples) - 1000) < 25


def test_jittered_clamps_tiny_means():
    rng = np.random.default_rng(0)
    assert all(jittered(rng, 1, 5.0) >= 1 for _ in range(100))
