"""Stress and fuzz tests: randomized workload mixtures and reconfiguration
churn must never violate the stack's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.balancer import VScaleBalancer
from repro.guest.threads import ThreadState
from repro.hypervisor.domain import VCPUState
from repro.units import MS, SEC
from repro.workloads.synthetic import ForkJoinSpec, LoadMix
from tests.conftest import StackBuilder


def check_invariants(builder, now):
    """Structural invariants that must hold at any quiescent point."""
    machine = builder.machine
    # 1. A pCPU's current vCPU must believe it is RUNNING on that pCPU.
    for pcpu in machine.pool:
        if pcpu.current is not None:
            assert pcpu.current.state is VCPUState.RUNNING
            assert pcpu.current.pcpu is pcpu
    # 2. Every RUNNING vCPU is some pCPU's current.
    currents = {pcpu.current for pcpu in machine.pool if pcpu.current}
    for domain in machine.domains:
        for vcpu in domain.vcpus:
            if vcpu.state is VCPUState.RUNNING:
                assert vcpu in currents
    # 3. vCPU time accounting closes.
    for domain in machine.domains:
        for vcpu in domain.vcpus:
            vcpu.timer.flush(now)
            assert sum(vcpu.timer.totals.values()) == now
    # 4. Guest-side: no duplicate thread placement; frozen queues empty.
    for kernel in builder.kernels.values():
        seen = set()
        for rq in kernel.runqueues:
            for thread in rq.ready + ([rq.current] if rq.current else []):
                assert thread.tid not in seen, "thread on two runqueues"
                seen.add(thread.tid)
        for index in kernel.cpu_freeze_mask:
            vcpu = kernel.domain.vcpus[index]
            if vcpu.state is VCPUState.FROZEN:
                assert kernel.runqueues[index].load() == 0
        # 5. Live threads are consistent with their queues.
        for thread in kernel.threads:
            if thread.state is ThreadState.READY:
                assert thread in kernel.runqueues[thread.vcpu_index].ready


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    hogs=st.integers(0, 3),
    waves=st.integers(0, 2),
    fj_threads=st.integers(1, 4),
    fj_spin=st.sampled_from([0, 300_000, 10**12]),
)
def test_random_mixtures_preserve_invariants(seed, hogs, waves, fj_threads, fj_spin):
    builder = StackBuilder(pcpus=2, seed=seed)
    kernel = builder.guest("vm", vcpus=2)
    rival = builder.guest("rival", vcpus=2)
    rng = np.random.default_rng(seed)
    mix = LoadMix(kernel, rng)
    if hogs:
        mix.add_hogs(hogs, total_ns=300 * MS)
    if waves:
        mix.add_on_off(waves, busy_ns=40 * MS, idle_ns=60 * MS)
    mix.add_fork_join(
        ForkJoinSpec(
            threads=fj_threads, iterations=4, phase_ns=5 * MS, spin_budget_ns=fj_spin
        )
    )
    LoadMix(rival, rng).add_hogs(2, total_ns=400 * MS)
    machine = builder.start()
    for step in range(1, 6):
        machine.run(until=step * 300 * MS)
        check_invariants(builder, machine.sim.now)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    freeze_order=st.permutations([1, 2, 3]),
    churn=st.integers(1, 6),
)
def test_freeze_churn_preserves_invariants(seed, freeze_order, churn):
    """Random freeze/unfreeze sequences against a busy guest."""
    builder = StackBuilder(pcpus=4, seed=seed)
    kernel = builder.guest("vm", vcpus=4)
    rng = np.random.default_rng(seed)
    LoadMix(kernel, rng).add_hogs(4, total_ns=30 * SEC)
    machine = builder.start()
    machine.run(until=50 * MS)
    balancer = VScaleBalancer(kernel)
    for round_index in range(churn):
        for index in freeze_order:
            balancer.freeze(index)
            machine.run(until=machine.sim.now + 10 * MS)
        check_invariants(builder, machine.sim.now)
        for index in reversed(freeze_order):
            balancer.unfreeze(index)
            machine.run(until=machine.sim.now + 10 * MS)
        check_invariants(builder, machine.sim.now)
    # All four hogs still alive and placed.
    alive = [t for t in kernel.threads if not t.done]
    assert len(alive) == 4


def test_long_run_event_queue_does_not_leak():
    """After the workload drains, the pending event count stays bounded
    (ticks and daemon timers only — no orphaned action events)."""
    builder = StackBuilder(pcpus=2, seed=9)
    kernel = builder.guest("vm", vcpus=2)
    rng = np.random.default_rng(9)
    LoadMix(kernel, rng).add_hogs(2, total_ns=200 * MS)
    machine = builder.start()
    machine.run(until=5 * SEC)
    # Workload done, guests idle: only the hypervisor tick (and its
    # bounded helpers) should remain.
    assert machine.sim.pending_count() < 20
