"""Tests for the fault injector's decision logic and fault-site wiring."""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.core.channel import VScaleChannel
from repro.faults import (
    ChannelReadError,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FreezeFailure,
    NO_FAULTS,
)
from repro.guest.actions import BlockOn, Compute, WaitQueue
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.irq import IRQClass
from repro.hypervisor.machine import Machine
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def drive(injector: FaultInjector, n: int = 50) -> list:
    """A fixed query sequence exercising every decision site."""
    decisions = []
    for i in range(n):
        decisions.append(injector.ipi_fault(IRQClass.RESCHED_IPI))
        decisions.append(injector.channel_fault())
        decisions.append(injector.freeze_fault())
        decisions.append(injector.daemon_delay_ns(i * 10 * MS, 10 * MS))
        decisions.append(injector.dom0_factor(i * 10 * MS))
    return decisions


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(FaultConfig.scaled(0.3), seed=42)
        first = drive(FaultInjector(plan))
        second = drive(FaultInjector(plan))
        assert first == second

    def test_same_plan_same_stats(self):
        plan = FaultPlan(FaultConfig.scaled(0.3), seed=42)
        a, b = FaultInjector(plan), FaultInjector(plan)
        drive(a)
        drive(b)
        assert a.stats.to_dict() == b.stats.to_dict()

    def test_different_seed_different_decisions(self):
        plan = FaultPlan(FaultConfig.scaled(0.3), seed=42)
        assert drive(FaultInjector(plan)) != drive(FaultInjector(plan.with_seed(43)))

    def test_zero_plan_injects_nothing(self):
        injector = FaultInjector(NO_FAULTS)
        decisions = drive(injector)
        assert all(d in (None, False, 0, 1.0) for d in decisions)
        assert injector.stats.total_injected == 0


class TestIPISite:
    def test_only_resched_ipis_targeted(self):
        injector = FaultInjector(FaultPlan(FaultConfig(ipi_drop_rate=1.0)))
        assert injector.ipi_fault(IRQClass.CALL_IPI) is None
        assert injector.ipi_fault(IRQClass.EVTCHN) is None
        assert injector.ipi_fault(IRQClass.RESCHED_IPI) == ("drop", 0)
        assert injector.stats.ipis_dropped == 1

    def test_delay_is_positive(self):
        injector = FaultInjector(FaultPlan(FaultConfig(ipi_delay_rate=1.0)))
        kind, delay = injector.ipi_fault(IRQClass.RESCHED_IPI)
        assert kind == "delay"
        assert delay >= 1
        assert injector.stats.ipis_delayed == 1

    def _ping_pong(self, config: FaultConfig):
        """A waker on vCPU0 repeatedly firing a sleeper pinned to vCPU1 —
        every wake crosses vCPUs, so every round sends a reschedule IPI."""
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        builder.machine.install_faults(FaultPlan(config))
        queue = WaitQueue("q")
        queue.kernel = kernel
        progress = []

        def sleeper():
            for _ in range(20):
                yield BlockOn(queue)
                yield Compute(1 * MS)
                progress.append(kernel.sim.now)

        def waker():
            for _ in range(20):
                yield Compute(5 * MS)
                queue.fire_one()

        kernel.spawn(sleeper(), "sleeper", pinned_to=1)
        kernel.spawn(waker(), "waker", pinned_to=0)
        machine = builder.start()
        machine.run(until=1 * SEC)
        return machine, progress

    def test_machine_marks_dropped_ipis(self):
        machine, progress = self._ping_pong(FaultConfig(ipi_drop_rate=1.0))
        assert machine.faults.stats.ipis_dropped > 0
        # Despite every reschedule IPI being lost, the hypervisor-side wake
        # still happens and the sleeper keeps making progress.
        assert len(progress) == 20

    def test_machine_delayed_ipis_still_arrive(self):
        machine, progress = self._ping_pong(FaultConfig(ipi_delay_rate=1.0))
        assert machine.faults.stats.ipis_delayed > 0
        assert len(progress) == 20


class TestChannelSite:
    def _channel(self, config: FaultConfig):
        machine = Machine(HostConfig(pcpus=2), seed=1)
        domain = machine.create_domain("vm", vcpus=2)
        GuestKernel(domain)
        machine.install_vscale()
        machine.install_faults(FaultPlan(config))
        machine.start()
        machine.run(until=50 * MS)
        return machine, VScaleChannel(domain)

    def test_fail_raises_and_counts(self):
        machine, channel = self._channel(FaultConfig(channel_fail_rate=1.0))
        with pytest.raises(ChannelReadError) as exc_info:
            channel.read_info()
        assert exc_info.value.cost_ns > 0
        assert channel.failed_reads == 1
        assert machine.faults.stats.channel_failures == 1

    def test_stale_replays_oldest_reading(self):
        machine, channel = self._channel(FaultConfig(channel_stale_rate=1.0))
        first = channel.read_info()
        assert not first.stale  # no history yet: falls back to a fresh read
        machine.run(until=machine.sim.now + 50 * MS)
        second = channel.read_info()
        assert second.stale
        assert second.published_at_ns == first.published_at_ns
        assert channel.stale_reads == 1


class TestBalancerSite:
    def test_freeze_failure_charges_cost_but_leaves_state(self):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        builder.machine.install_faults(FaultPlan(FaultConfig(freeze_fail_rate=1.0)))
        for index in range(4):
            kernel.spawn(busy(10 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=50 * MS)
        balancer = VScaleBalancer(kernel)
        with pytest.raises(FreezeFailure) as exc_info:
            balancer.freeze(3)
        assert exc_info.value.op == "freeze"
        assert exc_info.value.cost_ns > 0
        assert balancer.failed_ops == 1
        assert 3 not in kernel.cpu_freeze_mask
        assert machine.faults.stats.freeze_failures == 1


class TestDom0Site:
    def test_burst_multiplies_sweep_cost(self):
        injector = FaultInjector(
            FaultPlan(FaultConfig(dom0_burst_rate=1.0, dom0_burst_factor=8.0))
        )
        assert injector.dom0_factor() == 8.0
        assert injector.stats.dom0_bursts == 1

    def test_scripted_burst_fires_once(self):
        plan = FaultPlan(
            events=(FaultEvent(at_ns=100 * MS, site="dom0_burst", magnitude=4.0),)
        )
        injector = FaultInjector(plan)
        assert injector.dom0_factor(100 * MS) == 4.0
        assert injector.dom0_factor(100 * MS) == 1.0  # consumed
        assert injector.stats.dom0_bursts == 1


class TestDaemonTimerSite:
    def test_scripted_stall_fires_once(self):
        plan = FaultPlan(
            events=(
                FaultEvent(at_ns=25 * MS, site="daemon_stall", magnitude=3.0),
            )
        )
        injector = FaultInjector(plan)
        assert injector.daemon_delay_ns(20 * MS, 10 * MS) == 3 * 10 * MS
        assert injector.daemon_delay_ns(20 * MS, 10 * MS) == 0
        assert injector.stats.daemon_stalls == 1

    def test_scripted_stall_duration_overrides_magnitude(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    at_ns=5 * MS, site="daemon_stall",
                    duration_ns=7 * MS, magnitude=3.0,
                ),
            )
        )
        injector = FaultInjector(plan)
        assert injector.daemon_delay_ns(0, 10 * MS) == 7 * MS

    def test_stochastic_stall_is_whole_periods(self):
        config = FaultConfig(daemon_stall_rate=1.0, daemon_stall_periods=4)
        injector = FaultInjector(FaultPlan(config))
        assert injector.daemon_delay_ns(0, 10 * MS) == 4 * 10 * MS
        assert injector.stats.daemon_stalls == 1
