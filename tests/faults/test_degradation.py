"""Tests for the control loop's graceful-degradation paths under faults."""

from repro.core.daemon import DaemonConfig, VScaleDaemon
from repro.faults import FaultConfig, FaultPlan
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def build_faulty(config: FaultConfig, daemon_config=None, seed=7, pcpus=4):
    """The contended daemon harness with a fault plan layered on top."""
    builder = StackBuilder(pcpus=pcpus)
    worker = builder.guest("worker", vcpus=4, weight=256)
    rival = builder.guest("rival", vcpus=pcpus, weight=256)
    builder.machine.install_vscale()
    builder.machine.install_faults(FaultPlan(config, seed=seed))
    daemon = VScaleDaemon(worker, daemon_config)
    daemon.install()
    return builder, worker, rival, daemon


def saturate(worker, rival, seconds=30):
    for index in range(4):
        rival.spawn(busy(seconds * SEC), f"r{index}")
    for index in range(4):
        worker.spawn(busy(seconds * SEC), f"w{index}")


class TestReadRetry:
    def test_total_read_failure_degrades_to_holding(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(channel_fail_rate=1.0)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=2 * SEC)
        # Every read (and every retry) fails: the daemon abandons each
        # period, holds the boot-time count, and never deadlocks.
        assert daemon.stats.read_failures > 0
        assert daemon.stats.read_retries > 0
        assert daemon.stats.read_abandons > 0
        assert daemon.reconfigurations == 0
        assert worker.online_vcpus == 4

    def test_partial_failure_recovers_via_retry(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(channel_fail_rate=0.5)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=4 * SEC)
        assert daemon.stats.read_failures > 0
        assert daemon.stats.read_retries > 0
        # Retries rescue enough periods for the loop to keep scaling.
        assert daemon.reconfigurations >= 1
        assert worker.online_vcpus <= 3

    def test_retry_knob_zero_abandons_immediately(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(channel_fail_rate=1.0),
            DaemonConfig(max_read_retries=0),
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert daemon.stats.read_retries == 0
        assert daemon.stats.read_abandons > 0


class TestStalenessGuard:
    def test_stale_floods_trigger_holds_when_hardened(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(channel_stale_rate=1.0),
            DaemonConfig.hardened(),
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=4 * SEC)
        assert daemon.stats.stale_reads > 0
        # The replayed snapshot's publish stamp ages past 5 periods (the
        # history holds 8 reads) and the guard starts holding.
        assert daemon.stats.stale_holds > 0

    def test_unhardened_daemon_acts_on_stale_data(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(channel_stale_rate=1.0)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert daemon.stats.stale_reads > 0
        assert daemon.stats.stale_holds == 0  # guard disabled by default


class TestWatchdog:
    def test_stalls_fire_watchdog_when_hardened(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(daemon_stall_rate=1.0),
            DaemonConfig.hardened(),
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert daemon.stats.watchdog_resyncs > 0
        assert daemon.stats.missed_periods > 0

    def test_watchdog_off_by_default(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(daemon_stall_rate=1.0)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert daemon.stats.watchdog_resyncs == 0


class TestFreezeFailures:
    def test_loop_survives_transient_freeze_failures(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(freeze_fail_rate=0.7)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=4 * SEC)
        assert daemon.stats.reconfig_failures > 0
        assert daemon.balancer.failed_ops > 0
        # Enough syscalls get through for scaling to still happen.
        assert daemon.reconfigurations >= 1


class TestLostIPIRecovery:
    def test_freeze_completes_despite_dropped_ipis(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(ipi_drop_rate=1.0)
        )
        saturate(worker, rival)
        machine = builder.start()
        machine.run(until=2 * SEC)
        # The freeze-notify IPI is always lost; the tick-path recovery
        # still migrates threads off masked vCPUs so freezes complete.
        assert daemon.reconfigurations >= 1
        assert worker.online_vcpus <= 3
        from repro.hypervisor.domain import VCPUState

        for index in worker.cpu_freeze_mask:
            vcpu = worker.domain.vcpus[index]
            assert vcpu.state is VCPUState.FROZEN or vcpu.freeze_pending


class TestDwellHysteresis:
    def test_fast_reversal_suppressed(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(),  # no stochastic faults needed: drive _decide directly
            DaemonConfig(shrink_patience=1, dwell_ns=50 * MS),
        )
        daemon.disable()  # drive _decide by hand, not from the live loop
        builder.start()
        steps = daemon._decide(2)
        assert steps and all(freeze for _, freeze in steps)
        for index, _ in steps:
            worker.cpu_freeze_mask.add(index)
        # Reversing within the dwell window is flapping: suppressed.
        assert daemon._decide(4) == []
        assert daemon.stats.flaps_suppressed == 1
        assert daemon.stats.direction_flaps == 0

    def test_reversal_allowed_after_dwell(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(),
            DaemonConfig(shrink_patience=1, dwell_ns=50 * MS),
        )
        daemon.disable()
        machine = builder.start()
        daemon._decide(2)
        worker.cpu_freeze_mask.add(3)
        machine.run(until=60 * MS)
        steps = daemon._decide(4)
        assert steps == [(3, False)]
        assert daemon.stats.direction_flaps == 1
        assert daemon.stats.flaps_suppressed == 0

    def test_no_dwell_counts_flaps_without_suppressing(self):
        builder, worker, rival, daemon = build_faulty(
            FaultConfig(),
            DaemonConfig(shrink_patience=1),  # dwell_ns=0
        )
        daemon.disable()
        builder.start()
        daemon._decide(2)
        worker.cpu_freeze_mask.add(3)
        steps = daemon._decide(4)
        assert steps == [(3, False)]
        assert daemon.stats.direction_flaps == 1
        assert daemon.stats.flaps_suppressed == 0
