"""FaultPlan JSON round-trip: serialize, reload, byte-identical replay.

A chaos schedule must be shippable — written next to a failing run and
replayed elsewhere — so ``FaultPlan.to_json``/``from_json`` must be a
lossless pair for every plan the generator can produce, and malformed
input must fail loudly rather than inject a subtly different schedule.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    SCRIPTED_SITES,
    FaultConfig,
    FaultEvent,
    FaultPlan,
    generate_plan,
)
from repro.units import MS, SEC

_sites = st.sampled_from(SCRIPTED_SITES)
_events = st.builds(
    FaultEvent,
    at_ns=st.integers(min_value=0, max_value=10 * SEC),
    site=_sites,
    duration_ns=st.integers(min_value=0, max_value=SEC),
    magnitude=st.integers(min_value=0, max_value=7).map(float),
)
_configs = st.builds(
    FaultConfig,
    daemon_crash_rate=st.floats(min_value=0.0, max_value=1.0),
    balancer_outage_rate=st.floats(min_value=0.0, max_value=1.0),
    daemon_restart_delay_ns=st.integers(min_value=1, max_value=SEC),
    balancer_outage_periods=st.integers(min_value=1, max_value=10),
)


@given(config=_configs, seed=st.integers(min_value=0, max_value=2**32 - 1),
       events=st.lists(_events, max_size=8))
@settings(max_examples=50, deadline=None)
def test_roundtrip_is_lossless(config, seed, events):
    plan = FaultPlan(config, seed=seed, events=sorted(events, key=lambda e: e.at_ns))
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.config == plan.config
    assert restored.seed == plan.seed
    assert restored.events == plan.events
    # And the round-trip is a fixed point: same JSON bytes again.
    assert restored.to_json() == plan.to_json()


def test_generated_plan_roundtrips():
    plan = generate_plan(
        17, 4 * SEC, daemon_crashes=2, vcpu_hangs=2, balancer_outages=1
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan


def test_json_shape_is_stable():
    plan = generate_plan(5, 2 * SEC, daemon_crashes=1)
    payload = json.loads(plan.to_json())
    assert set(payload) == {"config", "seed", "events"}
    assert payload["seed"] == 5
    assert payload["events"][0]["site"] == "daemon_crash"


@pytest.mark.parametrize(
    "text",
    [
        "not json",
        "[1, 2, 3]",
        json.dumps({"seed": 1}),
        json.dumps({"config": {"no_such_rate": 1.0}, "seed": 1, "events": []}),
        json.dumps({"config": {}, "seed": 1, "events": [{"site": "daemon_crash"}]}),
        json.dumps({"config": {}, "seed": 1, "events": ["nope"]}),
    ],
)
def test_malformed_json_raises(text):
    with pytest.raises(ValueError):
        FaultPlan.from_json(text)


def test_scaled_keeps_crash_sites_quiet():
    """`scaled()` drives the legacy rate matrix only: crash-stop sites
    stay scripted-only so existing fault goldens cannot drift."""
    config = FaultConfig.scaled(0.1)
    assert config.daemon_crash_rate == 0.0
    assert config.balancer_outage_rate == 0.0
