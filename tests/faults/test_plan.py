"""Tests for FaultConfig / FaultEvent / FaultPlan validation and shape."""

import pytest

from repro.faults import NO_FAULTS, FaultConfig, FaultEvent, FaultPlan
from repro.units import MS


class TestFaultConfig:
    def test_default_injects_nothing(self):
        config = FaultConfig()
        assert not config.any_enabled
        assert config.describe() == "no faults"

    @pytest.mark.parametrize(
        "field", [
            "ipi_drop_rate", "ipi_delay_rate", "channel_fail_rate",
            "channel_stale_rate", "daemon_jitter_rate", "daemon_stall_rate",
            "freeze_fail_rate", "dom0_burst_rate",
        ],
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: -0.1})
        assert getattr(FaultConfig(**{field: 0.5}), field) == 0.5

    @pytest.mark.parametrize(
        "field,bad", [
            ("ipi_delay_mean_ns", 0),
            ("daemon_jitter_mean_ns", -1),
            ("daemon_stall_periods", 0),
            ("dom0_burst_factor", 0.5),
        ],
    )
    def test_magnitudes_validated(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: bad})

    def test_scaled_profile(self):
        config = FaultConfig.scaled(0.1)
        assert config.any_enabled
        assert config.channel_fail_rate == pytest.approx(0.1)
        # Whole-period faults are derated.
        assert config.ipi_drop_rate == pytest.approx(0.05)
        assert config.daemon_stall_rate == pytest.approx(0.025)

    def test_scaled_zero_is_inert(self):
        assert not FaultConfig.scaled(0.0).any_enabled

    def test_scaled_overrides(self):
        config = FaultConfig.scaled(0.1, freeze_fail_rate=0.9)
        assert config.freeze_fail_rate == pytest.approx(0.9)

    def test_scaled_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultConfig.scaled(1.5)

    def test_describe_lists_enabled_sites(self):
        text = FaultConfig(ipi_drop_rate=0.25).describe()
        assert text == "ipi_drop=0.25"


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at_ns=-1, site="daemon_stall")
        with pytest.raises(ValueError):
            FaultEvent(at_ns=0, site="daemon_stall", duration_ns=-1)
        with pytest.raises(ValueError, match="unknown scripted fault site"):
            FaultEvent(at_ns=0, site="meteor_strike")


class TestFaultPlan:
    def test_no_faults_is_inactive(self):
        assert not NO_FAULTS.active

    def test_events_alone_activate(self):
        plan = FaultPlan(events=(FaultEvent(at_ns=5 * MS, site="dom0_burst"),))
        assert plan.active

    def test_events_are_sorted(self):
        plan = FaultPlan(
            events=(
                FaultEvent(at_ns=20 * MS, site="dom0_burst"),
                FaultEvent(at_ns=5 * MS, site="daemon_stall"),
            )
        )
        assert [e.at_ns for e in plan.events] == [5 * MS, 20 * MS]

    def test_with_seed(self):
        plan = FaultPlan(FaultConfig.scaled(0.1), seed=1)
        reseeded = plan.with_seed(2)
        assert reseeded.seed == 2
        assert reseeded.config is plan.config
