"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.guest.actions import Compute
from repro.guest.kernel import GuestConfig, GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.units import MS, SEC


def busy(total_ns: int):
    """A thread behaviour that burns a fixed amount of CPU and exits."""
    yield Compute(total_ns)


def chunks(n: int, each_ns: int):
    """A thread behaviour of n separate compute chunks."""
    for _ in range(n):
        yield Compute(each_ns)


class StackBuilder:
    """Tiny helper to assemble machine+guests in tests."""

    def __init__(self, pcpus: int = 2, seed: int = 1, **host_kwargs):
        self.machine = Machine(HostConfig(pcpus=pcpus, **host_kwargs), seed=seed)
        self.kernels: dict[str, GuestKernel] = {}

    def guest(
        self, name: str, vcpus: int = 2, weight: int = 256, guest_config: GuestConfig | None = None, **domain_kwargs
    ) -> GuestKernel:
        domain = self.machine.create_domain(name, vcpus=vcpus, weight=weight, **domain_kwargs)
        kernel = GuestKernel(domain, guest_config)
        self.kernels[name] = kernel
        return kernel

    def start(self) -> Machine:
        self.machine.start()
        return self.machine


@pytest.fixture
def stack() -> StackBuilder:
    return StackBuilder()


@pytest.fixture
def single_guest():
    """One 2-vCPU guest alone on a 2-pCPU host, started."""
    builder = StackBuilder(pcpus=2)
    kernel = builder.guest("vm", vcpus=2)
    return builder, kernel
