"""Unit tests for repro.units."""

import pytest

from repro.units import MS, SEC, US, fmt_ns, msec, sec, to_msec, to_sec, to_usec, usec


def test_constants_are_consistent():
    assert US == 1_000
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS


def test_conversions_round_trip():
    assert usec(1.5) == 1_500
    assert msec(2.5) == 2_500_000
    assert sec(0.001) == MS
    assert to_usec(usec(3.25)) == pytest.approx(3.25)
    assert to_msec(msec(7.125)) == pytest.approx(7.125)
    assert to_sec(sec(1.75)) == pytest.approx(1.75)


def test_conversions_produce_ints():
    assert isinstance(usec(0.7), int)
    assert isinstance(msec(0.123), int)
    assert isinstance(sec(1e-9), int)


def test_fmt_ns_adapts_unit():
    assert fmt_ns(500) == "500ns"
    assert fmt_ns(1_500) == "1.500us"
    assert fmt_ns(2_500_000) == "2.500ms"
    assert fmt_ns(3 * SEC) == "3.000s"
