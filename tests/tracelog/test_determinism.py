"""Trace determinism: same seed ⇒ byte-identical files; tracing never
changes simulation results."""

import hashlib

from repro.tracelog import cells
from repro.tracelog.capture import capture_to

KWARGS = {"app": "cg", "vcpus": 2, "config": "VSCALE", "seed": 7,
          "work_scale": 0.02}


def _sha(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def test_same_seed_traces_are_byte_identical(tmp_path):
    digests = []
    for i in range(2):
        path = tmp_path / f"run{i}.rtl"
        with capture_to(str(path)):
            cells.fig6_cell(**KWARGS)
        digests.append(_sha(path))
    assert digests[0] == digests[1]


def test_different_seed_traces_differ(tmp_path):
    digests = []
    for seed in (7, 8):
        path = tmp_path / f"seed{seed}.rtl"
        with capture_to(str(path)):
            cells.fig6_cell(**{**KWARGS, "seed": seed})
        digests.append(_sha(path))
    assert digests[0] != digests[1]


def test_tracing_does_not_change_results(tmp_path):
    """The traced run's cell result equals the untraced run's — tracing
    observes the simulation without perturbing it."""
    untraced = cells.fig6_cell(**KWARGS)
    path = tmp_path / "traced.rtl"
    with capture_to(str(path)):
        traced = cells.fig6_cell(**KWARGS)
    assert traced.duration_ns == untraced.duration_ns
