"""Replay verification: fingerprint match, structured divergence."""

import pytest

from repro.sim.trace import TraceRecord
from repro.tracelog import cells
from repro.tracelog.codec import TraceWriter, load
from repro.tracelog.replay import (
    capture_run,
    compare_records,
    replay_run,
    replay_verify,
    trace_fingerprint,
)

CELL_KWARGS = {"app": "cg", "vcpus": 2, "config": "VSCALE", "seed": 3,
               "work_scale": 0.02}


@pytest.fixture(scope="module")
def fig6_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("replay") / "fig6.rtl"
    capture_run(cells.fig6_cell, CELL_KWARGS, str(path))
    return str(path)


def test_replay_verify_matches(fig6_trace):
    report = replay_verify(fig6_trace)
    assert report.match
    assert report.fingerprint_a == report.fingerprint_b
    assert report.count_a == report.count_b > 0
    assert "traces match" in report.render()


def test_replay_run_produces_equal_fingerprint(fig6_trace, tmp_path):
    out = tmp_path / "replayed.rtl"
    replay_run(fig6_trace, str(out))
    assert trace_fingerprint(fig6_trace) == trace_fingerprint(str(out))


def test_mutated_trace_yields_structured_divergence(fig6_trace, tmp_path):
    """A tampered trace must produce a DivergenceReport, not a crash."""
    meta, records = load(fig6_trace)
    victim = len(records) // 2
    mutated = list(records)
    original = mutated[victim]
    mutated[victim] = TraceRecord(
        original.time_ns + 17, original.category, original.event,
        original.subject, original.details,
    )
    out = tmp_path / "mutated.rtl"
    writer = TraceWriter(str(out), meta)
    for record in mutated:
        writer.write(record)
    writer.close()

    report = replay_verify(str(out))
    assert not report.match
    assert report.first_divergence == victim
    assert report.expected is not None and report.actual is not None
    assert report.expected.time_ns == original.time_ns + 17
    assert report.actual.time_ns == original.time_ns
    assert len(report.tail_a) <= 10
    rendered = report.render()
    assert "divergence" in rendered
    assert "expected:" in rendered


def test_dropped_record_reports_prefix_divergence():
    base = [TraceRecord(i, "sched", "run", "v0") for i in range(5)]
    report = compare_records(base, base[:3])
    assert not report.match
    assert report.first_divergence == 3
    assert report.count_a == 5 and report.count_b == 3
    assert report.actual is None  # B is a strict prefix


def test_env_capture_has_no_replay_metadata(tmp_path, monkeypatch):
    """Traces without embedded run metadata refuse replay with ValueError."""
    from repro.tracelog.capture import capture_to

    path = tmp_path / "anon.rtl"
    with capture_to(str(path)):
        cells.fig6_cell(**CELL_KWARGS)
    with pytest.raises(ValueError, match="no embedded run metadata"):
        replay_run(str(path))
