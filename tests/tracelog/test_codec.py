"""Round-trip, robustness and batching tests for the RTLG binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import TraceRecord
from repro.tracelog.codec import _BATCH_RECORDS, TraceFormatError, TraceWriter, load


def write_trace(path, records, meta=None):
    writer = TraceWriter(str(path), meta or {})
    for record in records:
        writer.write(record)
    writer.close()


# -- value strategies ---------------------------------------------------
# bool must come before int in the union: True == 1 == 1.0 hash and
# compare alike, and the codec must preserve the concrete type anyway.
detail_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.none(),
    st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
)

record_strategy = st.builds(
    TraceRecord,
    time_ns=st.integers(min_value=0, max_value=2**60),
    category=st.sampled_from(["sched", "irq", "vscale", "fault"]),
    event=st.text(min_size=1, max_size=12),
    subject=st.text(min_size=1, max_size=12),
    details=st.dictionaries(st.text(min_size=1, max_size=8), detail_values, max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(record_strategy, max_size=40))
def test_roundtrip_preserves_records(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("codec") / "t.rtl"
    write_trace(path, records, meta={"k": "v"})
    meta, loaded = load(str(path))
    assert meta["k"] == "v"
    assert len(loaded) == len(records)
    for original, decoded in zip(records, loaded):
        assert decoded.time_ns == original.time_ns
        assert decoded.category == original.category
        assert decoded.event == original.event
        assert decoded.subject == original.subject
        for key, value in original.details.items():
            got = decoded.details[key]
            assert got == value
            if not isinstance(value, list):  # lists ride the JSON fallback
                assert type(got) is type(value)


def test_memo_distinguishes_bool_int_float(tmp_path):
    """True == 1 == 1.0 must not share a memoized body."""
    path = tmp_path / "t.rtl"
    values = [1, True, 1.0, 1, False, 0, 0.0]
    records = [
        TraceRecord(i, "sched", "run", "v0", {"x": value})
        for i, value in enumerate(values)
    ]
    write_trace(path, records)
    _, loaded = load(str(path))
    for value, record in zip(values, loaded):
        assert record.details["x"] == value
        assert type(record.details["x"]) is type(value)


def test_time_deltas_allow_regression(tmp_path):
    """Zigzag time deltas: out-of-order timestamps still round-trip."""
    path = tmp_path / "t.rtl"
    times = [100, 50, 200, 0, 2**40]
    records = [TraceRecord(t, "sched", "run", "v0") for t in times]
    write_trace(path, records)
    _, loaded = load(str(path))
    assert [r.time_ns for r in loaded] == times


def test_batch_threshold_crossing(tmp_path):
    """More records than one batch: mid-stream drains keep everything."""
    path = tmp_path / "t.rtl"
    count = _BATCH_RECORDS + 7
    records = [TraceRecord(i, "sched", "run", f"v{i % 3}") for i in range(count)]
    write_trace(path, records)
    _, loaded = load(str(path))
    assert len(loaded) == count
    assert loaded[-1].time_ns == count - 1


def test_flush_makes_prefix_readable(tmp_path):
    path = tmp_path / "t.rtl"
    writer = TraceWriter(str(path))
    writer.write(TraceRecord(1, "sched", "run", "v0"))
    writer.write(TraceRecord(2, "sched", "stop", "v0"))
    writer.flush()
    # Still open (no END record): strict load fails, lenient sees both.
    with pytest.raises(TraceFormatError):
        load(str(path))
    _, loaded = load(str(path), strict=False)
    assert [r.event for r in loaded] == ["run", "stop"]
    writer.close()
    _, loaded = load(str(path))
    assert len(loaded) == 2


def test_write_after_close_raises(tmp_path):
    path = tmp_path / "t.rtl"
    writer = TraceWriter(str(path))
    writer.close()
    with pytest.raises(TraceFormatError):
        writer.write(TraceRecord(1, "sched", "run", "v0"))


def test_close_is_idempotent(tmp_path):
    path = tmp_path / "t.rtl"
    writer = TraceWriter(str(path))
    writer.write(TraceRecord(1, "sched", "run", "v0"))
    writer.close()
    writer.close()
    _, loaded = load(str(path))
    assert len(loaded) == 1


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "t.rtl"
    path.write_bytes(b"NOPE" + b"\x00" * 40)
    with pytest.raises(TraceFormatError):
        load(str(path))


def test_truncated_trace_strict_vs_lenient(tmp_path):
    path = tmp_path / "t.rtl"
    records = [
        TraceRecord(i, "sched", "run", "v0", {"pcpu": i % 4}) for i in range(50)
    ]
    write_trace(path, records)
    data = path.read_bytes()
    truncated = tmp_path / "trunc.rtl"
    truncated.write_bytes(data[: len(data) - 9])
    with pytest.raises(TraceFormatError):
        load(str(truncated))
    _, loaded = load(str(truncated), strict=False)
    assert 0 < len(loaded) <= 50
    for i, record in enumerate(loaded):
        assert record.time_ns == i


def test_empty_file_raises(tmp_path):
    path = tmp_path / "t.rtl"
    path.write_bytes(b"")
    with pytest.raises(TraceFormatError):
        load(str(path))
