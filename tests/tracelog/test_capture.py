"""Capture wiring: env hook, suffixing, limits, nesting, streaming."""

import pytest

from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.parallel.executor import CellSpec, ParallelExecutor
from repro.sim.trace import Tracer
from repro.tracelog import capture as capture_mod
from repro.tracelog import cells
from repro.tracelog.capture import capture_to
from repro.tracelog.codec import TraceWriter, load
from repro.units import MS
from tests.conftest import busy


@pytest.fixture(autouse=True)
def _reset_env_capture():
    """Env captures register a process-global; never leak one across tests."""
    yield
    capture_mod._close_env_capture()


def run_machine(seed=1):
    machine = Machine(HostConfig(pcpus=2), seed=seed)
    domain = machine.create_domain("vm", vcpus=2)
    kernel = GuestKernel(domain)
    kernel.spawn(busy(20 * MS), "w")
    machine.start()
    machine.run(until=50 * MS)
    return machine


def test_env_capture_suffixes_per_machine(tmp_path, monkeypatch):
    base = tmp_path / "t.rtl"
    monkeypatch.setenv("REPRO_TRACE", str(base))
    for _ in range(3):
        run_machine()
    capture_mod._close_env_capture()
    for path in (base, tmp_path / "t.rtl.1", tmp_path / "t.rtl.2"):
        _, records = load(str(path))
        assert records, f"{path} is empty"


def test_env_capture_machine_limit(tmp_path, monkeypatch):
    base = tmp_path / "t.rtl"
    monkeypatch.setenv("REPRO_TRACE", str(base))
    monkeypatch.setenv("REPRO_TRACE_LIMIT", "2")
    for _ in range(4):
        run_machine()
    capture_mod._close_env_capture()
    assert base.exists()
    assert (tmp_path / "t.rtl.1").exists()
    assert not (tmp_path / "t.rtl.2").exists()


def test_env_capture_unknown_category_rejected(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.rtl"))
    monkeypatch.setenv("REPRO_TRACE_CATEGORIES", "sched,nonsense")
    with pytest.raises(ValueError, match="unknown categories"):
        run_machine()


def test_no_env_no_capture(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    run_machine()
    assert capture_mod._active is None
    assert list(tmp_path.iterdir()) == []


def test_nested_capture_rejected(tmp_path):
    with capture_to(str(tmp_path / "a.rtl")):
        with pytest.raises(RuntimeError, match="already active"):
            with capture_to(str(tmp_path / "b.rtl")):
                pass


def test_capture_to_category_filter(tmp_path):
    path = tmp_path / "t.rtl"
    with capture_to(str(path), categories={"irq"}):
        run_machine()
    _, records = load(str(path))
    assert all(r.category == "irq" for r in records)


def test_streaming_adopts_tracer_buffer(tmp_path):
    """stream_into: the writer's pending batch IS the tracer's records,
    and drained records leave only the undrained tail in memory."""
    path = tmp_path / "t.rtl"
    writer = TraceWriter(str(path))
    tracer = Tracer({"sched"})
    writer.stream_into(tracer)
    assert tracer.records is writer._pending
    for i in range(10):
        tracer.emit(i, "sched", "run", "v0")
    assert len(tracer.records) == 10  # below batch threshold: undrained
    writer.close()
    assert tracer.records == []  # close() drained the shared buffer
    _, records = load(str(path))
    assert len(records) == 10


def test_attach_stream_rejects_bad_batch():
    tracer = Tracer({"sched"})
    with pytest.raises(ValueError, match="batch must be positive"):
        tracer.attach_stream([], lambda: None, 0)


def test_attach_stream_drains_at_batch_threshold():
    drained = []
    pending: list = []
    tracer = Tracer({"sched"})
    tracer.attach_stream(pending, lambda: drained.append(len(pending)), 4)
    for i in range(4):
        tracer.emit(i, "sched", "run", "v0")
    assert drained == [4]  # fired exactly once, at the threshold


def test_executor_trace_dir_writes_one_trace_per_cell(tmp_path):
    trace_dir = tmp_path / "traces"
    executor = ParallelExecutor(jobs=1, cache=None, trace_dir=trace_dir)
    kwargs = {"app": "cg", "vcpus": 2, "config": "VSCALE", "seed": 3,
              "work_scale": 0.02}
    specs = [
        CellSpec("fig6", f"seed{seed}", cells.fig6_cell, {**kwargs, "seed": seed})
        for seed in (3, 4)
    ]
    results = executor.run_cells(specs)
    assert len(results) == 2
    produced = sorted(p.name for p in trace_dir.iterdir())
    assert produced == ["fig6__seed3.rtl", "fig6__seed4.rtl"]
    for path in trace_dir.iterdir():
        meta, records = load(str(path))
        assert meta["source"] == "executor"
        assert records
