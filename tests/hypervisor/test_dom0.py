"""Tests for the dom0/libxl monitoring cost model."""

import numpy as np
import pytest

from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_single_vm_read_is_sub_millisecond(rng):
    toolstack = Dom0Toolstack(rng, load=Dom0Load.IDLE)
    stats = toolstack.measure(1, iterations=500)
    assert 300_000 <= stats["avg_ns"] <= 900_000  # ~480us + per-VM walk


def test_cost_grows_with_vm_count(rng):
    toolstack = Dom0Toolstack(rng, load=Dom0Load.IDLE)
    avg = [toolstack.measure(n, 200)["avg_ns"] for n in (1, 10, 50)]
    assert avg[0] < avg[1] < avg[2]


def test_io_load_inflates_costs(rng):
    idle = Dom0Toolstack(np.random.default_rng(1), Dom0Load.IDLE)
    disk = Dom0Toolstack(np.random.default_rng(1), Dom0Load.DISK_IO)
    net = Dom0Toolstack(np.random.default_rng(1), Dom0Load.NET_IO)
    a = idle.measure(50, 300)["avg_ns"]
    b = disk.measure(50, 300)["avg_ns"]
    c = net.measure(50, 300)["avg_ns"]
    assert a < b < c


def test_net_io_figure4_anchors(rng):
    """Paper: >6ms average and a max approaching 30ms at 50 VMs."""
    toolstack = Dom0Toolstack(rng, load=Dom0Load.NET_IO)
    stats = toolstack.measure(50, iterations=2_000)
    assert stats["avg_ns"] > 6e6
    assert 12e6 < stats["max_ns"] < 60e6


def test_min_le_avg_le_max(rng):
    toolstack = Dom0Toolstack(rng, load=Dom0Load.DISK_IO)
    stats = toolstack.measure(20, iterations=100)
    assert stats["min_ns"] <= stats["avg_ns"] <= stats["max_ns"]


def test_invalid_inputs(rng):
    toolstack = Dom0Toolstack(rng)
    with pytest.raises(ValueError):
        toolstack.sample_read_all_ns(0)
    with pytest.raises(ValueError):
        toolstack.measure(1, 0)


def test_channel_read_beats_libxl_by_orders_of_magnitude(rng):
    """The decentralization argument: ~1us vs 100s of us per poll."""
    from repro.core.channel import ChannelCosts

    toolstack = Dom0Toolstack(rng, load=Dom0Load.IDLE)
    libxl_one_vm = toolstack.measure(1, 200)["avg_ns"]
    assert libxl_one_vm / ChannelCosts().total_ns > 100
