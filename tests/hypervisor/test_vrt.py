"""Tests for the virtual-runtime scheduler and vScale's generality on it."""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.core.daemon import VScaleDaemon
from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import VCPUState
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def vrt_stack(pcpus=2, seed=1):
    return StackBuilder(pcpus=pcpus, seed=seed, scheduler="vrt")


class TestConfig:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            HostConfig(scheduler="lottery")

    def test_vrt_selected(self):
        from repro.hypervisor.vrt import VrtScheduler

        builder = vrt_stack()
        assert isinstance(builder.machine.scheduler, VrtScheduler)


class TestProportionalSharing:
    def _shares(self, weights, duration=3 * SEC):
        builder = vrt_stack(pcpus=2)
        for index, weight in enumerate(weights):
            kernel = builder.guest(f"vm{index}", vcpus=2, weight=weight)
            for t in range(2):
                kernel.spawn(busy(10 * duration), f"b{t}")
        machine = builder.start()
        machine.run(until=duration)
        return {
            d.name: d.total_run_ns(machine.sim.now) for d in machine.domains
        }

    def test_equal_weights_equal_shares(self):
        totals = self._shares([256, 256])
        assert totals["vm0"] == pytest.approx(totals["vm1"], rel=0.05)

    def test_2to1_weights(self):
        totals = self._shares([512, 256])
        assert totals["vm0"] / totals["vm1"] == pytest.approx(2.0, rel=0.12)

    def test_work_conserving(self):
        totals = self._shares([256, 256], duration=2 * SEC)
        assert sum(totals.values()) >= 2 * 2 * SEC * 0.97


class TestWakeLatency:
    def test_waker_runs_promptly(self):
        builder = vrt_stack(pcpus=1)
        hog = builder.guest("hog", vcpus=1)
        sleeper = builder.guest("sleepy", vcpus=1)
        hog.spawn(busy(30 * SEC), "h")
        machine = builder.start()
        machine.run(until=200 * MS)
        vcpu = sleeper.domain.vcpus[0]
        assert vcpu.state is VCPUState.BLOCKED
        machine.hyp_wake(vcpu)
        machine.run(until=machine.sim.now + 15 * MS)
        vcpu.timer.flush(machine.sim.now)
        # Woken within the wake bonus + ratelimit window; it idles again
        # (no threads) after having been scheduled.
        assert vcpu.state is VCPUState.BLOCKED
        assert vcpu.timer.total(VCPUState.RUNNABLE.value) <= 15 * MS


class TestFreezeOnVrt:
    def test_per_vm_weight_preserved_after_freeze(self):
        builder = vrt_stack(pcpus=2)
        scaler = builder.guest("scaler", vcpus=2, weight=256)
        rival = builder.guest("rival", vcpus=2, weight=256)
        scaler.spawn(busy(60 * SEC), "one", pinned_to=0)
        for t in range(2):
            rival.spawn(busy(60 * SEC), f"r{t}")
        machine = builder.start()
        machine.run(until=200 * MS)
        machine.hyp_mark_freeze(scaler.domain.vcpus[1])
        machine.scheduler.vcpu_block(scaler.domain.vcpus[1])
        start = machine.sim.now
        base = scaler.domain.total_run_ns(start)
        machine.run(until=start + 3 * SEC)
        gained = scaler.domain.total_run_ns(machine.sim.now) - base
        # Half the 2-pCPU pool concentrated on one active vCPU.
        assert gained == pytest.approx(3 * SEC, rel=0.12)

    def test_balancer_freeze_unfreeze_roundtrip(self):
        builder = vrt_stack(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        for index in range(4):
            kernel.spawn(busy(20 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=100 * MS)
        balancer = VScaleBalancer(kernel)
        balancer.freeze(3)
        machine.run(until=machine.sim.now + 50 * MS)
        assert kernel.domain.vcpus[3].state is VCPUState.FROZEN
        balancer.unfreeze(3)
        machine.run(until=machine.sim.now + 100 * MS)
        assert kernel.domain.vcpus[3].state is not VCPUState.FROZEN
        assert sum(rq.load() for rq in kernel.runqueues) == 4


class TestVScaleEndToEndOnVrt:
    def test_daemon_scales_with_vrt_substrate(self):
        """The generality claim: the whole vScale loop runs unmodified on
        the virtual-runtime scheduler."""
        builder = vrt_stack(pcpus=4)
        worker = builder.guest("worker", vcpus=4, weight=256)
        rival = builder.guest("rival", vcpus=4, weight=256)
        for index in range(4):
            rival.spawn(busy(30 * SEC), f"r{index}")
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        builder.machine.install_vscale()
        daemon = VScaleDaemon(worker)
        daemon.install()
        machine = builder.start()
        machine.run(until=3 * SEC)
        # Equal weights, saturated rival: the worker converges towards its
        # ~2-pCPU entitlement.
        assert worker.online_vcpus <= 3
        assert daemon.reconfigurations >= 1
        # And accounting still closes.
        now = machine.sim.now
        for domain in machine.domains:
            for vcpu in domain.vcpus:
                vcpu.timer.flush(now)
                assert sum(vcpu.timer.totals.values()) == now
