"""Tests for HostConfig validation."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.units import MS


def test_defaults_match_xen():
    config = HostConfig()
    assert config.timeslice_ns == 30 * MS
    assert config.tick_ns == 10 * MS
    assert config.acct_ns == 30 * MS
    assert config.ratelimit_ns == 1 * MS
    assert config.per_vm_weight is True


def test_rejects_zero_pcpus():
    with pytest.raises(ValueError):
        HostConfig(pcpus=0)


def test_rejects_unaligned_accounting_period():
    with pytest.raises(ValueError):
        HostConfig(acct_ns=25 * MS, tick_ns=10 * MS)


def test_rejects_nonpositive_periods():
    with pytest.raises(ValueError):
        HostConfig(tick_ns=0, acct_ns=0)
