"""Tests for the XenStore control-plane model."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.hypervisor.xenstore import (
    XenStore,
    XenStoreError,
    availability_path,
)
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


@pytest.fixture
def store():
    machine = Machine(HostConfig(pcpus=1), seed=1)
    machine.create_domain("vm", vcpus=1)
    from repro.guest.kernel import GuestKernel

    GuestKernel(machine.domains[0])
    machine.start()
    return machine, XenStore(machine)


class TestTree:
    def test_write_lands_after_latency(self, store):
        machine, xs = store
        xs.write("/local/domain/vm/key", "value")
        assert not xs.exists("/local/domain/vm/key")
        machine.run(until=machine.sim.now + xs.write_latency_ns + 1)
        assert xs.read("/local/domain/vm/key") == "value"

    def test_read_missing_raises(self, store):
        _, xs = store
        with pytest.raises(XenStoreError):
            xs.read("/nope")

    def test_relative_paths_rejected(self, store):
        _, xs = store
        with pytest.raises(ValueError):
            xs.write("relative/path", "x")

    def test_ls_lists_children(self, store):
        machine, xs = store
        xs.write("/a/b", "1")
        xs.write("/a/c/d", "2")
        machine.run(until=machine.sim.now + 1 * MS)
        assert xs.ls("/a") == ["b", "c"]
        assert xs.ls("/a/c") == ["d"]

    def test_rm_removes_subtree(self, store):
        machine, xs = store
        xs.write("/a/b", "1")
        xs.write("/a/c", "2")
        machine.run(until=machine.sim.now + 1 * MS)
        xs.rm("/a")
        assert not xs.exists("/a/b")
        assert not xs.exists("/a/c")


class TestWatches:
    def test_watch_fires_on_subtree_write(self, store):
        machine, xs = store
        fired = []
        xs.watch("/local/domain/vm", lambda p, v: fired.append((p, v)))
        xs.write("/local/domain/vm/cpu/1/availability", "offline")
        machine.run(until=machine.sim.now + 1 * MS)
        assert fired == [("/local/domain/vm/cpu/1/availability", "offline")]

    def test_watch_does_not_fire_elsewhere(self, store):
        machine, xs = store
        fired = []
        xs.watch("/local/domain/vm", lambda p, v: fired.append(p))
        xs.write("/local/domain/other/key", "x")
        machine.run(until=machine.sim.now + 1 * MS)
        assert fired == []

    def test_unwatch_stops_callbacks(self, store):
        machine, xs = store
        fired = []
        token = xs.watch("/a", lambda p, v: fired.append(p))
        xs.unwatch(token)
        xs.write("/a/b", "1")
        machine.run(until=machine.sim.now + 1 * MS)
        assert fired == []

    def test_watch_latency_is_modeled(self, store):
        machine, xs = store
        times = []
        xs.watch("/a", lambda p, v: times.append(machine.sim.now))
        start = machine.sim.now
        xs.write("/a/b", "1")
        machine.run(until=machine.sim.now + 5 * MS)
        assert times
        assert times[0] >= start + xs.write_latency_ns + xs.watch_latency_ns


class TestXenBusCpuDriver:
    def test_offline_key_freezes_vcpu(self):
        from repro.guest.hotplug import HotplugMechanism, HotplugModel, XenBusCpuDriver
        from repro.hypervisor.domain import VCPUState
        from repro.hypervisor.xenstore import XenStore

        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        kernel.spawn(busy(5 * SEC), "w")
        machine = builder.start()
        machine.run(until=20 * MS)
        xs = XenStore(machine)
        model = HotplugModel("v3.14.15", machine.seeds.generator("hp"))
        driver = XenBusCpuDriver(kernel, xs, HotplugMechanism(kernel, model))
        xs.write(availability_path("vm", 1), "offline")
        machine.run(until=machine.sim.now + 500 * MS)
        assert kernel.domain.vcpus[1].state is VCPUState.FROZEN
        assert driver.events
        xs.write(availability_path("vm", 1), "online")
        machine.run(until=machine.sim.now + 500 * MS)
        assert kernel.domain.vcpus[1].state is not VCPUState.FROZEN

    def test_vcpu0_writes_ignored(self):
        from repro.guest.hotplug import HotplugMechanism, HotplugModel, XenBusCpuDriver
        from repro.hypervisor.xenstore import XenStore

        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        machine = builder.start()
        xs = XenStore(machine)
        model = HotplugModel("v4.2", machine.seeds.generator("hp"))
        XenBusCpuDriver(kernel, xs, HotplugMechanism(kernel, model))
        xs.write(availability_path("vm", 0), "offline")
        machine.run(until=machine.sim.now + 500 * MS)
        assert 0 not in kernel.cpu_freeze_mask
