"""Tests for Domain/VCPU state handling and validation."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import Domain, VCPU, VCPUState
from repro.hypervisor.machine import Machine
from repro.units import SEC


@pytest.fixture
def machine():
    return Machine(HostConfig(pcpus=2), seed=1)


class TestDomainValidation:
    def test_requires_at_least_one_vcpu(self, machine):
        with pytest.raises(ValueError):
            machine.create_domain("vm", vcpus=0)

    def test_requires_positive_weight(self, machine):
        with pytest.raises(ValueError):
            machine.create_domain("vm", vcpus=1, weight=0)

    def test_requires_positive_cap(self, machine):
        with pytest.raises(ValueError):
            machine.create_domain("vm", vcpus=1, cap=0)

    def test_requires_nonnegative_reservation(self, machine):
        with pytest.raises(ValueError):
            machine.create_domain("vm", vcpus=1, reservation=-1)

    def test_double_guest_attach_rejected(self, machine):
        from repro.guest.kernel import GuestKernel

        domain = machine.create_domain("vm", vcpus=1)
        GuestKernel(domain)
        with pytest.raises(RuntimeError):
            domain.attach_guest(object())


class TestVCPUState:
    def test_initial_state_blocked(self, machine):
        domain = machine.create_domain("vm", vcpus=2)
        for vcpu in domain.vcpus:
            assert vcpu.state is VCPUState.BLOCKED

    def test_set_state_accumulates_timer(self, machine):
        domain = machine.create_domain("vm", vcpus=1)
        vcpu = domain.vcpus[0]
        machine.sim.now = 100
        vcpu.set_state(VCPUState.RUNNABLE, 100)
        vcpu.set_state(VCPUState.RUNNING, 250)
        vcpu.timer.flush(400)
        assert vcpu.timer.total(VCPUState.BLOCKED.value) == 100
        assert vcpu.timer.total(VCPUState.RUNNABLE.value) == 150
        assert vcpu.timer.total(VCPUState.RUNNING.value) == 150

    def test_vcpu_names(self, machine):
        domain = machine.create_domain("vm", vcpus=2)
        assert domain.vcpus[1].name == "vm/v1"


class TestActiveVCPUs:
    def test_freeze_pending_excluded(self, machine):
        domain = machine.create_domain("vm", vcpus=3)
        domain.vcpus[2].freeze_pending = True
        assert domain.vcpus[2] not in domain.active_vcpus()
        assert len(domain.active_vcpus()) == 2

    def test_frozen_listed_separately(self, machine):
        domain = machine.create_domain("vm", vcpus=2)
        domain.vcpus[1].set_state(VCPUState.FROZEN, 0)
        assert domain.frozen_vcpus() == [domain.vcpus[1]]


class TestEventChannels:
    def test_new_channel_registered(self, machine):
        domain = machine.create_domain("vm", vcpus=2)
        channel = domain.new_event_channel("nic", bound_vcpu=1)
        assert channel in domain.event_channels
        assert channel.bound_vcpu == 1

    def test_rebind_validates_index(self, machine):
        domain = machine.create_domain("vm", vcpus=2)
        channel = domain.new_event_channel("nic")
        with pytest.raises(ValueError):
            channel.rebind(5)
        channel.rebind(1)
        assert channel.bound_vcpu == 1
