"""Property-based tests driving both schedulers with random transition
sequences: whatever the order of wakes, blocks, freezes, yields and time
advances, the scheduler must keep its structural invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.machine import Machine
from repro.units import MS
from tests.conftest import busy


class _PassiveGuest:
    """A guest that never idles its vCPUs (keeps them burning CPU)."""

    def __init__(self, domain):
        domain.attach_guest(self)

    def vcpu_started(self, vcpu):
        pass

    def vcpu_stopped(self, vcpu):
        pass

    def deliver_irq(self, vcpu, irq):
        pass


def build(scheduler: str, domains=2, vcpus=2, pcpus=2, seed=1):
    machine = Machine(HostConfig(pcpus=pcpus, scheduler=scheduler), seed=seed)
    for index in range(domains):
        domain = machine.create_domain(f"d{index}", vcpus=vcpus)
        _PassiveGuest(domain)
    machine.start()
    return machine


def all_vcpus(machine):
    return [v for d in machine.domains for v in d.vcpus]


def check_invariants(machine):
    # pCPU <-> vCPU agreement.
    currents = []
    for pcpu in machine.pool:
        if pcpu.current is not None:
            assert pcpu.current.state is VCPUState.RUNNING
            assert pcpu.current.pcpu is pcpu
            currents.append(pcpu.current)
    assert len(currents) == len(set(currents)), "vCPU on two pCPUs"
    for vcpu in all_vcpus(machine):
        if vcpu.state is VCPUState.RUNNING:
            assert vcpu in currents
        # Time accounting closes at all times.
        vcpu.timer.flush(machine.sim.now)
        assert sum(vcpu.timer.totals.values()) == machine.sim.now


operations = st.lists(
    st.tuples(
        st.sampled_from(["wake", "block", "mark_freeze", "unfreeze", "yield", "advance"]),
        st.integers(min_value=0, max_value=3),  # vCPU selector
        st.integers(min_value=1, max_value=40),  # time advance in ms
    ),
    min_size=1,
    max_size=40,
)


@pytest.mark.parametrize("scheduler", ["credit", "vrt"])
@settings(max_examples=40, deadline=None)
@given(ops=operations, seed=st.integers(0, 100))
def test_random_transitions_keep_invariants(scheduler, ops, seed):
    machine = build(scheduler, seed=seed)
    vcpus = all_vcpus(machine)
    for op, selector, advance_ms in ops:
        vcpu = vcpus[selector % len(vcpus)]
        if op == "wake":
            if vcpu.state is VCPUState.BLOCKED:
                machine.hyp_wake(vcpu)
        elif op == "block":
            machine.scheduler.vcpu_block(vcpu)
        elif op == "mark_freeze":
            machine.hyp_mark_freeze(vcpu)
        elif op == "unfreeze":
            machine.hyp_unfreeze_vcpu(vcpu)
        elif op == "yield":
            machine.hyp_yield(vcpu)
        elif op == "advance":
            machine.run(until=machine.sim.now + advance_ms * MS)
        # Drain the deferred reschedules before checking.
        machine.run(until=machine.sim.now + 1)
        check_invariants(machine)


@pytest.mark.parametrize("scheduler", ["credit", "vrt"])
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_always_runnable_vcpus_never_starve(scheduler, seed):
    """With permanently runnable vCPUs, everyone makes progress."""
    machine = build(scheduler, domains=3, vcpus=1, pcpus=1, seed=seed)
    for vcpu in all_vcpus(machine):
        if vcpu.state is VCPUState.BLOCKED:
            machine.hyp_wake(vcpu)
    machine.run(until=600 * MS)
    for vcpu in all_vcpus(machine):
        vcpu.timer.flush(machine.sim.now)
        run = vcpu.timer.total(VCPUState.RUNNING.value)
        assert run > 50 * MS, f"{vcpu.name} starved ({run}ns)"
