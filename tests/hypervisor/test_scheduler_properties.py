"""Shared scheduler conformance suite.

Every scheduler registered in :mod:`repro.hypervisor.schedulers` is run
through the same properties: whatever the order of wakes, blocks,
freezes, yields and time advances, the scheduler must keep its
structural invariants; beyond that, the suite checks the behavioral
contract the rest of the stack relies on — work conservation, frozen
vCPUs never scheduled, weight-proportional allocation (for schedulers
that declare it) and cap enforcement (for schedulers that support it).

Adding a scheduler to the registry automatically enrolls it here.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.machine import Machine
from repro.hypervisor.schedulers import available, get
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy

ALL_SCHEDULERS = available()


class _PassiveGuest:
    """A guest that never idles its vCPUs (keeps them burning CPU)."""

    def __init__(self, domain):
        domain.attach_guest(self)

    def vcpu_started(self, vcpu):
        pass

    def vcpu_stopped(self, vcpu):
        pass

    def deliver_irq(self, vcpu, irq):
        pass


def build(scheduler: str, domains=2, vcpus=2, pcpus=2, seed=1):
    machine = Machine(HostConfig(pcpus=pcpus, scheduler=scheduler), seed=seed)
    for index in range(domains):
        domain = machine.create_domain(f"d{index}", vcpus=vcpus)
        _PassiveGuest(domain)
    machine.start()
    return machine


def all_vcpus(machine):
    return [v for d in machine.domains for v in d.vcpus]


def check_invariants(machine):
    # pCPU <-> vCPU agreement.
    currents = []
    for pcpu in machine.pool:
        if pcpu.current is not None:
            assert pcpu.current.state is VCPUState.RUNNING
            assert pcpu.current.pcpu is pcpu
            currents.append(pcpu.current)
    assert len(currents) == len(set(currents)), "vCPU on two pCPUs"
    for vcpu in all_vcpus(machine):
        if vcpu.state is VCPUState.RUNNING:
            assert vcpu in currents
        assert vcpu.state is not VCPUState.FROZEN or vcpu.pcpu is None
        # Time accounting closes at all times.
        vcpu.timer.flush(machine.sim.now)
        assert sum(vcpu.timer.totals.values()) == machine.sim.now


operations = st.lists(
    st.tuples(
        st.sampled_from(["wake", "block", "mark_freeze", "unfreeze", "yield", "advance"]),
        st.integers(min_value=0, max_value=3),  # vCPU selector
        st.integers(min_value=1, max_value=40),  # time advance in ms
    ),
    min_size=1,
    max_size=40,
)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
@settings(max_examples=40, deadline=None)
@given(ops=operations, seed=st.integers(0, 100))
def test_random_transitions_keep_invariants(scheduler, ops, seed):
    machine = build(scheduler, seed=seed)
    vcpus = all_vcpus(machine)
    for op, selector, advance_ms in ops:
        vcpu = vcpus[selector % len(vcpus)]
        if op == "wake":
            if vcpu.state is VCPUState.BLOCKED:
                machine.hyp_wake(vcpu)
        elif op == "block":
            machine.scheduler.vcpu_block(vcpu)
        elif op == "mark_freeze":
            machine.hyp_mark_freeze(vcpu)
        elif op == "unfreeze":
            machine.hyp_unfreeze_vcpu(vcpu)
        elif op == "yield":
            machine.hyp_yield(vcpu)
        elif op == "advance":
            machine.run(until=machine.sim.now + advance_ms * MS)
        # Drain the deferred reschedules before checking.
        machine.run(until=machine.sim.now + 1)
        check_invariants(machine)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_always_runnable_vcpus_never_starve(scheduler, seed):
    """With permanently runnable vCPUs, everyone makes progress."""
    machine = build(scheduler, domains=3, vcpus=1, pcpus=1, seed=seed)
    for vcpu in all_vcpus(machine):
        if vcpu.state is VCPUState.BLOCKED:
            machine.hyp_wake(vcpu)
    machine.run(until=600 * MS)
    for vcpu in all_vcpus(machine):
        vcpu.timer.flush(machine.sim.now)
        run = vcpu.timer.total(VCPUState.RUNNING.value)
        assert run > 50 * MS, f"{vcpu.name} starved ({run}ns)"


def run_shares(scheduler, weights, pcpus=2, vcpus_each=2, duration=3 * SEC, caps=None):
    """Run all-busy guests and return each domain's consumed time."""
    builder = StackBuilder(pcpus=pcpus, scheduler=scheduler)
    for index, weight in enumerate(weights):
        cap = caps[index] if caps else None
        kernel = builder.guest(f"vm{index}", vcpus=vcpus_each, weight=weight, cap=cap)
        for t in range(vcpus_each):
            kernel.spawn(busy(10 * duration), f"busy{t}")
    machine = builder.start()
    machine.run(until=duration)
    totals = {}
    for domain in machine.domains:
        totals[domain.name] = domain.total_run_ns(machine.sim.now)
    return totals, machine


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_work_conservation(scheduler):
    """No pCPU idles while runnable vCPUs are backlogged."""
    totals, machine = run_shares(scheduler, [256, 256], duration=2 * SEC)
    idle = sum(p.flush_idle(machine.sim.now) for p in machine.pool)
    capacity = len(machine.pool) * 2 * SEC
    assert idle <= capacity * 0.03, f"pool idled {idle / 1e9:.3f}s under load"
    assert sum(totals.values()) >= capacity * 0.97


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_frozen_vcpu_is_never_scheduled(scheduler):
    """A completed freeze takes the vCPU entirely out of dispatch."""
    machine = build(scheduler, domains=2, vcpus=2, pcpus=2)
    for vcpu in all_vcpus(machine):
        if vcpu.state is VCPUState.BLOCKED:
            machine.hyp_wake(vcpu)
    machine.run(until=100 * MS)
    victim = machine.domains[0].vcpus[1]
    machine.hyp_mark_freeze(victim)
    machine.scheduler.vcpu_block(victim)
    assert victim.state is VCPUState.FROZEN
    victim.timer.flush(machine.sim.now)
    frozen_at_run = victim.timer.total(VCPUState.RUNNING.value)
    for _ in range(30):
        machine.run(until=machine.sim.now + 10 * MS)
        assert victim.state is VCPUState.FROZEN
        for pcpu in machine.pool:
            assert pcpu.current is not victim
    victim.timer.flush(machine.sim.now)
    assert victim.timer.total(VCPUState.RUNNING.value) == frozen_at_run
    # Thawing puts it back into rotation.
    machine.hyp_unfreeze_vcpu(victim)
    machine.run(until=machine.sim.now + 200 * MS)
    victim.timer.flush(machine.sim.now)
    assert victim.timer.total(VCPUState.RUNNING.value) > frozen_at_run


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_weight_proportional_allocation(scheduler):
    """2:1 weights give 2:1 CPU time, for schedulers that promise it."""
    if not get(scheduler).weight_proportional:
        pytest.skip(f"{scheduler} does not declare weight proportionality")
    totals, _ = run_shares(scheduler, [512, 256], duration=3 * SEC)
    assert totals["vm0"] / totals["vm1"] == pytest.approx(2.0, rel=0.15)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_equal_weights_equal_shares(scheduler):
    totals, _ = run_shares(scheduler, [256, 256], duration=2 * SEC)
    assert totals["vm0"] == pytest.approx(totals["vm1"], rel=0.10)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_cap_enforcement(scheduler):
    """A 0.5-pCPU cap bounds consumption, for schedulers that support it."""
    if not get(scheduler).supports_caps:
        pytest.skip(f"{scheduler} does not support caps")
    totals, _ = run_shares(scheduler, [256, 256], caps=[0.5, None], duration=2 * SEC)
    # Soft cap: allow slop because parked vCPUs still soak idle cycles.
    assert totals["vm0"] <= 1.3 * SEC
    assert totals["vm1"] >= 2.5 * SEC
