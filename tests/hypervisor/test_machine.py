"""Tests for the machine: hypercall surface, IRQ delivery semantics."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.irq import IRQ, IRQClass
from repro.hypervisor.machine import Machine
from repro.units import MS, SEC, US
from tests.conftest import StackBuilder, busy


class TestSetup:
    def test_duplicate_domain_name_rejected(self):
        machine = Machine(HostConfig(pcpus=1))
        machine.create_domain("vm", vcpus=1)
        with pytest.raises(ValueError):
            machine.create_domain("vm", vcpus=1)

    def test_start_requires_guests(self):
        machine = Machine(HostConfig(pcpus=1))
        machine.create_domain("vm", vcpus=1)
        with pytest.raises(RuntimeError):
            machine.start()

    def test_domain_after_start_rejected(self, single_guest):
        builder, _ = single_guest
        machine = builder.start()
        with pytest.raises(RuntimeError):
            machine.create_domain("late", vcpus=1)

    def test_double_start_rejected(self, single_guest):
        builder, _ = single_guest
        machine = builder.start()
        with pytest.raises(RuntimeError):
            machine.start()

    def test_find_domain(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        assert machine.find_domain("vm") is kernel.domain
        with pytest.raises(KeyError):
            machine.find_domain("ghost")


class TestIRQDelivery:
    def test_irq_to_running_vcpu_delivered_quickly(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "worker", pinned_to=0)
        machine = builder.start()
        machine.run(until=10 * MS)
        vcpu = kernel.domain.vcpus[0]
        assert vcpu.state is VCPUState.RUNNING
        channel = kernel.domain.new_event_channel("test", bound_vcpu=0)
        received = []
        channel.handler = received.append
        channel.post("hello")
        machine.run(until=machine.sim.now + 10 * US)
        assert received == ["hello"]
        # ~1us upcall latency.
        assert kernel.domain.io_delay.samples[-1] <= 5 * US

    def test_irq_wakes_blocked_vcpu(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=10 * MS)
        vcpu = kernel.domain.vcpus[1]
        assert vcpu.state is VCPUState.BLOCKED
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=1)
        received = []
        channel.handler = received.append
        channel.post("pkt")
        machine.run(until=machine.sim.now + 1 * MS)
        assert received == ["pkt"]

    def test_irq_to_queued_vcpu_waits_for_scheduling(self):
        """The Figure 1(c) delay: a preempted vCPU sees its interrupt only
        when the credit scheduler runs it again."""
        builder = StackBuilder(pcpus=1)
        victim = builder.guest("victim", vcpus=1)
        hog = builder.guest("hog", vcpus=1)
        victim.spawn(busy(10 * SEC), "v")
        hog.spawn(busy(10 * SEC), "h")
        machine = builder.start()
        machine.run(until=35 * MS)
        # One vCPU runs, the other waits in the queue.
        waiting = [
            d.vcpus[0]
            for d in machine.domains
            if d.vcpus[0].state is VCPUState.RUNNABLE
        ]
        assert len(waiting) == 1
        target = waiting[0]
        kernel = builder.kernels[target.domain.name]
        channel = target.domain.new_event_channel("nic", bound_vcpu=0)
        received = []
        channel.handler = lambda p: received.append(machine.sim.now)
        post_time = machine.sim.now
        channel.post("pkt")
        assert received == []  # not delivered while queued
        machine.run(until=machine.sim.now + 80 * MS)
        assert received, "interrupt lost"
        delay = received[0] - post_time
        assert delay >= 1 * MS  # queueing delay, not the 1us fast path

    def test_cross_domain_ipi_rejected(self, stack):
        a = stack.guest("a", vcpus=1)
        b = stack.guest("b", vcpus=1)
        stack.start()
        with pytest.raises(ValueError):
            stack.machine.hyp_send_ipi(
                a.domain.vcpus[0], b.domain.vcpus[0], IRQClass.RESCHED_IPI
            )

    def test_resched_ipi_to_frozen_vcpu_is_a_bug(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        vcpu = kernel.domain.vcpus[1]
        machine.hyp_mark_freeze(vcpu)
        machine.scheduler.vcpu_block(vcpu)
        assert vcpu.state is VCPUState.FROZEN
        with pytest.raises(RuntimeError):
            machine.post_irq(vcpu, IRQ(IRQClass.RESCHED_IPI, machine.sim.now))

    def test_call_ipi_wakes_frozen_vcpu(self, single_guest):
        """The smp_call_function shutdown path still reaches frozen vCPUs."""
        builder, kernel = single_guest
        machine = builder.start()
        vcpu = kernel.domain.vcpus[1]
        machine.hyp_mark_freeze(vcpu)
        machine.scheduler.vcpu_block(vcpu)
        machine.post_irq(vcpu, IRQ(IRQClass.CALL_IPI, machine.sim.now))
        assert vcpu.state is not VCPUState.FROZEN

    def test_delivery_latency_accounted_per_class(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "w0", pinned_to=0)
        kernel.spawn(busy(1 * SEC), "w1", pinned_to=1)
        machine = builder.start()
        machine.run(until=5 * MS)
        domain = kernel.domain
        before = len(domain.ipi_delay.samples)
        machine.hyp_send_ipi(domain.vcpus[0], domain.vcpus[1], IRQClass.RESCHED_IPI)
        machine.run(until=machine.sim.now + 5 * MS)
        assert len(domain.ipi_delay.samples) == before + 1


class TestExtendabilityHypercall:
    def test_requires_vscale_extension(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        with pytest.raises(RuntimeError):
            machine.hyp_read_extendability(kernel.domain)

    def test_reads_after_install(self, single_guest):
        builder, kernel = single_guest
        builder.machine.install_vscale()
        machine = builder.start()
        machine.run(until=50 * MS)
        ext, n = machine.hyp_read_extendability(kernel.domain)
        assert ext > 0
        assert 1 <= n <= 2


class TestPoolAccounting:
    def test_idle_time_tracked(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=1 * SEC)
        # Nothing ran: the whole pool was idle.
        assert machine.pool_idle_ns() == pytest.approx(2 * SEC, rel=0.01)
