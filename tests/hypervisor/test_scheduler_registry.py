"""Tests for the scheduler registry and selection plumbing."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.hypervisor.schedulers import (
    DEFAULT_SCHEDULER,
    ENV_VAR,
    CfsScheduler,
    Credit2Scheduler,
    CreditScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerConfig,
    VrtScheduler,
    available,
    create,
    get,
    register,
    resolve_name,
)


class TestRegistry:
    def test_all_schedulers_registered(self):
        assert set(available()) >= {"cfs", "credit", "credit2", "rr", "vrt"}

    def test_available_is_sorted(self):
        assert list(available()) == sorted(available())

    def test_get_returns_classes(self):
        assert get("credit") is CreditScheduler
        assert get("credit2") is Credit2Scheduler
        assert get("cfs") is CfsScheduler
        assert get("rr") is RoundRobinScheduler
        assert get("vrt") is VrtScheduler

    def test_get_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="credit"):
            get("nope")

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):

            @register
            class Impostor(Scheduler):  # pragma: no cover - never instantiated
                name = "credit"

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):

            @register
            class Nameless(Scheduler):  # pragma: no cover - never instantiated
                pass

    def test_capability_flags(self):
        assert CreditScheduler.supports_caps
        assert CreditScheduler.uses_credit_accounting
        assert CreditScheduler.weight_proportional
        assert not RoundRobinScheduler.weight_proportional
        for cls in (Credit2Scheduler, CfsScheduler, VrtScheduler):
            assert cls.weight_proportional
            assert not cls.uses_credit_accounting


class TestResolution:
    def test_default_is_credit(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert DEFAULT_SCHEDULER == "credit"
        assert resolve_name(None) == "credit"

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "rr")
        assert resolve_name("cfs") == "cfs"

    def test_env_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "rr")
        assert resolve_name(None) == "rr"

    def test_env_with_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "nope")
        with pytest.raises(ValueError):
            resolve_name(None)

    def test_scheduler_config_resolved(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert SchedulerConfig().resolved() == "credit"
        assert SchedulerConfig(name="vrt").resolved() == "vrt"

    def test_scheduler_config_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "credit2")
        assert SchedulerConfig.from_env().resolved() == "credit2"


class TestWiring:
    def test_create_builds_named_scheduler(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        machine = Machine(HostConfig(pcpus=2), seed=1)
        assert type(create("rr", machine)) is RoundRobinScheduler

    @pytest.mark.parametrize("name", available())
    def test_machine_uses_configured_scheduler(self, name):
        machine = Machine(HostConfig(pcpus=2, scheduler=name), seed=1)
        assert type(machine.scheduler) is get(name)
        assert machine.scheduler.name == name

    def test_machine_default_scheduler_is_credit(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        machine = Machine(HostConfig(pcpus=2), seed=1)
        assert type(machine.scheduler) is CreditScheduler

    def test_env_selects_machine_scheduler(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cfs")
        machine = Machine(HostConfig(pcpus=2), seed=1)
        assert type(machine.scheduler) is CfsScheduler

    def test_host_config_accepts_scheduler_config(self):
        host = HostConfig(pcpus=2, scheduler=SchedulerConfig(name="credit2"))
        assert host.scheduler == "credit2"

    def test_host_config_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            HostConfig(pcpus=2, scheduler="nope")

    def test_legacy_import_paths_still_work(self):
        from repro.hypervisor.credit import CreditScheduler as LegacyCredit
        from repro.hypervisor.vrt import VrtScheduler as LegacyVrt

        assert LegacyCredit is CreditScheduler
        assert LegacyVrt is VrtScheduler
