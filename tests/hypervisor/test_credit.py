"""Tests for the credit scheduler: proportional sharing, priorities,
freeze semantics, caps, ratelimit and work conservation."""

import pytest

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import Priority, VCPUState
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def run_shares(weights, pcpus=2, vcpus_each=2, duration=3 * SEC, caps=None):
    """Run all-busy guests and return each domain's consumed share."""
    builder = StackBuilder(pcpus=pcpus)
    kernels = []
    for index, weight in enumerate(weights):
        cap = caps[index] if caps else None
        kernel = builder.guest(f"vm{index}", vcpus=vcpus_each, weight=weight, cap=cap)
        for t in range(vcpus_each):
            kernel.spawn(busy(10 * duration), f"busy{t}")
        kernels.append(kernel)
    machine = builder.start()
    machine.run(until=duration)
    totals = {}
    for domain in machine.domains:
        totals[domain.name] = domain.total_run_ns(machine.sim.now)
    return totals, machine


class TestProportionalSharing:
    def test_equal_weights_equal_shares(self):
        totals, machine = run_shares([256, 256])
        assert totals["vm0"] == pytest.approx(totals["vm1"], rel=0.05)

    def test_2to1_weights(self):
        totals, _ = run_shares([512, 256])
        assert totals["vm0"] / totals["vm1"] == pytest.approx(2.0, rel=0.10)

    def test_pool_fully_used_when_saturated(self):
        totals, machine = run_shares([256, 256], duration=2 * SEC)
        consumed = sum(totals.values())
        capacity = 2 * 2 * SEC
        assert consumed >= capacity * 0.97

    def test_work_conserving_when_one_domain_idle(self):
        """An idle co-tenant's share flows to the busy domain."""
        builder = StackBuilder(pcpus=2)
        busy_kernel = builder.guest("busy", vcpus=2, weight=256)
        builder.guest("idle", vcpus=2, weight=256)
        for t in range(2):
            busy_kernel.spawn(busy(30 * SEC), f"b{t}")
        machine = builder.start()
        machine.run(until=2 * SEC)
        run = machine.find_domain("busy").total_run_ns(machine.sim.now)
        # With the co-tenant idle, the busy domain gets ~the whole pool.
        assert run >= 2 * 2 * SEC * 0.95


class TestCaps:
    def test_cap_limits_consumption(self):
        totals, _ = run_shares([256, 256], caps=[0.5, None], duration=2 * SEC)
        # vm0 capped at half a pCPU over 2s = 1s of CPU (soft cap: allow
        # some slop because parked vCPUs still soak truly-idle cycles).
        assert totals["vm0"] <= 1.3 * SEC

    def test_uncapped_tenant_gets_remainder(self):
        totals, _ = run_shares([256, 256], caps=[0.5, None], duration=2 * SEC)
        assert totals["vm1"] >= 2.5 * SEC


class TestFreezeSemantics:
    def test_marked_vcpu_freezes_when_it_blocks(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        vcpu = kernel.domain.vcpus[1]
        machine.hyp_mark_freeze(vcpu)
        assert vcpu.freeze_pending
        machine.scheduler.vcpu_block(vcpu)
        assert vcpu.state is VCPUState.FROZEN
        assert not vcpu.freeze_pending

    def test_frozen_vcpu_excluded_from_accounting(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        domain = kernel.domain
        machine.hyp_mark_freeze(domain.vcpus[1])
        assert domain.active_vcpus() == [domain.vcpus[0]]

    def test_unfreeze_revives_vcpu(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        vcpu = kernel.domain.vcpus[1]
        machine.hyp_mark_freeze(vcpu)
        machine.scheduler.vcpu_block(vcpu)
        machine.hyp_unfreeze_vcpu(vcpu)
        assert vcpu.state in (VCPUState.RUNNABLE, VCPUState.RUNNING, VCPUState.BLOCKED)
        assert not vcpu.freeze_pending

    def test_per_vm_weight_preserves_share_after_freeze(self):
        """The paper's Xen change: freezing vCPUs must not shrink the
        domain's total credit share."""
        builder = StackBuilder(pcpus=2)
        frozen_kernel = builder.guest("scaler", vcpus=2, weight=256)
        other_kernel = builder.guest("rival", vcpus=2, weight=256)
        frozen_kernel.spawn(busy(60 * SEC), "one", pinned_to=0)
        for t in range(2):
            other_kernel.spawn(busy(60 * SEC), f"r{t}")
        machine = builder.start()
        machine.run(until=200 * MS)
        machine.hyp_mark_freeze(frozen_kernel.domain.vcpus[1])
        machine.scheduler.vcpu_block(frozen_kernel.domain.vcpus[1])
        start = machine.sim.now
        base = {d.name: d.total_run_ns(start) for d in machine.domains}
        machine.run(until=start + 3 * SEC)
        gained = {
            d.name: d.total_run_ns(machine.sim.now) - base[d.name]
            for d in machine.domains
        }
        # Equal weights: the one-active-vCPU domain still gets ~one pCPU
        # (its 50% of a 2-pCPU pool), not 1/3.
        assert gained["scaler"] == pytest.approx(3 * SEC, rel=0.10)

    def test_per_vcpu_weight_mode_shrinks_share(self):
        """Ablation: unmodified Xen 4.5 semantics penalize freezing."""
        builder = StackBuilder(pcpus=2, per_vm_weight=False)
        scaler = builder.guest("scaler", vcpus=2, weight=256)
        rival = builder.guest("rival", vcpus=2, weight=256)
        scaler.spawn(busy(60 * SEC), "one", pinned_to=0)
        for t in range(2):
            rival.spawn(busy(60 * SEC), f"r{t}")
        machine = builder.start()
        machine.run(until=200 * MS)
        machine.hyp_mark_freeze(scaler.domain.vcpus[1])
        machine.scheduler.vcpu_block(scaler.domain.vcpus[1])
        start = machine.sim.now
        base = scaler.domain.total_run_ns(start)
        machine.run(until=start + 3 * SEC)
        gained = scaler.domain.total_run_ns(machine.sim.now) - base
        # Per-vCPU weight: 1 active vCPU of 3 weighted units -> ~1/3 pool.
        assert gained == pytest.approx(2 * SEC, rel=0.15)


class TestPriorities:
    def test_overconsumer_drops_to_over(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(30 * SEC), "hog", pinned_to=0)
        machine = builder.start()
        machine.run(until=500 * MS)
        hog_vcpu = kernel.domain.vcpus[0]
        # Alone on 2 pCPUs it cannot overconsume its share; with clamped
        # credits it stays UNDER.
        assert hog_vcpu.credits >= -machine.config.acct_ns

    def test_boost_on_wake_with_credit(self, stack):
        sleeper = stack.guest("sleepy", vcpus=1)
        hog = stack.guest("hog", vcpus=2)
        for t in range(2):
            hog.spawn(busy(30 * SEC), f"h{t}")
        machine = stack.start()
        machine.run(until=100 * MS)
        vcpu = sleeper.domain.vcpus[0]
        assert vcpu.state is VCPUState.BLOCKED
        machine.hyp_wake(vcpu)
        assert vcpu.priority is Priority.BOOST

    def test_wait_accounting_tracks_queueing(self):
        """Oversubscribed pool: someone must accumulate waiting time."""
        builder = StackBuilder(pcpus=1)
        a = builder.guest("a", vcpus=1)
        b = builder.guest("b", vcpus=1)
        a.spawn(busy(10 * SEC), "a0")
        b.spawn(busy(10 * SEC), "b0")
        machine = builder.start()
        machine.run(until=1 * SEC)
        waits = sum(d.total_wait_ns(machine.sim.now) for d in machine.domains)
        assert waits == pytest.approx(1 * SEC, rel=0.05)


class TestRatelimit:
    def test_boost_preemption_deferred_by_ratelimit(self):
        builder = StackBuilder(pcpus=1)
        hog = builder.guest("hog", vcpus=1)
        sleeper = builder.guest("sleepy", vcpus=1)
        hog.spawn(busy(30 * SEC), "h")
        machine = builder.start()
        machine.run(until=50 * MS + 100_000)  # just past a slice boundary
        hog_vcpu = hog.domain.vcpus[0]
        assert hog_vcpu.state is VCPUState.RUNNING
        started = hog_vcpu.run_started_at
        machine.hyp_wake(sleeper.domain.vcpus[0])
        machine.run(until=machine.sim.now + 100_000)  # 0.1ms later
        # Still within the 1ms ratelimit window: not preempted yet.
        if machine.sim.now - started < machine.config.ratelimit_ns:
            assert hog_vcpu.state is VCPUState.RUNNING
        machine.run(until=started + machine.config.ratelimit_ns + 200_000)
        # After the window the BOOST vCPU got its turn: it waited out the
        # ratelimit in the runqueue (RUNNABLE time > 0) and, having no
        # threads, idled straight back to BLOCKED.
        sleeper_vcpu = sleeper.domain.vcpus[0]
        sleeper_vcpu.timer.flush(machine.sim.now)
        assert sleeper_vcpu.state is VCPUState.BLOCKED
        assert sleeper_vcpu.timer.total(VCPUState.RUNNABLE.value) > 0


class TestYield:
    def test_yield_requeues_vcpu(self):
        builder = StackBuilder(pcpus=1)
        a = builder.guest("a", vcpus=1)
        b = builder.guest("b", vcpus=1)
        a.spawn(busy(10 * SEC), "a0")
        b.spawn(busy(10 * SEC), "b0")
        machine = builder.start()
        machine.run(until=5 * MS)
        running = [d.vcpus[0] for d in machine.domains if d.vcpus[0].state is VCPUState.RUNNING]
        assert len(running) == 1
        current = running[0]
        machine.hyp_yield(current)
        machine.run(until=machine.sim.now + 1 * MS)
        # The other vCPU should now be running.
        assert current.state in (VCPUState.RUNNABLE, VCPUState.RUNNING)
        others = [d.vcpus[0] for d in machine.domains if d.vcpus[0] is not current]
        assert any(v.state is VCPUState.RUNNING for v in others)
