"""Deliberate nondeterminism hazards for the determinism-lint self-test.

This file is never imported — the lint parses it.  Every hazard class the
lint knows must appear here at least once, including through aliases and
``from``-imports, so the resolution machinery is exercised too.
"""

import random
import time as walltime
from datetime import datetime
from random import randint

import numpy as np


def stamp():
    started = walltime.perf_counter()  # wall-clock through an alias
    now = datetime.now()  # wall-clock through a from-import
    return started, now


def roll():
    a = random.random()  # process-global RNG
    b = randint(1, 6)  # process-global RNG through a from-import
    rng = random.Random()  # unseeded constructor
    gen = np.random.default_rng()  # unseeded constructor through an alias
    return a, b, rng, gen


def cache_by_identity(obj, table):
    table[id(obj)] = obj  # id() as a subscript key
    return {id(obj): 1}  # id() as a dict-literal key


def walk(items):
    pending = {1, 2, 3}
    for item in pending:  # iterating a set literal binding
        yield item
    for item in set(items):  # iterating a set() call
        yield item


def collect(items):
    return [x for x in frozenset(items)]  # set iteration in a comprehension
