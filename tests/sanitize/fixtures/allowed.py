"""Code the determinism lint must accept: pragmas and deterministic idioms.

This file is never imported — the lint parses it.
"""

import random
import time


def telemetry():
    return time.perf_counter()  # det: allow (host-side telemetry)


def seeded_stream(seed):
    rng = random.Random(seed)  # seeded: fine
    return rng.random()  # method on a local object, not the global RNG


def ordered(mask):
    for index in sorted(mask):  # sorted() launders the set
        yield index


def keyed(threads):
    by_name = {t.name: t for t in threads}  # dict iteration is ordered
    return list(by_name)
