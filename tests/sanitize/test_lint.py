"""Self-test for scripts/determinism_lint.py against known-hazard fixtures."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

_spec = importlib.util.spec_from_file_location(
    "determinism_lint", REPO / "scripts" / "determinism_lint.py"
)
lint = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(lint)


def test_simulation_tree_is_clean(capsys):
    assert lint.main([str(REPO / "src" / "repro")]) == 0


def test_hazard_fixture_flags_every_class():
    findings = lint.lint_file(FIXTURES / "hazards.py")
    codes = {f.code for f in findings}
    assert codes == {"wall-clock", "global-rng", "id-key", "set-iteration"}


def test_hazard_fixture_fails_the_run(capsys):
    assert lint.main([str(FIXTURES / "hazards.py")]) == 1


def test_aliases_and_from_imports_resolve():
    findings = lint.lint_file(FIXTURES / "hazards.py")
    messages = [f.message for f in findings]
    assert any("time.perf_counter" in m for m in messages)  # import time as walltime
    assert any("random.randint" in m for m in messages)  # from random import randint
    assert any("datetime.datetime.now" in m for m in messages)  # from datetime import datetime
    assert any("numpy.random.default_rng" in m for m in messages)  # import numpy as np


def test_unseeded_ctors_flagged_once_each():
    findings = lint.lint_file(FIXTURES / "hazards.py")
    unseeded = [f for f in findings if "without a seed" in f.message]
    assert len(unseeded) == 2  # random.Random() and numpy.random.default_rng()


def test_pragma_and_deterministic_idioms_pass():
    assert lint.lint_file(FIXTURES / "allowed.py") == []


def test_no_python_files_is_a_usage_error(tmp_path, capsys):
    assert lint.main([str(tmp_path)]) == 2


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = lint.lint_file(bad)
    assert len(findings) == 1
    assert findings[0].code == "syntax"


def test_scheduler_zoo_is_covered_and_clean():
    """The lint's tree walk discovers the schedulers package and every
    registered scheduler module lints clean."""
    package = REPO / "src" / "repro" / "hypervisor" / "schedulers"
    discovered = set(lint.iter_python_files([REPO / "src" / "repro"]))
    modules = sorted(package.glob("*.py"))
    assert len(modules) >= 7  # __init__, base + the five schedulers
    for module in modules:
        assert module in discovered, f"{module} not walked by the lint"
        assert lint.lint_file(module) == [], module.name
