"""Tier-1: the full golden suite passes with the sanitizer armed.

Reuses the golden cases verbatim; ``REPRO_SANITIZE=1`` is set before the
machines are constructed, so every invariant checker runs on every edge.
Two things are asserted at once: no invariant fires across the whole
experiment matrix, and the sanitized results are bit-for-bit identical to
the unsanitized goldens (the sanitizer is read-only).
"""

import json

import pytest

from repro.experiments import results
from tests.experiments.test_goldens import CASES, GOLDENS


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_case_passes_sanitized(name, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    computed = json.loads(results.dumps(CASES[name](), experiment=name))
    golden = json.loads((GOLDENS / f"{name}.json").read_text())
    assert computed == golden
