"""Sanitizer coverage across the scheduler zoo.

The checker unit tests in ``test_checkers.py`` build their synthetic
violations against the default credit scheduler; this module repeats the
scheduler-shaped ones for every *other* registered scheduler, injecting
through the generic ``runqueues_view()``/``charge_domain`` surfaces the
generalized checkers consume — per-pCPU and global-queue layouts alike —
and finishes with a sanitized freeze/unfreeze workload per scheduler
that must run violation-free.
"""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.schedulers import available
from repro.sanitize import InvariantViolation
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy

NEW_SCHEDULERS = tuple(name for name in available() if name != "credit")


def sanitized_stack(scheduler, pcpus=2, vcpus=2):
    builder = StackBuilder(pcpus=pcpus, scheduler=scheduler)
    kernel = builder.guest("vm", vcpus=vcpus)
    sanitizer = builder.machine.install_sanitizer()
    return builder.machine, kernel, sanitizer


def live_queues(machine):
    """The scheduler's actual queue lists, via the generic view."""
    return [queue for _, queue in machine.scheduler.runqueues_view()]


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_runqueue_rejects_non_runnable_member(scheduler):
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.BLOCKED
    live_queues(machine)[0].append(vcpu)
    with pytest.raises(InvariantViolation, match="queued"):
        sanitizer.check_runqueues(machine.scheduler)


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_runqueue_rejects_double_membership(scheduler):
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.RUNNABLE
    queues = live_queues(machine)
    # Global-queue schedulers expose one list; duplicate membership in a
    # single queue must be rejected the same as membership in two.
    queues[0].append(vcpu)
    queues[-1].append(vcpu)
    with pytest.raises(InvariantViolation, match="two runqueues"):
        sanitizer.check_runqueues(machine.scheduler)


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_runqueue_rejects_running_state_mismatch(scheduler):
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.RUNNABLE
    machine.pool[0].current = vcpu
    with pytest.raises(InvariantViolation, match="runs"):
        sanitizer.check_runqueues(machine.scheduler)


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_charging_a_frozen_vcpu_raises(scheduler):
    """Every scheduler's charge path routes through check_burn."""
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.FROZEN
    with pytest.raises(InvariantViolation, match="while FROZEN"):
        machine.scheduler.charge_domain(vcpu, 100)


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_charging_a_negative_interval_raises(scheduler):
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    vcpu = kernel.domain.vcpus[0]
    with pytest.raises(InvariantViolation, match="negative interval"):
        machine.scheduler.charge_domain(vcpu, -1)


@pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
def test_sanitized_freeze_cycle_runs_clean(scheduler):
    """A real freeze/unfreeze workload sanitized, per scheduler."""
    machine, kernel, sanitizer = sanitized_stack(scheduler)
    for index in range(4):
        kernel.spawn(busy(2 * SEC), f"w{index}")
    machine.start()
    machine.run(until=200 * MS)
    balancer = VScaleBalancer(kernel)
    balancer.freeze(1)
    machine.run(until=machine.sim.now + 200 * MS)
    balancer.unfreeze(1)
    machine.run(until=machine.sim.now + 200 * MS)
    assert sanitizer.violations == 0
    # The universal hook sites fired (credit_conservation is credit-only).
    for checker in ("credit_frozen_burn", "runqueue_state", "vcpu_transition"):
        assert sanitizer.stats.get(checker, 0) > 0, checker
