"""Unit tests for the sanitizer: each checker fed a synthetic violating state.

Every test hand-crafts the smallest state that breaks one invariant and
asserts the matching checker raises :class:`InvariantViolation`.  A final
end-to-end test runs a real freeze/unfreeze workload sanitized and asserts
zero violations with all the hook sites exercised.
"""

import dataclasses

import pytest

from repro.core.balancer import VScaleBalancer
from repro.core.extendability import VMUsage, compute_extendability
from repro.hypervisor.domain import VCPUState
from repro.sanitize import InvariantViolation, Sanitizer, enabled
from repro.sim.engine import Event
from repro.sim.trace import NULL_TRACER
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def sanitized_stack(pcpus=2, vcpus=2):
    builder = StackBuilder(pcpus=pcpus)
    kernel = builder.guest("vm", vcpus=vcpus)
    sanitizer = builder.machine.install_sanitizer()
    return builder.machine, kernel, sanitizer


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
def test_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert enabled()


def test_env_var_installs_on_every_machine(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    machine, kernel, _ = (b := StackBuilder(pcpus=2)).machine, b.guest("vm"), None
    assert machine.sanitizer is not None
    # The null tracer is swapped for a ring tracer so violations have context.
    assert machine.tracer is not NULL_TRACER
    assert machine.sim.dispatch_check is not None


def test_install_is_idempotent_but_exclusive():
    machine, _, sanitizer = sanitized_stack()
    assert machine.install_sanitizer() is sanitizer
    with pytest.raises(RuntimeError, match="already has a sanitizer"):
        Sanitizer(machine).install()


def test_violation_carries_structured_context():
    machine, _, sanitizer = sanitized_stack()
    machine.tracer.emit(0, "sched", "run", "vm.v0")
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.fail("event_monotonic", "synthetic failure", detail=42)
    violation = excinfo.value
    assert violation.checker == "event_monotonic"
    assert violation.context == {"detail": 42}
    assert violation.time_ns == machine.sim.now
    assert violation.trace_tail  # the ring tracer's tail came along
    assert "[event_monotonic] synthetic failure" in str(violation)
    assert "detail = 42" in str(violation)
    assert sanitizer.violations == 1


# ----------------------------------------------------------------------
# sim/engine: event dispatch
# ----------------------------------------------------------------------
def test_dispatching_tombstone_raises():
    machine, _, sanitizer = sanitized_stack()
    event = machine.sim.schedule(10, lambda: None)
    event.cancel()
    with pytest.raises(InvariantViolation, match="tombstoned"):
        sanitizer.check_dispatch(machine.sim, event)


def test_dispatching_past_event_raises():
    machine, _, sanitizer = sanitized_stack()
    stale = Event(-5, 0, lambda: None, ())
    with pytest.raises(InvariantViolation, match="backwards"):
        sanitizer.check_dispatch(machine.sim, stale)


# ----------------------------------------------------------------------
# hypervisor/credit: burn + accounting
# ----------------------------------------------------------------------
def test_burning_credit_while_frozen_raises():
    _, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.FROZEN
    with pytest.raises(InvariantViolation, match="while FROZEN"):
        sanitizer.check_burn(vcpu, 100)


def test_burning_negative_interval_raises():
    _, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[0]
    with pytest.raises(InvariantViolation, match="negative interval"):
        sanitizer.check_burn(vcpu, -1)


def test_acct_detects_skipped_credit_grant():
    machine, kernel, sanitizer = sanitized_stack()
    domain = kernel.domain
    # Balances unchanged across "accounting" = the domain never got its share.
    before = {v: v.credits for v in domain.active_vcpus()}
    with pytest.raises(InvariantViolation, match="weight-proportional credit"):
        sanitizer.check_acct(machine.scheduler, [domain], before)


def test_acct_detects_unreset_consumption_window():
    machine, kernel, sanitizer = sanitized_stack()
    domain = kernel.domain
    acct = machine.config.acct_ns
    per_vcpu = machine.config.pcpus * acct / len(domain.active_vcpus())
    before = {v: v.credits - per_vcpu for v in domain.active_vcpus()}
    domain.window_consumed_ns = 7
    with pytest.raises(InvariantViolation, match="consumption window"):
        sanitizer.check_acct(machine.scheduler, [domain], before)


def test_acct_detects_credit_granted_to_frozen_vcpu():
    machine, kernel, sanitizer = sanitized_stack()
    domain = kernel.domain
    frozen = domain.vcpus[1]
    frozen.state = VCPUState.FROZEN
    frozen.credits = 1000.0  # a positive balance can only come from a grant
    acct = machine.config.acct_ns
    per_vcpu = machine.config.pcpus * acct / len(domain.active_vcpus())
    before = {v: v.credits - per_vcpu for v in domain.active_vcpus()}
    with pytest.raises(InvariantViolation, match="granted credit"):
        sanitizer.check_acct(machine.scheduler, [domain], before)


def test_runqueue_rejects_non_runnable_member():
    machine, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.BLOCKED
    machine.scheduler.runqueues[machine.pool[0]].append(vcpu)
    with pytest.raises(InvariantViolation, match="queued"):
        sanitizer.check_runqueues(machine.scheduler)


def test_runqueue_rejects_double_membership():
    machine, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.RUNNABLE
    machine.scheduler.runqueues[machine.pool[0]].append(vcpu)
    machine.scheduler.runqueues[machine.pool[1]].append(vcpu)
    with pytest.raises(InvariantViolation, match="two runqueues"):
        sanitizer.check_runqueues(machine.scheduler)


def test_runqueue_rejects_running_state_mismatch():
    machine, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.RUNNABLE
    machine.pool[0].current = vcpu
    with pytest.raises(InvariantViolation, match="runs"):
        sanitizer.check_runqueues(machine.scheduler)


def test_enqueue_rejects_non_runnable_vcpu():
    _, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[0]
    vcpu.state = VCPUState.BLOCKED
    with pytest.raises(InvariantViolation, match="enqueued while"):
        sanitizer.check_enqueue(vcpu)


# ----------------------------------------------------------------------
# hypervisor/domain: state transitions
# ----------------------------------------------------------------------
def test_illegal_transition_raises():
    _, kernel, sanitizer = sanitized_stack()
    vcpu = kernel.domain.vcpus[1]
    vcpu.state = VCPUState.FROZEN
    with pytest.raises(InvariantViolation, match="illegal vCPU transition"):
        sanitizer.check_vcpu_transition(vcpu, VCPUState.RUNNING)


def test_freezing_with_populated_guest_runqueue_raises():
    _, kernel, sanitizer = sanitized_stack()
    kernel.spawn(busy(1 * SEC), "w", pinned_to=1)
    # Raw set.add bypasses the mask's coalesce-fold hook: this test wants
    # exactly "mask bit set, runqueue still populated" with no side effects.
    set.add(kernel.cpu_freeze_mask, 1)
    vcpu = kernel.domain.vcpus[1]
    with pytest.raises(InvariantViolation, match="threads still on its runqueue"):
        sanitizer.check_vcpu_transition(vcpu, VCPUState.FROZEN)


# ----------------------------------------------------------------------
# guest/kernel: freeze mask, migration, placement
# ----------------------------------------------------------------------
class _FakeGuest:
    """Duck-typed guest for mask-consistency tests the real kernel cannot
    reach (its ``online_vcpus`` is derived from the mask, so a power
    disagreement requires a broken implementation)."""

    def __init__(self, domain, n, mask, online):
        self.domain = domain
        self.runqueues = [type("RQ", (), {"ready": [], "current": None})() for _ in range(n)]
        self.cpu_freeze_mask = mask
        self.online_vcpus = online


def test_freeze_mask_rejects_out_of_range_index():
    _, kernel, sanitizer = sanitized_stack()
    fake = _FakeGuest(kernel.domain, 2, {5}, 1)
    with pytest.raises(InvariantViolation, match="out-of-range"):
        sanitizer.check_freeze_mask(fake)


def test_freeze_mask_rejects_master_vcpu():
    _, kernel, sanitizer = sanitized_stack()
    fake = _FakeGuest(kernel.domain, 2, {0}, 1)
    with pytest.raises(InvariantViolation, match="master vCPU"):
        sanitizer.check_freeze_mask(fake)


def test_freeze_mask_rejects_power_disagreement():
    _, kernel, sanitizer = sanitized_stack()
    fake = _FakeGuest(kernel.domain, 2, {1}, 2)
    with pytest.raises(InvariantViolation, match="power disagrees"):
        sanitizer.check_freeze_mask(fake)


def test_freeze_migration_rejects_leftover_threads():
    _, kernel, sanitizer = sanitized_stack()
    kernel.spawn(busy(1 * SEC), "w0")
    kernel.spawn(busy(1 * SEC), "w1")  # fork balance lands this on rq1
    assert kernel.runqueues[1].ready
    with pytest.raises(InvariantViolation, match="migratable threads left"):
        sanitizer.check_freeze_migration(kernel, 1)


def test_freeze_migration_rejects_bound_event_channel():
    _, kernel, sanitizer = sanitized_stack()
    kernel.domain.new_event_channel("nic", bound_vcpu=1)
    with pytest.raises(InvariantViolation, match="event channels still bound"):
        sanitizer.check_freeze_migration(kernel, 1)


def test_placement_rejects_unpinned_thread_on_frozen_vcpu():
    _, kernel, sanitizer = sanitized_stack()
    thread = kernel.spawn(busy(1 * MS), "w")
    set.add(kernel.cpu_freeze_mask, 1)
    with pytest.raises(InvariantViolation, match="placed on frozen"):
        sanitizer.check_thread_placement(kernel, thread, 1)


def test_placement_rejects_runqueue_target_mismatch():
    _, kernel, sanitizer = sanitized_stack()
    thread = kernel.spawn(busy(1 * MS), "w")
    assert thread.vcpu_index == 0
    with pytest.raises(InvariantViolation, match="not its target"):
        sanitizer.check_thread_placement(kernel, thread, 1)


# ----------------------------------------------------------------------
# core/balancer: post-syscall agreement
# ----------------------------------------------------------------------
def test_balancer_freeze_requires_mask_bit():
    _, kernel, sanitizer = sanitized_stack()
    kernel.domain.vcpus[1].freeze_pending = True  # hypervisor marked, mask not
    with pytest.raises(InvariantViolation, match="mask bit clear"):
        sanitizer.check_balancer_op(kernel, 1, freeze=True)


def test_balancer_unfreeze_requires_mask_bit_clear():
    _, kernel, sanitizer = sanitized_stack()
    set.add(kernel.cpu_freeze_mask, 1)
    with pytest.raises(InvariantViolation, match="left the mask bit set"):
        sanitizer.check_balancer_op(kernel, 1, freeze=False)


# ----------------------------------------------------------------------
# core/extendability: Algorithm 1 properties
# ----------------------------------------------------------------------
PERIOD = 10 * MS


def _round(usages, pool=2):
    return compute_extendability(usages, pool_pcpus=pool, period_ns=PERIOD)


def test_extendability_accepts_a_correct_round():
    _, _, sanitizer = sanitized_stack()
    usages = [
        VMUsage("a", 256, consumed_ns=2 * PERIOD),
        VMUsage("b", 256, consumed_ns=0),
    ]
    sanitizer.check_extendability(usages, _round(usages), 2, PERIOD, tolerance=0.0)


def test_extendability_rejects_wrong_fair_share_sum():
    _, _, sanitizer = sanitized_stack()
    usages = [VMUsage("a", 256, consumed_ns=PERIOD), VMUsage("b", 256, consumed_ns=0)]
    results = _round(usages)
    results["a"] = dataclasses.replace(
        results["a"], fair_share_ns=results["a"].fair_share_ns + 10_000
    )
    with pytest.raises(InvariantViolation, match="fair shares"):
        sanitizer.check_extendability(usages, results, 2, PERIOD, tolerance=0.0)


def test_extendability_rejects_wrong_optimal_vcpu_count():
    _, _, sanitizer = sanitized_stack()
    usages = [VMUsage("a", 256, consumed_ns=2 * PERIOD), VMUsage("b", 256, consumed_ns=0)]
    results = _round(usages)
    results["a"] = dataclasses.replace(results["a"], optimal_vcpus=1)
    with pytest.raises(InvariantViolation, match="disagrees with ceil"):
        sanitizer.check_extendability(usages, results, 2, PERIOD, tolerance=0.0)


def test_extendability_rejects_unpinned_releaser():
    _, _, sanitizer = sanitized_stack()
    usages = [VMUsage("a", 256, consumed_ns=2 * PERIOD), VMUsage("b", 256, consumed_ns=0)]
    results = _round(usages)
    # Subtract so ceil(s_ext/t) is unchanged and the pinning check fires,
    # not the n_i check.
    results["b"] = dataclasses.replace(
        results["b"], extendability_ns=results["b"].extendability_ns - 12_345
    )
    with pytest.raises(InvariantViolation, match="not pinned to its fair share"):
        sanitizer.check_extendability(usages, results, 2, PERIOD, tolerance=0.0)


def test_extendability_rejects_lost_slack():
    _, _, sanitizer = sanitized_stack()
    usages = [VMUsage("a", 256, consumed_ns=2 * PERIOD), VMUsage("b", 256, consumed_ns=0)]
    results = _round(usages)
    # The competitor's share shrinks to its bare fair share: the slack the
    # releaser gave up vanished.  n_i is adjusted to match so the ceil check
    # does not fire first.
    results["a"] = dataclasses.replace(
        results["a"], extendability_ns=results["a"].fair_share_ns, optimal_vcpus=1
    )
    with pytest.raises(InvariantViolation, match="not conserved"):
        sanitizer.check_extendability(usages, results, 2, PERIOD, tolerance=0.0)


def test_extendability_rejects_disproportional_slack_split():
    _, _, sanitizer = sanitized_stack()
    usages = [
        VMUsage("r", 256, consumed_ns=0),
        VMUsage("c1", 256, consumed_ns=2 * PERIOD),
        VMUsage("c2", 512, consumed_ns=2 * PERIOD),
    ]
    results = _round(usages)
    # Shift slack from the heavy competitor to the light one, keeping the
    # total conserved.
    results["c1"] = dataclasses.replace(
        results["c1"], extendability_ns=results["c1"].extendability_ns + 1000
    )
    results["c2"] = dataclasses.replace(
        results["c2"], extendability_ns=results["c2"].extendability_ns - 1000
    )
    with pytest.raises(InvariantViolation, match="not weight-proportional"):
        sanitizer.check_extendability(usages, results, 2, PERIOD, tolerance=0.0)


# ----------------------------------------------------------------------
# End to end: a real freeze/unfreeze workload sanitized, zero violations
# ----------------------------------------------------------------------
def test_sanitized_workload_runs_clean_and_exercises_all_hooks():
    machine, kernel, sanitizer = sanitized_stack(pcpus=2, vcpus=2)
    for index in range(4):
        kernel.spawn(busy(2 * SEC), f"w{index}")
    machine.start()
    machine.run(until=200 * MS)
    balancer = VScaleBalancer(kernel)
    balancer.freeze(1)
    machine.run(until=machine.sim.now + 200 * MS)
    balancer.unfreeze(1)
    machine.run(until=machine.sim.now + 200 * MS)
    assert sanitizer.violations == 0
    for checker in (
        "event_monotonic",
        "credit_frozen_burn",
        "credit_conservation",
        "runqueue_state",
        "vcpu_transition",
        "freeze_mask_power",
        "freeze_migration",
        "thread_placement",
    ):
        assert sanitizer.stats.get(checker, 0) > 0, checker
