"""Tests for interrupt behaviour at the guest/hypervisor boundary."""

import pytest

from repro.guest.actions import BlockOn, Compute, WaitQueue
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.irq import IRQClass
from repro.units import MS, SEC, US
from tests.conftest import StackBuilder, busy


class TestEventChannelRouting:
    def test_handler_runs_on_bound_vcpu(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "w0", pinned_to=0)
        kernel.spawn(busy(1 * SEC), "w1", pinned_to=1)
        machine = builder.start()
        machine.run(until=10 * MS)
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=1)
        contexts = []
        channel.handler = lambda p: contexts.append(kernel.current_vcpu_index())
        channel.post("x")
        machine.run(until=machine.sim.now + 5 * MS)
        assert contexts == [1]

    def test_rebind_moves_delivery(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "w0", pinned_to=0)
        kernel.spawn(busy(1 * SEC), "w1", pinned_to=1)
        machine = builder.start()
        machine.run(until=10 * MS)
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=0)
        contexts = []
        channel.handler = lambda p: contexts.append(kernel.current_vcpu_index())
        channel.post("a")
        machine.run(until=machine.sim.now + 5 * MS)
        channel.rebind(1)
        channel.post("b")
        machine.run(until=machine.sim.now + 5 * MS)
        assert contexts == [0, 1]

    def test_burst_of_posts_all_delivered(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "w0", pinned_to=0)
        machine = builder.start()
        machine.run(until=10 * MS)
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=0)
        received = []
        channel.handler = received.append
        for index in range(50):
            channel.post(index)
        machine.run(until=machine.sim.now + 20 * MS)
        assert received == list(range(50))


class TestIPICounting:
    def test_counters_attribute_sender_and_receiver(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=5 * MS)
        queue = WaitQueue("q")
        queue.kernel = kernel

        def sleeper():
            yield BlockOn(queue)
            yield Compute(1 * MS)

        def waker():
            yield Compute(2 * MS)
            queue.fire_one()
            yield Compute(50 * MS)

        kernel.spawn(sleeper(), "s", pinned_to=1)
        kernel.spawn(waker(), "w", pinned_to=0)
        machine.run(until=machine.sim.now + 100 * MS)
        assert int(kernel.ipi_sent[0]) == 1
        assert int(kernel.domain.vcpus[1].ipi_received) == 1
        assert int(kernel.ipi_sent[1]) == 0

    def test_ipi_delay_recorded_per_domain(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=5 * MS)
        domain = kernel.domain
        src = domain.vcpus[0]
        dst = domain.vcpus[1]
        machine.scheduler.vcpu_wake(src)
        machine.run(until=machine.sim.now + 1 * MS)
        before = len(domain.ipi_delay.samples)
        machine.hyp_send_ipi(src, dst, IRQClass.RESCHED_IPI)
        machine.run(until=machine.sim.now + 20 * MS)
        assert len(domain.ipi_delay.samples) == before + 1
        assert domain.ipi_delay.samples[-1] >= 0


class TestBlockRace:
    def test_block_with_pending_irq_rewakes(self, single_guest):
        """The SCHEDOP_block event-check: a vCPU must not sleep on top of
        a pending upcall (regression test for the lost-interrupt race)."""
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=5 * MS)
        vcpu = kernel.domain.vcpus[1]
        assert vcpu.state is VCPUState.BLOCKED
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=1)
        received = []
        channel.handler = received.append

        # Wake the vCPU, post while it runs, and have it idle immediately:
        # the pending IRQ must still be delivered promptly.
        machine.hyp_wake(vcpu)
        machine.run(until=machine.sim.now + 100 * US)
        channel.post("racy")
        machine.run(until=machine.sim.now + 50 * MS)
        assert received == ["racy"]
