"""Tests for thread classification and lifecycle."""

import pytest

from repro.guest.threads import Thread, ThreadKind, ThreadState
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy, chunks


class _KernelStub:
    pass


class TestClassification:
    def test_uthreads_are_migratable(self):
        thread = Thread(_KernelStub(), iter(()), "u", kind=ThreadKind.UTHREAD)
        assert thread.migratable

    def test_system_kthreads_are_migratable(self):
        thread = Thread(_KernelStub(), iter(()), "rcu_sched", kind=ThreadKind.KTHREAD_SYSTEM)
        assert thread.migratable

    def test_percpu_kthreads_are_not_migratable(self):
        thread = Thread(_KernelStub(), iter(()), "ksoftirqd/0", kind=ThreadKind.KTHREAD_PERCPU)
        assert not thread.migratable

    def test_pinning_removes_migratability(self):
        thread = Thread(_KernelStub(), iter(()), "u")
        thread.pinned_to = 1
        assert not thread.migratable

    def test_tids_are_unique_and_increasing(self):
        a = Thread(_KernelStub(), iter(()), "a")
        b = Thread(_KernelStub(), iter(()), "b")
        assert b.tid > a.tid


class TestLifecycle:
    def test_state_progression(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(busy(50 * MS), "t")
        assert thread.state is ThreadState.READY
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert thread.state is ThreadState.DONE
        assert thread.done

    def test_exec_accounting_accumulates(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(chunks(5, 10 * MS), "t")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert thread.exec_ns >= 50 * MS
        assert thread.vruntime >= thread.exec_ns - 1 * MS

    def test_exit_listener_called_once(self, single_guest):
        builder, kernel = single_guest
        exits = []
        kernel.exit_listeners.append(lambda t: exits.append(t.name))
        kernel.spawn(busy(10 * MS), "t")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert exits.count("t") == 1

    def test_nonpreemptible_defaults_to_zero(self):
        thread = Thread(_KernelStub(), iter(()), "t")
        assert thread.nonpreemptible == 0
