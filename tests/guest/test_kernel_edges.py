"""Edge-case tests for guest kernel APIs: repinning, hypercall yield,
nonpreemptible protection, and bad inputs."""

import pytest

from repro.guest.actions import Compute, HypercallYield
from repro.guest.threads import ThreadState
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


class TestRepin:
    def test_ready_thread_moves_immediately(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=5 * MS)
        # Two threads pinned to vCPU0 so one is READY (not current).
        threads = [kernel.spawn(busy(1 * SEC), f"t{i}", pinned_to=0) for i in range(2)]
        machine.run(until=10 * MS)
        ready = next(t for t in threads if t.state is ThreadState.READY)
        assert kernel.repin_thread(ready, 1)
        assert ready.vcpu_index == 1
        assert ready.pinned_to == 1

    def test_running_thread_deferred(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(busy(1 * SEC), "t", pinned_to=0)
        machine = builder.start()
        machine.run(until=10 * MS)
        assert thread.state is ThreadState.RUNNING
        assert not kernel.repin_thread(thread, 1)
        assert thread.pinned_to == 1  # honoured at the next placement

    def test_invalid_index_rejected(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(busy(MS), "t")
        with pytest.raises(ValueError):
            kernel.repin_thread(thread, 9)

    def test_repin_to_same_vcpu_is_noop(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        threads = [kernel.spawn(busy(1 * SEC), f"t{i}", pinned_to=0) for i in range(2)]
        machine.run(until=10 * MS)
        ready = next(t for t in threads if t.state is ThreadState.READY)
        migrations = ready.migrations
        assert kernel.repin_thread(ready, 0)
        assert ready.migrations == migrations


class TestHypercallYield:
    def test_yield_gives_pcpu_to_rival(self):
        builder = StackBuilder(pcpus=1)
        polite = builder.guest("polite", vcpus=1)
        rival = builder.guest("rival", vcpus=1)
        rival.spawn(busy(10 * SEC), "hog")
        progress = []

        def yielder():
            for _ in range(3):
                yield Compute(1 * MS)
                progress.append(polite.sim.now)
                yield HypercallYield()

        polite.spawn(yielder(), "nice")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert len(progress) == 3
        # Each yield surrendered the pCPU: the rival ran between chunks.
        rival_run = rival.domain.total_run_ns(machine.sim.now)
        assert rival_run > 500 * MS


class TestNonpreemptibleProtection:
    def test_rt_cannot_preempt_spinlock_section(self, single_guest):
        from repro.guest.sync import KernelSpinLock

        builder, kernel = single_guest
        lock = KernelSpinLock(kernel)
        order = []

        def holder(thread):
            yield from lock.acquire(thread)
            order.append("cs-enter")
            yield Compute(20 * MS)
            order.append("cs-exit")
            yield from lock.release(thread)

        ph = []

        def deferred():
            yield from ph[0]

        thread = kernel.spawn(deferred(), "holder", pinned_to=0)
        ph.append(holder(thread))
        machine = builder.start()
        machine.run(until=5 * MS)

        def rt_job():
            order.append("rt")
            yield Compute(1 * MS)

        kernel.spawn(rt_job(), "rt", rt=True, pinned_to=0)
        machine.run(until=100 * MS)
        # The RT thread ran only after the critical section closed.
        assert order == ["cs-enter", "cs-exit", "rt"]
