"""Tests for the per-vCPU runqueue."""

import pytest

from repro.guest.runqueue import RunQueue
from repro.guest.threads import Thread, ThreadKind


class _KernelStub:
    pass


def make_thread(name, kind=ThreadKind.UTHREAD, rt=False, vruntime=0):
    thread = Thread(_KernelStub(), iter(()), name, kind=kind, rt=rt)
    thread.vruntime = vruntime
    return thread


def test_enqueue_sets_vcpu_index():
    rq = RunQueue(3)
    thread = make_thread("t")
    rq.enqueue(thread)
    assert thread.vcpu_index == 3
    assert rq.load() == 1


def test_double_enqueue_rejected():
    rq = RunQueue(0)
    thread = make_thread("t")
    rq.enqueue(thread)
    with pytest.raises(RuntimeError):
        rq.enqueue(thread)


def test_pick_next_min_vruntime():
    rq = RunQueue(0)
    high = make_thread("high", vruntime=100)
    low = make_thread("low", vruntime=10)
    rq.enqueue(high)
    rq.enqueue(low)
    assert rq.pick_next() is low


def test_rt_beats_fair_regardless_of_vruntime():
    rq = RunQueue(0)
    fair = make_thread("fair", vruntime=0)
    rt = make_thread("rt", rt=True, vruntime=10**9)
    rq.enqueue(fair)
    rq.enqueue(rt)
    assert rq.pick_next() is rt


def test_tie_breaks_by_tid():
    rq = RunQueue(0)
    first = make_thread("a", vruntime=5)
    second = make_thread("b", vruntime=5)
    rq.enqueue(second)
    rq.enqueue(first)
    assert rq.pick_next() is first if first.tid < second.tid else second


def test_min_vruntime_is_monotone():
    rq = RunQueue(0)
    thread = make_thread("t", vruntime=50)
    rq.enqueue(thread)
    rq.advance_min_vruntime()
    assert rq.min_vruntime == 50
    rq.dequeue(thread)
    low = make_thread("low", vruntime=10)
    rq.enqueue(low)
    rq.advance_min_vruntime()
    assert rq.min_vruntime == 50  # never goes backwards


def test_steal_candidates_exclude_pinned_rt_and_percpu():
    rq = RunQueue(0)
    normal = make_thread("n")
    pinned = make_thread("p")
    pinned.pinned_to = 0
    rt = make_thread("r", rt=True)
    percpu = make_thread("k", kind=ThreadKind.KTHREAD_PERCPU)
    for t in (normal, pinned, rt, percpu):
        rq.enqueue(t)
    assert rq.steal_candidates() == [normal]


def test_pick_next_empty_returns_none():
    assert RunQueue(0).pick_next() is None
