"""Tests for the guest kernel: dispatch, preemption, load balancing,
dynticks, and the freeze-mask migration path."""

import pytest

from repro.guest.actions import BlockOn, Compute, SpinFlag, WaitQueue, YieldCPU
from repro.guest.kernel import GuestConfig
from repro.guest.threads import ThreadState
from repro.hypervisor.domain import VCPUState
from repro.units import MS, SEC, US
from tests.conftest import StackBuilder, busy


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(busy(100 * MS), "t")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert thread.done
        assert thread.exec_ns >= 100 * MS

    def test_compute_duration_is_respected(self, single_guest):
        builder, kernel = single_guest
        done_at = []

        def job():
            yield Compute(50 * MS)
            done_at.append(kernel.sim.now)

        kernel.spawn(job(), "timed")
        machine = builder.start()
        machine.run(until=1 * SEC)
        # Dedicated vCPU: finishes in ~50ms (+ context switch overhead).
        assert done_at and 50 * MS <= done_at[0] <= 51 * MS

    def test_threads_spread_across_vcpus(self, single_guest):
        builder, kernel = single_guest
        t0 = kernel.spawn(busy(200 * MS), "a")
        t1 = kernel.spawn(busy(200 * MS), "b")
        machine = builder.start()
        machine.run(until=150 * MS)
        assert {t0.vcpu_index, t1.vcpu_index} == {0, 1}

    def test_timeshare_on_one_vcpu(self, single_guest):
        builder, kernel = single_guest
        t0 = kernel.spawn(busy(100 * MS), "a", pinned_to=0)
        t1 = kernel.spawn(busy(100 * MS), "b", pinned_to=0)
        machine = builder.start()
        machine.run(until=90 * MS)
        # CFS slicing: both made comparable progress.
        assert t0.exec_ns > 20 * MS
        assert t1.exec_ns > 20 * MS

    def test_yield_rotates_threads(self, single_guest):
        builder, kernel = single_guest
        order = []

        def polite(tag):
            for _ in range(3):
                order.append(tag)
                yield Compute(1 * MS)
                yield YieldCPU()

        kernel.spawn(polite("x"), "x", pinned_to=0)
        kernel.spawn(polite("y"), "y", pinned_to=0)
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert order.count("x") == 3 and order.count("y") == 3
        # They alternated rather than running back-to-back.
        assert order[:4] in (["x", "y", "x", "y"], ["y", "x", "y", "x"])

    def test_rt_thread_preempts_fair(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "fair", pinned_to=0)
        progress = []

        def rt_job():
            yield Compute(1 * MS)
            progress.append(kernel.sim.now)

        machine = builder.start()
        machine.run(until=20 * MS)
        kernel.spawn(rt_job(), "rt", rt=True, pinned_to=0)
        machine.run(until=40 * MS)
        assert progress, "RT thread did not run promptly"
        assert progress[0] <= 30 * MS


class TestBlockingAndWakeup:
    def test_block_and_wake(self, single_guest):
        builder, kernel = single_guest
        queue = WaitQueue("q")
        queue.kernel = kernel
        stages = []

        def waiter():
            stages.append("sleep")
            yield BlockOn(queue)
            stages.append("woke")

        def waker():
            yield Compute(20 * MS)
            queue.fire_one()

        kernel.spawn(waiter(), "waiter")
        kernel.spawn(waker(), "waker")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert stages == ["sleep", "woke"]

    def test_cross_vcpu_wake_sends_ipi(self, single_guest):
        builder, kernel = single_guest
        queue = WaitQueue("q")
        queue.kernel = kernel

        def waiter():
            yield BlockOn(queue)
            yield Compute(1 * MS)

        def waker():
            yield Compute(5 * MS)
            queue.fire_one()
            yield Compute(200 * MS)  # keep the waker's vCPU busy

        kernel.spawn(waiter(), "waiter", pinned_to=1)
        kernel.spawn(waker(), "waker", pinned_to=0)
        machine = builder.start()
        machine.run(until=100 * MS)
        assert int(kernel.ipi_sent[0]) >= 1
        assert int(kernel.domain.vcpus[1].ipi_received) >= 1

    def test_local_wake_sends_no_ipi(self, single_guest):
        builder, kernel = single_guest
        queue = WaitQueue("q")
        queue.kernel = kernel

        def waiter():
            yield BlockOn(queue)

        def waker():
            yield Compute(5 * MS)
            queue.fire_one()

        kernel.spawn(waiter(), "waiter", pinned_to=0)
        kernel.spawn(waker(), "waker", pinned_to=0)
        machine = builder.start()
        machine.run(until=100 * MS)
        assert int(kernel.ipi_sent[0]) == 0

    def test_timer_wake(self, single_guest):
        builder, kernel = single_guest
        woke_at = []

        def sleeper():
            flag = SpinFlag("alarm")
            kernel.start_timer(30 * MS, flag)
            yield BlockOn(flag)
            woke_at.append(kernel.sim.now)

        kernel.spawn(sleeper(), "sleeper")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert woke_at and 30 * MS <= woke_at[0] <= 32 * MS


class TestDynticks:
    def test_idle_vcpu_receives_no_timer_interrupts(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(2 * SEC), "w", pinned_to=0)
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert int(kernel.timer_interrupts[0]) >= 900
        assert int(kernel.timer_interrupts[1]) == 0

    def test_tick_rate_is_1000hz(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(2 * SEC), "w", pinned_to=0)
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert int(kernel.timer_interrupts[0]) == pytest.approx(1000, abs=10)


class TestLoadBalancing:
    def test_idle_balance_pulls_backlog(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        machine.run(until=5 * MS)
        # Spawn three pinned to vCPU0, then unpin: vCPU1's idle/periodic
        # balance should pull at least one over.
        threads = [kernel.spawn(busy(300 * MS), f"t{i}", pinned_to=0) for i in range(3)]
        for t in threads:
            t.pinned_to = None
        machine.run(until=100 * MS)
        assert any(t.vcpu_index == 1 for t in threads)

    def test_wakeup_balance_avoids_frozen(self, single_guest):
        builder, kernel = single_guest
        machine = builder.start()
        kernel.cpu_freeze_mask.add(1)
        queue = WaitQueue("q")
        queue.kernel = kernel

        def waiter():
            yield BlockOn(queue)
            yield Compute(10 * MS)

        thread = kernel.spawn(waiter(), "w")
        machine.run(until=5 * MS)
        kernel.run_in_context(0, queue.fire_one)
        machine.run(until=10 * MS)
        assert thread.vcpu_index == 0

    def test_all_vcpus_frozen_is_an_error(self, single_guest):
        builder, kernel = single_guest
        kernel.cpu_freeze_mask.update({0, 1})
        with pytest.raises(RuntimeError):
            kernel.spawn(busy(MS), "doomed")


class TestFreezeMigration:
    def _freeze_one(self, builder, kernel, index=1):
        from repro.core.balancer import VScaleBalancer

        balancer = VScaleBalancer(kernel)
        balancer.freeze(index)
        return balancer

    def test_threads_migrate_off_frozen_vcpu(self, single_guest):
        builder, kernel = single_guest
        threads = [kernel.spawn(busy(2 * SEC), f"t{i}") for i in range(4)]
        machine = builder.start()
        machine.run(until=50 * MS)
        self._freeze_one(builder, kernel, 1)
        machine.run(until=machine.sim.now + 20 * MS)
        vcpu1 = kernel.domain.vcpus[1]
        assert vcpu1.state is VCPUState.FROZEN
        assert all(t.vcpu_index == 0 for t in threads if not t.done)
        assert kernel.runqueues[1].load() == 0

    def test_frozen_vcpu_stops_ticking(self, single_guest):
        builder, kernel = single_guest
        for i in range(4):
            kernel.spawn(busy(5 * SEC), f"t{i}")
        machine = builder.start()
        machine.run(until=50 * MS)
        self._freeze_one(builder, kernel, 1)
        machine.run(until=machine.sim.now + 50 * MS)
        ticks_at_freeze = int(kernel.timer_interrupts[1])
        machine.run(until=machine.sim.now + 500 * MS)
        assert int(kernel.timer_interrupts[1]) == ticks_at_freeze

    def test_unfreeze_pulls_work_back(self, single_guest):
        from repro.core.balancer import VScaleBalancer

        builder, kernel = single_guest
        threads = [kernel.spawn(busy(5 * SEC), f"t{i}") for i in range(4)]
        machine = builder.start()
        machine.run(until=50 * MS)
        balancer = VScaleBalancer(kernel)
        balancer.freeze(1)
        machine.run(until=machine.sim.now + 50 * MS)
        balancer.unfreeze(1)
        machine.run(until=machine.sim.now + 200 * MS)
        assert kernel.domain.vcpus[1].state is not VCPUState.FROZEN
        assert any(t.vcpu_index == 1 for t in threads if not t.done)

    def test_event_channels_rebound_away(self, single_guest):
        builder, kernel = single_guest
        channel = kernel.domain.new_event_channel("nic", bound_vcpu=1)
        for i in range(2):
            kernel.spawn(busy(2 * SEC), f"t{i}")
        machine = builder.start()
        machine.run(until=50 * MS)
        self._freeze_one(builder, kernel, 1)
        machine.run(until=machine.sim.now + 20 * MS)
        assert channel.bound_vcpu == 0

    def test_percpu_kthreads_not_migrated(self, single_guest):
        builder, kernel = single_guest
        kernel.spawn(busy(1 * SEC), "u")
        machine = builder.start()
        machine.run(until=50 * MS)
        self._freeze_one(builder, kernel, 1)
        machine.run(until=machine.sim.now + 20 * MS)
        for servant in kernel.percpu_kthreads[1]:
            assert servant.vcpu_index == 1
            assert servant.state is ThreadState.BLOCKED


class TestSpinBudgetAccounting:
    def test_spin_budget_counts_on_cpu_time_only(self):
        """A spinner on a descheduled vCPU must not consume its budget."""
        from repro.guest.actions import SpinWait

        builder = StackBuilder(pcpus=1)
        kernel = builder.guest("vm", vcpus=1)
        rival = builder.guest("rival", vcpus=1)
        rival.spawn(busy(10 * SEC), "hog")
        flag = SpinFlag("never")
        flag.kernel = kernel
        outcome = []

        def spinner():
            fired = yield SpinWait(flag, 40 * MS)
            outcome.append((fired, kernel.sim.now))

        kernel.spawn(spinner(), "s")
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert outcome, "spin never timed out"
        fired, at = outcome[0]
        assert fired is False
        # 40ms of on-CPU spinning, but the vCPU only had ~50% of a pCPU:
        # wall-clock must be >= ~70ms.
        assert at >= 70 * MS

    def test_spin_released_by_fire(self, single_guest):
        from repro.guest.actions import SpinWait

        builder, kernel = single_guest
        flag = SpinFlag("go")
        flag.kernel = kernel
        outcome = []

        def spinner():
            fired = yield SpinWait(flag, 10 * SEC)
            outcome.append((fired, kernel.sim.now))

        def firer():
            yield Compute(5 * MS)
            flag.fire_all()

        kernel.spawn(spinner(), "s", pinned_to=0)
        kernel.spawn(firer(), "f", pinned_to=1)
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert outcome and outcome[0][0] is True
        assert outcome[0][1] <= 6 * MS

    def test_latched_flag_skips_wait(self, single_guest):
        builder, kernel = single_guest
        flag = SpinFlag("latched")
        flag.kernel = kernel
        flag.fire_all()
        done = []

        def late_waiter():
            yield BlockOn(flag)
            done.append(kernel.sim.now)

        kernel.spawn(late_waiter(), "late")
        machine = builder.start()
        machine.run(until=10 * MS)
        assert done and done[0] <= 1 * MS
