"""Tests for the RCU grace-period model."""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.guest.rcu import RCUDomain
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def build(nbusy=2, vcpus=2, pcpus=2):
    builder = StackBuilder(pcpus=pcpus)
    kernel = builder.guest("vm", vcpus=vcpus)
    for index in range(nbusy):
        kernel.spawn(busy(10 * SEC), f"w{index}")
    rcu = RCUDomain(kernel)
    machine = builder.start()
    machine.run(until=20 * MS)
    return builder, kernel, rcu, machine


class TestGracePeriods:
    def test_callback_runs_after_all_report(self):
        builder, kernel, rcu, machine = build()
        fired = []
        rcu.call_rcu(lambda: fired.append(machine.sim.now))
        queued_at = machine.sim.now
        machine.run(until=machine.sim.now + 20 * MS)
        assert fired, "grace period never completed"
        # Both busy vCPUs tick at 1ms: the GP needs at most a few ticks.
        assert fired[0] - queued_at <= 10 * MS
        assert rcu.completed_grace_periods == 1

    def test_idle_vcpus_do_not_delay_grace_periods(self):
        """Dynticks-idle vCPUs are already quiescent."""
        builder, kernel, rcu, machine = build(nbusy=1)  # vCPU1 idle
        fired = []
        rcu.call_rcu(lambda: fired.append(True))
        state = rcu.synchronize_rcu_state()
        assert state["waiting_on"] == [0]
        machine.run(until=machine.sim.now + 10 * MS)
        assert fired

    def test_frozen_vcpu_does_not_block_grace_periods(self):
        """The paper's §3.3 point: freezing needs no RCU participation."""
        builder, kernel, rcu, machine = build(nbusy=4, vcpus=4, pcpus=4)
        balancer = VScaleBalancer(kernel)
        balancer.freeze(3)
        machine.run(until=machine.sim.now + 50 * MS)
        fired = []
        rcu.call_rcu(lambda: fired.append(True))
        state = rcu.synchronize_rcu_state()
        assert 3 not in state["waiting_on"]
        machine.run(until=machine.sim.now + 20 * MS)
        assert fired
        assert rcu.completed_grace_periods >= 1

    def test_vcpu_that_idles_mid_period_is_released(self):
        builder, kernel, rcu, machine = build(nbusy=2)
        # Start a GP, then let one worker finish (its vCPU goes idle).
        short_builder = StackBuilder(pcpus=2)
        kernel2 = short_builder.guest("vm", vcpus=2)
        kernel2.spawn(busy(30 * MS), "short", pinned_to=1)
        kernel2.spawn(busy(5 * SEC), "long", pinned_to=0)
        rcu2 = RCUDomain(kernel2)
        machine2 = short_builder.start()
        machine2.run(until=5 * MS)
        fired = []
        rcu2.call_rcu(lambda: fired.append(True))
        assert 1 in rcu2.synchronize_rcu_state()["waiting_on"]
        machine2.run(until=200 * MS)  # the short thread exits, vCPU1 idles
        assert fired

    def test_chained_callbacks_start_new_period(self):
        builder, kernel, rcu, machine = build()
        order = []
        rcu.call_rcu(lambda: order.append("first"))
        machine.run(until=machine.sim.now + 20 * MS)
        rcu.call_rcu(lambda: order.append("second"))
        machine.run(until=machine.sim.now + 20 * MS)
        assert order == ["first", "second"]
        assert rcu.completed_grace_periods == 2
        numbers = [n for n, _ in rcu.latencies]
        assert numbers == sorted(numbers)

    def test_no_active_period_reports_inactive(self):
        builder, kernel, rcu, machine = build()
        assert rcu.synchronize_rcu_state() == {"active": False}
