"""Tests for guest synchronization primitives: mutual exclusion, lost
wakeups, handoff, barriers, semaphores, and the pv-spinlock path."""

import pytest

from repro.guest.actions import Compute
from repro.guest.kernel import GuestConfig
from repro.guest.sync import (
    CondVar,
    Futex,
    GuestMutex,
    KernelSpinLock,
    OpenMPBarrier,
    Semaphore,
)
from repro.units import MS, SEC, US
from tests.conftest import StackBuilder


def drive(builder, until=5 * SEC):
    machine = builder.start()
    machine.run(until=until)
    return machine


class TestGuestMutex:
    def test_mutual_exclusion(self, single_guest):
        builder, kernel = single_guest
        mutex = GuestMutex(kernel)
        in_cs = [0]
        violations = [0]

        def worker(n):
            def gen(thread):
                for _ in range(n):
                    yield from mutex.lock(thread)
                    in_cs[0] += 1
                    if in_cs[0] > 1:
                        violations[0] += 1
                    yield Compute(100 * US)
                    in_cs[0] -= 1
                    yield from mutex.unlock(thread)
                    yield Compute(50 * US)

            return gen

        for index in range(4):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{index}")
            placeholder.append(worker(20)(thread))
        drive(builder)
        assert violations[0] == 0
        assert mutex.acquisitions.value == 80

    def test_unlock_by_non_owner_raises(self, single_guest):
        builder, kernel = single_guest
        mutex = GuestMutex(kernel)
        failures = []

        def bad(thread):
            try:
                yield from mutex.unlock(thread)
            except RuntimeError:
                failures.append(True)

        placeholder = []

        def deferred():
            yield from placeholder[0]

        thread = kernel.spawn(deferred(), "bad")
        placeholder.append(bad(thread))
        drive(builder, until=100 * MS)
        assert failures == [True]

    def test_contended_waiters_all_eventually_acquire(self, single_guest):
        """Barging semantics: no ordering guarantee, but no waiter is lost."""
        builder, kernel = single_guest
        mutex = GuestMutex(kernel)
        order = []

        def worker(tag):
            def gen(thread):
                yield Compute((1 + tag) * 200 * US)  # stagger arrivals
                yield from mutex.lock(thread)
                order.append(tag)
                yield Compute(5 * MS)
                yield from mutex.unlock(thread)

            return gen

        for tag in range(3):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{tag}", pinned_to=0)
            placeholder.append(worker(tag)(thread))
        drive(builder)
        assert sorted(order) == [0, 1, 2]
        assert mutex.owner is None


class TestCondVar:
    def test_signal_wakes_one_waiter(self, single_guest):
        builder, kernel = single_guest
        mutex = GuestMutex(kernel)
        cond = CondVar(kernel)
        ready = []

        def consumer(thread):
            yield from mutex.lock(thread)
            while not ready:
                yield from cond.wait(mutex, thread)
            ready.pop()
            yield from mutex.unlock(thread)

        def producer(thread):
            yield Compute(10 * MS)
            yield from mutex.lock(thread)
            ready.append(1)
            yield from cond.signal()
            yield from mutex.unlock(thread)

        for name, gen in (("c", consumer), ("p", producer)):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), name)
            placeholder.append(gen(thread))
        machine = drive(builder)
        assert ready == []
        assert all(t.done for t in kernel.threads)


class TestSemaphore:
    def test_counting_semantics(self, single_guest):
        builder, kernel = single_guest
        sem = Semaphore(kernel, count=2)
        concurrent = [0]
        peak = [0]

        def worker(thread):
            for _ in range(10):
                yield from sem.down(thread)
                concurrent[0] += 1
                peak[0] = max(peak[0], concurrent[0])
                yield Compute(300 * US)
                concurrent[0] -= 1
                yield from sem.up(thread)
                yield Compute(100 * US)

        for index in range(5):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{index}")
            placeholder.append(worker(thread))
        drive(builder)
        assert peak[0] <= 2
        assert all(t.done for t in kernel.threads)

    def test_negative_count_rejected(self, single_guest):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            Semaphore(kernel, count=-1)


class TestOpenMPBarrier:
    @pytest.mark.parametrize("spin_budget", [0, 300_000, 10**12])
    def test_no_thread_passes_early(self, spin_budget):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        barrier = OpenMPBarrier(kernel, parties=4, spin_budget_ns=spin_budget)
        phase_of = {}
        violations = []

        def worker(tag, thread):
            for phase in range(10):
                phase_of[tag] = phase
                yield Compute((1 + tag) * 200 * US)
                yield from barrier.wait(thread)
                # After the barrier, nobody may still be in an older phase.
                if min(phase_of.values()) < phase:
                    violations.append((phase, dict(phase_of)))

        for tag in range(4):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{tag}")
            placeholder.append(worker(tag, thread))
        drive(builder)
        assert not violations
        assert barrier.releases.value == 10

    def test_passive_policy_uses_futex(self):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        barrier = OpenMPBarrier(kernel, parties=2, spin_budget_ns=0)

        def worker(delay):
            def gen(thread):
                yield Compute(delay)
                yield from barrier.wait(thread)

            return gen

        for index, delay in enumerate((1 * MS, 30 * MS)):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{index}")
            placeholder.append(worker(delay)(thread))
        drive(builder)
        assert barrier.futex_fallbacks.value >= 1

    def test_active_policy_spins(self):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        barrier = OpenMPBarrier(kernel, parties=2, spin_budget_ns=10**12)

        def worker(delay):
            def gen(thread):
                yield Compute(delay)
                yield from barrier.wait(thread)

            return gen

        for index, delay in enumerate((1 * MS, 30 * MS)):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{index}")
            placeholder.append(worker(delay)(thread))
        drive(builder)
        assert barrier.futex_fallbacks.value == 0
        assert all(t.done for t in kernel.threads)


class TestKernelSpinLock:
    def _contend(self, pv: bool, pcpus=1):
        """Two guests on one pCPU; the lock-holder can be preempted."""
        builder = StackBuilder(pcpus=pcpus)
        kernel = builder.guest(
            "vm", vcpus=2, guest_config=GuestConfig(pv_spinlock=pv)
        )
        rival = builder.guest("rival", vcpus=1)
        from tests.conftest import busy

        rival.spawn(busy(10 * SEC), "hog")
        lock = KernelSpinLock(kernel)
        completed = []

        # Enough iterations that execution spans many 30ms slices — the
        # holder must get preempted mid-critical-section sometimes.
        def worker(thread):
            for _ in range(500):
                yield from lock.critical_section(thread, 50 * US)
                yield Compute(50 * US)
            completed.append(thread.name)

        for index in range(2):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{index}")
            placeholder.append(worker(thread))
        machine = drive(builder, until=20 * SEC)
        return lock, completed, kernel

    def test_plain_spinlock_correctness_under_preemption(self):
        lock, completed, _ = self._contend(pv=False)
        assert len(completed) == 2
        assert lock.acquisitions.value == 1000

    def test_pv_spinlock_yields_instead_of_spinning(self):
        lock, completed, _ = self._contend(pv=True)
        assert len(completed) == 2
        assert lock.pv_yields.value >= 1

    def test_release_by_non_holder_raises(self, single_guest):
        builder, kernel = single_guest
        lock = KernelSpinLock(kernel)
        failures = []

        def bad(thread):
            try:
                yield from lock.release(thread)
            except RuntimeError:
                failures.append(True)

        placeholder = []

        def deferred():
            yield from placeholder[0]

        thread = kernel.spawn(deferred(), "bad")
        placeholder.append(bad(thread))
        drive(builder, until=100 * MS)
        assert failures == [True]


class TestFutex:
    def test_wait_wake_counts(self, single_guest):
        builder, kernel = single_guest
        futex = Futex(kernel)

        def waiter(thread):
            yield from futex.wait()

        def waker(thread):
            yield Compute(10 * MS)
            yield from futex.wake(1)

        for name, gen in (("waiter", waiter), ("waker", waker)):
            placeholder = []

            def deferred(ph=placeholder):
                yield from ph[0]

            thread = kernel.spawn(deferred(), name)
            placeholder.append(gen(thread))
        drive(builder)
        assert futex.waits.value == 1
        assert futex.wakes.value == 1
        assert all(t.done for t in kernel.threads)
