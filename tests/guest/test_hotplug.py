"""Tests for the CPU-hotplug latency model and mechanism."""

import numpy as np
import pytest

from repro.guest.hotplug import HotplugMechanism, HotplugModel, KERNEL_VERSIONS
from repro.hypervisor.domain import VCPUState
from repro.units import MS, SEC, US
from tests.conftest import StackBuilder, busy


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestLatencyModel:
    def test_unknown_kernel_rejected(self, rng):
        with pytest.raises(KeyError):
            HotplugModel("v9.99", rng)

    def test_removal_is_milliseconds_everywhere(self, rng):
        for version in KERNEL_VERSIONS:
            model = HotplugModel(version, rng)
            samples = [model.sample_remove_ns() for _ in range(200)]
            assert min(samples) >= 1 * MS
            assert max(samples) >= 20 * MS  # heavy tail

    def test_v31415_add_is_sub_millisecond_at_best(self, rng):
        model = HotplugModel("v3.14.15", rng)
        samples = [model.sample_add_ns() for _ in range(300)]
        assert 300 * US <= min(samples) <= 600 * US

    def test_other_kernels_add_in_tens_of_ms(self, rng):
        for version in ("v2.6.32", "v3.2.60", "v4.2"):
            model = HotplugModel(version, rng)
            median = sorted(model.sample_add_ns() for _ in range(200))[100]
            assert median >= 5 * MS

    def test_hotplug_vs_vscale_gap(self, rng):
        """Paper: hotplug is 100x to 100,000x slower than vScale."""
        from repro.core.balancer import BalancerCosts

        vscale_ns = BalancerCosts().total_ns
        for version in KERNEL_VERSIONS:
            model = HotplugModel(version, rng)
            for _ in range(50):
                assert model.sample_remove_ns() / vscale_ns > 100
                assert model.sample_remove_ns() / vscale_ns < 1_000_000


class TestMechanism:
    def test_remove_eventually_freezes(self, rng):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        kernel.spawn(busy(5 * SEC), "w")
        machine = builder.start()
        machine.run(until=20 * MS)
        mechanism = HotplugMechanism(kernel, HotplugModel("v3.14.15", rng))
        latency = mechanism.remove_vcpu(1)
        assert latency >= 1 * MS
        machine.run(until=machine.sim.now + latency + 100 * MS)
        assert kernel.domain.vcpus[1].state is VCPUState.FROZEN

    def test_add_brings_vcpu_back(self, rng):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        kernel.spawn(busy(5 * SEC), "w")
        machine = builder.start()
        machine.run(until=20 * MS)
        mechanism = HotplugMechanism(kernel, HotplugModel("v3.14.15", rng))
        mechanism.remove_vcpu(1)
        machine.run(until=machine.sim.now + 300 * MS)
        mechanism.add_vcpu(1)
        machine.run(until=machine.sim.now + 300 * MS)
        assert kernel.domain.vcpus[1].state is not VCPUState.FROZEN
        assert 1 not in kernel.cpu_freeze_mask

    def test_vcpu0_cannot_be_removed(self, rng):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        builder.start()
        mechanism = HotplugMechanism(kernel, HotplugModel("v4.2", rng))
        with pytest.raises(ValueError):
            mechanism.remove_vcpu(0)

    def test_concurrent_operations_rejected(self, rng):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        machine = builder.start()
        machine.run(until=10 * MS)
        mechanism = HotplugMechanism(kernel, HotplugModel("v2.6.32", rng))
        mechanism.remove_vcpu(1)
        with pytest.raises(RuntimeError):
            mechanism.remove_vcpu(1)

    def test_stop_machine_stalls_whole_guest(self, rng):
        """Removal charges a stop_machine stall to every runqueue."""
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        kernel.spawn(busy(5 * SEC), "w", pinned_to=0)
        machine = builder.start()
        machine.run(until=20 * MS)
        before = kernel.runqueues[0].pending_overhead_ns
        mechanism = HotplugMechanism(kernel, HotplugModel("v2.6.32", rng))
        mechanism.remove_vcpu(1)
        assert kernel.runqueues[0].pending_overhead_ns > before
