"""Tests for the action DSL and waitable primitives."""

import pytest

from repro.guest.actions import (
    Compute,
    SpinFlag,
    SpinWait,
    UserSpinLock,
    WaitQueue,
)


class TestActionValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_spin_budget_rejected(self):
        with pytest.raises(ValueError):
            SpinWait(SpinFlag(), -5)


class TestSpinFlag:
    def test_latches_on_fire(self):
        flag = SpinFlag("f")
        assert not flag.latched
        flag.kernel = object.__new__(_FakeKernel)  # no waiters: safe
        flag.fire_all()
        assert flag.latched


class _FakeKernel:
    """Minimal kernel stand-in for waitable unit tests."""

    def __init__(self):
        self.satisfied = []
        self.woken = []
        self.executing = set()

    def spin_satisfied(self, thread, waitable):
        self.satisfied.append(thread)
        waitable.remove_spinner(thread)

    def wake_thread(self, thread):
        self.woken.append(thread)

    def thread_is_executing(self, thread):
        return thread in self.executing


class _FakeThread:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


class TestWaitQueue:
    def test_fire_one_prefers_executing_spinner(self):
        kernel = _FakeKernel()
        queue = WaitQueue("q")
        queue.kernel = kernel
        idle_spinner = _FakeThread("idle")
        hot_spinner = _FakeThread("hot")
        sleeper = _FakeThread("sleeper")
        queue.add_spinner(idle_spinner)
        queue.add_spinner(hot_spinner)
        queue.add_blocked(sleeper)
        kernel.executing.add(hot_spinner)
        released = queue.fire_one()
        assert released is hot_spinner
        assert kernel.satisfied == [hot_spinner]

    def test_fire_one_falls_back_to_blocked(self):
        kernel = _FakeKernel()
        queue = WaitQueue("q")
        queue.kernel = kernel
        sleeper = _FakeThread("sleeper")
        queue.add_blocked(sleeper)
        assert queue.fire_one() is sleeper
        assert kernel.woken == [sleeper]

    def test_fire_one_empty_returns_none(self):
        queue = WaitQueue("q")
        queue.kernel = _FakeKernel()
        assert queue.fire_one() is None

    def test_fire_all_releases_everyone(self):
        kernel = _FakeKernel()
        queue = WaitQueue("q")
        queue.kernel = kernel
        spinner = _FakeThread("s")
        sleeper = _FakeThread("b")
        queue.add_spinner(spinner)
        queue.add_blocked(sleeper)
        assert queue.fire_all() == 2
        assert queue.waiter_count == 0

    def test_fire_before_any_wait_asserts(self):
        queue = WaitQueue("q")
        with pytest.raises(AssertionError):
            queue.fire_one()


class TestUserSpinLock:
    def test_try_acquire(self):
        lock = UserSpinLock("l")
        lock.kernel = _FakeKernel()
        a, b = _FakeThread("a"), _FakeThread("b")
        assert lock.try_acquire(a)
        assert not lock.try_acquire(b)
        lock.release()
        assert lock.try_acquire(b)

    def test_release_hands_to_executing_spinner(self):
        kernel = _FakeKernel()
        lock = UserSpinLock("l")
        lock.kernel = kernel
        holder, waiter = _FakeThread("h"), _FakeThread("w")
        assert lock.try_acquire(holder)
        lock.add_spinner(waiter)
        kernel.executing.add(waiter)
        lock.release()
        assert lock.holder is waiter
        assert not lock.free

    def test_release_with_preempted_spinners_leaves_lock_free(self):
        """A preempted spinner cannot grab the lock — Figure 1(a)."""
        kernel = _FakeKernel()
        lock = UserSpinLock("l")
        lock.kernel = kernel
        holder, waiter = _FakeThread("h"), _FakeThread("w")
        assert lock.try_acquire(holder)
        lock.add_spinner(waiter)  # not executing
        lock.release()
        assert lock.free
        assert lock.holder is None
        # When the spinner's vCPU resumes, it wins the free lock.
        assert lock.on_spinner_resumed(waiter)
        assert lock.holder is waiter
