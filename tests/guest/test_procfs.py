"""Tests for the /proc-style introspection views."""

import pytest

from repro.core.balancer import VScaleBalancer
from repro.guest import procfs
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


@pytest.fixture
def running_guest():
    builder = StackBuilder(pcpus=4)
    kernel = builder.guest("vm", vcpus=4)
    for index in range(4):
        kernel.spawn(busy(5 * SEC), f"w{index}")
    machine = builder.start()
    machine.run(until=500 * MS)
    return builder, kernel, machine


def test_proc_interrupts_counts_timers(running_guest):
    _, kernel, _ = running_guest
    text = procfs.proc_interrupts(kernel)
    assert "LOC:" in text and "RES:" in text and "EVT:" in text
    assert "CPU0" in text and "CPU3" in text
    # ~500 ticks per busy vCPU at 1000 HZ over 500 ms.
    loc_line = next(line for line in text.splitlines() if "LOC:" in line)
    counts = [int(tok) for tok in loc_line.split() if tok.isdigit()]
    assert all(count > 300 for count in counts)


def test_proc_interrupts_frozen_vcpu_goes_quiet(running_guest):
    _, kernel, machine = running_guest
    balancer = VScaleBalancer(kernel)
    balancer.freeze(3)
    machine.run(until=machine.sim.now + 100 * MS)
    before = procfs.proc_interrupts(kernel)
    machine.run(until=machine.sim.now + 500 * MS)
    after = procfs.proc_interrupts(kernel)

    def loc_counts(text):
        line = next(l for l in text.splitlines() if "LOC:" in l)
        return [int(tok) for tok in line.split() if tok.isdigit()]

    assert loc_counts(after)[3] == loc_counts(before)[3]  # cpu3 stopped
    assert loc_counts(after)[0] > loc_counts(before)[0]   # cpu0 kept ticking


def test_proc_stat_reports_states(running_guest):
    _, kernel, _ = running_guest
    text = procfs.proc_stat(kernel)
    lines = text.splitlines()
    assert lines[0].startswith("cpu ")
    assert len(lines) == 5
    # Dedicated host: busy vCPUs ran ~500ms each, no steal.
    for line in lines[1:]:
        _, run, steal, idle, frozen = line.split()
        assert int(run) > 300
        assert int(frozen) == 0


def test_proc_schedstat_shows_runqueues(running_guest):
    _, kernel, _ = running_guest
    text = procfs.proc_schedstat(kernel)
    assert text.count("cpu") >= 4
    assert "w0" in text or "w1" in text or "w2" in text or "w3" in text


def test_proc_cpuinfo_tracks_freeze(running_guest):
    _, kernel, machine = running_guest
    assert procfs.proc_cpuinfo(kernel).count("online") == 4
    balancer = VScaleBalancer(kernel)
    balancer.freeze(2)
    machine.run(until=machine.sim.now + 50 * MS)
    info = procfs.proc_cpuinfo(kernel)
    assert info.count("online") == 3
    assert info.count("frozen") == 1


def test_online_mask(running_guest):
    _, kernel, machine = running_guest
    assert procfs.online_mask(kernel) == [0, 1, 2, 3]
    kernel.cpu_freeze_mask.add(1)
    assert procfs.online_mask(kernel) == [0, 2, 3]
