"""Module-level cell functions for the executor tests.

The executor pickles cell functions by reference into worker processes,
so test cells must live in an importable module rather than inside test
bodies.
"""

from __future__ import annotations

import os
from pathlib import Path


def square(x: int) -> int:
    return x * x


def square_with_marker(x: int, marker_dir: str) -> int:
    """Like :func:`square`, but leaves one file per actual execution."""
    path = Path(marker_dir) / f"{x}-{os.getpid()}-{os.urandom(4).hex()}"
    path.write_text(str(x))
    return x * x


def pid_tag(x: int) -> tuple[int, int]:
    """Return the input plus the executing process id."""
    return x, os.getpid()


def boom(x: int) -> int:
    raise RuntimeError(f"cell {x} failed")


def crash_in_worker(x: int) -> int:
    """Die abruptly (no exception, no cleanup) when run in a pool worker.

    In the main process — i.e. under the executor's serial fallback — it
    behaves like :func:`square`, so recovery can be observed end to end.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        os._exit(42)
    return x * x


def sleepy_in_worker(x: int, sleep_s: float) -> int:
    """Hang for ``sleep_s`` when run in a pool worker; instant inline."""
    import multiprocessing
    import time

    if multiprocessing.parent_process() is not None:
        time.sleep(sleep_s)
    return x * x
