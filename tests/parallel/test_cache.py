"""Property-based and unit tests for the result cache and its keys.

The cache key must be: collision-free over distinct (params, seed,
scale) tuples, insensitive to dict insertion order, and stable across
processes (no dependence on ``PYTHONHASHSEED`` or ``id()``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.setups import Config
from repro.parallel import MISS, ResultCache, canonical, cell_key
from tests.parallel import cellfns

FIXED_CODE = "test-fingerprint"

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.sampled_from(list(Config)),
)
param_values = st.one_of(
    scalars,
    st.lists(scalars, max_size=4),
    st.tuples(scalars, scalars),
)
param_dicts = st.dictionaries(
    st.sampled_from(["app", "vcpus", "spincount", "config", "seed", "work_scale", "x"]),
    param_values,
    max_size=5,
)


def key(params, experiment="exp"):
    return cell_key(experiment, cellfns.square, params, fingerprint=FIXED_CODE)


@given(param_dicts, param_dicts)
@settings(max_examples=200, deadline=None)
def test_distinct_params_never_collide(p1, p2):
    if canonical(p1) != canonical(p2):
        assert key(p1) != key(p2)
    else:
        assert key(p1) == key(p2)


@given(
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_seed_and_scale_always_distinguish(seed, scale):
    base = {"app": "cg", "seed": seed, "work_scale": scale}
    assert key(base) != key({**base, "seed": seed + 1})
    assert key(base) != key({**base, "work_scale": scale / 2})
    assert key(base, experiment="fig6") != key(base, experiment="fig9")


@given(param_dicts)
@settings(max_examples=100, deadline=None)
def test_key_ignores_dict_insertion_order(params):
    reordered = dict(reversed(list(params.items())))
    assert key(params) == key(reordered)


def test_enum_never_aliases_its_value_string():
    assert key({"config": Config.VANILLA}) != key({"config": Config.VANILLA.value})


def test_tuple_and_list_params_stay_distinct():
    assert canonical((1, 2)) != canonical([1, 2])
    assert key({"spins": (1, 2)}) != key({"spins": [1, 2]})


def test_key_stable_across_processes():
    """The key must not depend on per-process state like hash seeds."""
    params = {"app": "cg", "seed": 3, "work_scale": 0.25, "config": Config.VSCALE}
    local = key(params)
    snippet = (
        "from repro.experiments.setups import Config\n"
        "from repro.parallel import cell_key\n"
        "from tests.parallel import cellfns\n"
        "params = {'app': 'cg', 'seed': 3, 'work_scale': 0.25,"
        " 'config': Config.VSCALE}\n"
        f"print(cell_key('exp', cellfns.square, params, fingerprint={FIXED_CODE!r}))\n"
    )
    # The child inherits neither pytest's `pythonpath` patching nor the
    # repo root, so point it at whatever `repro` this process imported.
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    repo_root = str(Path(__file__).resolve().parents[2])
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, repo_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert proc.stdout.strip() == local


def test_canonical_is_json_stable():
    params = {"config": Config.VSCALE, "scales": (0.1, 0.2), "n": 10**15}
    blob = json.dumps(canonical(params), sort_keys=True)
    assert blob == json.dumps(canonical(dict(params)), sort_keys=True)


def test_cache_roundtrip_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("ab" + "0" * 62, {"value": 1})
    cache.put("cd" + "0" * 62, [1, 2, 3])
    assert cache.get("ab" + "0" * 62) == {"value": 1}
    assert len(cache) == 2
    assert cache.size_bytes() > 0


def test_cache_miss_sentinel(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("ee" + "0" * 62) is MISS
    cache.put("ff" + "0" * 62, None)  # None is a real value, not a miss
    assert cache.get("ff" + "0" * 62) is None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(f"{i:02d}" + "0" * 62, i)
    assert cache.clear() == 5
    assert len(cache) == 0


def test_prune_by_entries_evicts_oldest(tmp_path):
    cache = ResultCache(tmp_path)
    keys = [f"{i:02d}" + "0" * 62 for i in range(4)]
    for age, k in enumerate(keys):
        cache.put(k, age)
        # Backdate mtimes so eviction order is deterministic.
        path = cache._path(k)
        os.utime(path, (1000 + age, 1000 + age))
    assert cache.prune(max_entries=2) == 2
    assert cache.get(keys[0]) is MISS
    assert cache.get(keys[1]) is MISS
    assert cache.get(keys[2]) == 2
    assert cache.get(keys[3]) == 3


def test_prune_by_bytes(tmp_path):
    cache = ResultCache(tmp_path)
    keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
    for age, k in enumerate(keys):
        cache.put(k, "x" * 1000)
        os.utime(cache._path(k), (1000 + age, 1000 + age))
    entry_size = cache.size_bytes() // 3
    evicted = cache.prune(max_bytes=2 * entry_size)
    assert evicted == 1
    assert cache.get(keys[0]) is MISS
    assert len(cache) == 2


def test_prune_noop_within_limits(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("aa" + "0" * 62, 1)
    assert cache.prune(max_entries=10, max_bytes=10**9) == 0
    assert len(cache) == 1
