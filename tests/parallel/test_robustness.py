"""Tests for the executor's timeout/crash recovery and cache integrity."""

import os

import pytest

from repro.parallel import CellSpec, ParallelExecutor, ResultCache
from repro.parallel.cache import MISS
from repro.parallel.executor import (
    ENV_CELL_RETRIES,
    ENV_CELL_TIMEOUT,
    cell_retries_from_env,
    cell_timeout_from_env,
)
from tests.parallel import cellfns


def specs_for(values, fn=cellfns.square, **extra):
    return [
        CellSpec("unit", f"cell-{v}", fn, dict(x=v, **extra)) for v in values
    ]


class TestWorkerCrashRecovery:
    def test_crashed_cells_recovered_serially(self):
        executor = ParallelExecutor(jobs=2, max_retries=0)
        specs = specs_for([1, 2], fn=cellfns.crash_in_worker)
        specs += specs_for([3, 4])
        results = executor.run_cells(specs)
        assert results == [1, 4, 9, 16]
        assert executor.telemetry.recovered_cells >= 1
        recovered = [
            r for r in executor.telemetry.records if r.recovered == "crash"
        ]
        assert recovered
        assert all(r.attempts >= 2 for r in recovered)
        assert "recovered=" in executor.telemetry.summary()

    def test_crash_retries_consume_generations(self):
        executor = ParallelExecutor(jobs=2, max_retries=2)
        results = executor.run_cells(specs_for([5, 6], fn=cellfns.crash_in_worker))
        assert results == [25, 36]
        # Each crashing cell burned its pool retries before the serial
        # fallback rescued it: 1 + 2 pool attempts + 1 serial.
        for record in executor.telemetry.records:
            assert record.recovered == "crash"
            assert record.attempts == 4

    def test_innocent_cells_survive_a_crashing_sibling(self):
        executor = ParallelExecutor(jobs=3, max_retries=1)
        specs = specs_for([9], fn=cellfns.crash_in_worker) + specs_for(
            [10, 11, 12, 13]
        )
        assert executor.run_cells(specs) == [81, 100, 121, 144, 169]


class TestTimeoutRecovery:
    def test_hung_cell_times_out_and_recovers(self):
        executor = ParallelExecutor(jobs=2, cell_timeout_s=0.5, max_retries=0)
        specs = specs_for([2], fn=cellfns.sleepy_in_worker, sleep_s=60.0)
        specs += specs_for([3])
        results = executor.run_cells(specs)
        assert results == [4, 9]
        [record] = [
            r for r in executor.telemetry.records if r.recovered == "timeout"
        ]
        assert record.cell == "cell-2"

    def test_fast_cells_unaffected_by_timeout(self):
        executor = ParallelExecutor(jobs=2, cell_timeout_s=30.0)
        assert executor.run_cells(specs_for([1, 2, 3])) == [1, 4, 9]
        assert executor.telemetry.recovered_cells == 0


class TestCellBugsStillPropagate:
    def test_pool_mode_exceptions_are_not_swallowed(self):
        executor = ParallelExecutor(jobs=2, max_retries=3)
        # Either cell's exception may surface first; both are real bugs.
        with pytest.raises(RuntimeError, match=r"cell [56] failed"):
            executor.run_cells(
                specs_for([5, 6], fn=cellfns.boom)
            )


class TestEnvKnobs:
    def test_timeout_parsing(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_TIMEOUT, raising=False)
        assert cell_timeout_from_env() is None
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "2.5")
        assert cell_timeout_from_env() == 2.5
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "0")
        assert cell_timeout_from_env() is None
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "-1")
        assert cell_timeout_from_env() is None

    def test_retries_parsing(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_RETRIES, raising=False)
        assert cell_retries_from_env() == 1
        monkeypatch.setenv(ENV_CELL_RETRIES, "3")
        assert cell_retries_from_env() == 3
        monkeypatch.setenv(ENV_CELL_RETRIES, "-2")
        assert cell_retries_from_env() == 0

    def test_constructor_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "1.5")
        monkeypatch.setenv(ENV_CELL_RETRIES, "4")
        executor = ParallelExecutor(jobs=1)
        assert executor.cell_timeout_s == 1.5
        assert executor.max_retries == 4

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT, "1.5")
        executor = ParallelExecutor(jobs=1, cell_timeout_s=9.0, max_retries=0)
        assert executor.cell_timeout_s == 9.0
        assert executor.max_retries == 0


class TestCacheIntegrity:
    def _one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        spec = CellSpec("unit", "cell", cellfns.square, dict(x=6))
        assert executor.run_cell(spec) == 36
        [entry] = list(cache.entries())
        return cache, spec, entry

    def test_truncated_entry_quarantined(self, tmp_path):
        cache, spec, entry = self._one_entry(tmp_path)
        entry.write_bytes(entry.read_bytes()[:-3])
        assert cache.get(spec.key()) is MISS
        assert not entry.exists()
        assert len(cache.quarantined()) == 1
        assert cache.corruption_log == [spec.key()]

    def test_flipped_byte_quarantined(self, tmp_path):
        cache, spec, entry = self._one_entry(tmp_path)
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF
        entry.write_bytes(bytes(data))
        assert cache.get(spec.key()) is MISS
        assert len(cache.quarantined()) == 1

    def test_bad_magic_quarantined(self, tmp_path):
        cache, spec, entry = self._one_entry(tmp_path)
        entry.write_bytes(b"not a pickle")
        assert cache.get(spec.key()) is MISS
        assert len(cache.quarantined()) == 1

    def test_quarantine_does_not_pollute_entries(self, tmp_path):
        cache, spec, entry = self._one_entry(tmp_path)
        entry.write_bytes(b"garbage")
        assert cache.get(spec.key()) is MISS
        assert list(cache.entries()) == []
        # A fresh put works and round-trips again.
        cache.put(spec.key(), 36)
        assert cache.get(spec.key()) == 36

    def test_drain_corruptions_clears_log(self, tmp_path):
        cache, spec, entry = self._one_entry(tmp_path)
        entry.write_bytes(b"garbage")
        cache.get(spec.key())
        assert cache.drain_corruptions() == [spec.key()]
        assert cache.drain_corruptions() == []

    def test_executor_reports_corruption_in_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CellSpec("unit", "cell", cellfns.square, dict(x=6))
        first = ParallelExecutor(jobs=1, cache=cache)
        assert first.run_cell(spec) == 36
        [entry] = list(cache.entries())
        entry.write_bytes(b"garbage")
        second = ParallelExecutor(jobs=1, cache=cache)
        assert second.run_cell(spec) == 36  # treated as a miss, recomputed
        assert second.telemetry.misses == 1
        assert second.telemetry.corrupt_entries == [spec.key()]
        assert "corrupt_cache_entries=1" in second.telemetry.summary()
