"""Tests for the process-pool experiment executor."""

import pytest

from repro.parallel import (
    CellSpec,
    ParallelExecutor,
    ResultCache,
    Telemetry,
    get_default_executor,
)
from tests.parallel import cellfns


def specs_for(values, **extra):
    return [
        CellSpec("unit", f"cell-{v}", cellfns.square, dict(x=v, **extra))
        for v in values
    ]


def test_inline_execution_preserves_order():
    executor = ParallelExecutor(jobs=1)
    assert executor.run_cells(specs_for([3, 1, 2])) == [9, 1, 4]


def test_pool_execution_preserves_order():
    executor = ParallelExecutor(jobs=3)
    values = list(range(10))
    assert executor.run_cells(specs_for(values)) == [v * v for v in values]


def test_pool_uses_worker_processes():
    import os

    executor = ParallelExecutor(jobs=2)
    specs = [
        CellSpec("unit", f"pid-{v}", cellfns.pid_tag, dict(x=v)) for v in range(4)
    ]
    outcomes = executor.run_cells(specs)
    assert [x for x, _ in outcomes] == list(range(4))
    # At least one cell ran outside the parent process.
    assert any(pid != os.getpid() for _, pid in outcomes)


def test_single_pending_cell_runs_inline():
    import os

    executor = ParallelExecutor(jobs=8)
    [(x, pid)] = executor.run_cells(
        [CellSpec("unit", "solo", cellfns.pid_tag, dict(x=7))]
    )
    assert (x, pid) == (7, os.getpid())


def test_cell_exceptions_propagate():
    executor = ParallelExecutor(jobs=1)
    with pytest.raises(RuntimeError, match="cell 5 failed"):
        executor.run_cells([CellSpec("unit", "boom", cellfns.boom, dict(x=5))])


def test_cache_skips_reexecution(tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    cache = ResultCache(tmp_path / "cache")
    specs = [
        CellSpec(
            "unit",
            f"cell-{v}",
            cellfns.square_with_marker,
            dict(x=v, marker_dir=str(markers)),
        )
        for v in range(3)
    ]
    first = ParallelExecutor(jobs=1, cache=cache)
    assert first.run_cells(specs) == [0, 1, 4]
    assert len(list(markers.iterdir())) == 3
    assert (first.telemetry.hits, first.telemetry.misses) == (0, 3)

    second = ParallelExecutor(jobs=1, cache=cache)
    assert second.run_cells(specs) == [0, 1, 4]
    # No cell was re-executed: the marker count did not grow.
    assert len(list(markers.iterdir())) == 3
    assert (second.telemetry.hits, second.telemetry.misses) == (3, 0)


def test_no_cache_always_reexecutes(tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    spec = CellSpec(
        "unit", "cell", cellfns.square_with_marker, dict(x=2, marker_dir=str(markers))
    )
    executor = ParallelExecutor(jobs=1, cache=None)
    assert executor.run_cell(spec) == 4
    assert executor.run_cell(spec) == 4
    assert len(list(markers.iterdir())) == 2
    assert (executor.telemetry.hits, executor.telemetry.misses) == (0, 2)


def test_corrupt_cache_entry_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    spec = CellSpec("unit", "cell", cellfns.square, dict(x=6))
    executor = ParallelExecutor(jobs=1, cache=cache)
    assert executor.run_cell(spec) == 36
    [entry] = list(cache.entries())
    entry.write_bytes(b"not a pickle")
    assert executor.run_cell(spec) == 36
    assert executor.telemetry.misses == 2


def test_telemetry_records_timestamps():
    telemetry = Telemetry()
    executor = ParallelExecutor(jobs=1, telemetry=telemetry)
    executor.run_cells(specs_for([1, 2]))
    assert len(telemetry.records) == 2
    for record in telemetry.records:
        assert record.finished >= record.started
        assert not record.cache_hit
    assert "misses=2" in telemetry.summary()
    payload = telemetry.to_dict()
    assert payload["misses"] == 2
    assert len(payload["cells"]) == 2


def test_jobs_floor_is_one():
    assert ParallelExecutor(jobs=0).jobs == 1
    assert ParallelExecutor(jobs=-3).jobs == 1


def test_default_executor_is_shared():
    assert get_default_executor() is get_default_executor()
