"""Tests for the vScale channel."""

import pytest

from repro.core.channel import ChannelCosts, VScaleChannel
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.units import MS


def make_channel(install_vscale=True):
    machine = Machine(HostConfig(pcpus=2), seed=1)
    domain = machine.create_domain("vm", vcpus=2)
    GuestKernel(domain)
    if install_vscale:
        machine.install_vscale()
    return machine, domain, VScaleChannel(domain)


def test_read_returns_extendability_and_count():
    machine, domain, channel = make_channel()
    machine.start()
    machine.run(until=50 * MS)
    ext, n, cost = channel.read()
    assert ext > 0
    assert 1 <= n <= 2
    assert cost > 0
    assert channel.reads == 1


def test_read_cost_near_paper_value():
    machine, domain, channel = make_channel()
    machine.start()
    machine.run(until=50 * MS)
    costs = [channel.read()[2] for _ in range(300)]
    mean = sum(costs) / len(costs)
    # Table 1: 0.91us total.
    assert 800 <= mean <= 1_050


def test_read_without_extension_raises():
    machine, domain, channel = make_channel(install_vscale=False)
    machine.start()
    with pytest.raises(RuntimeError):
        channel.read()


def test_measure_components_breakdown():
    machine, domain, channel = make_channel()
    stats = channel.measure_components(10_000)
    assert stats["syscall_ns"] == pytest.approx(690, rel=0.05)
    assert stats["hypercall_ns"] == pytest.approx(220, rel=0.05)
    assert stats["total_ns"] == pytest.approx(910, rel=0.05)


def test_measure_requires_iterations():
    machine, domain, channel = make_channel()
    with pytest.raises(ValueError):
        channel.measure_components(0)


def test_costs_total():
    costs = ChannelCosts()
    assert costs.total_ns == costs.syscall_ns + costs.hypercall_ns


@pytest.mark.parametrize("field,value", [
    ("syscall_ns", 0),
    ("syscall_ns", -690),
    ("hypercall_ns", 0),
    ("hypercall_ns", -1),
])
def test_costs_reject_nonpositive_components(field, value):
    with pytest.raises(ValueError, match=field):
        ChannelCosts(**{field: value})
