"""Tests for the vScale user-space daemon."""

import pytest

from repro.core.daemon import DaemonConfig, VScaleDaemon
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def build_contended(daemon_config=None, worker_vcpus=4, pcpus=4):
    """A worker VM plus a rival VM that saturates half the pool."""
    builder = StackBuilder(pcpus=pcpus)
    worker = builder.guest("worker", vcpus=worker_vcpus, weight=256)
    rival = builder.guest("rival", vcpus=pcpus, weight=256)
    builder.machine.install_vscale()
    daemon = VScaleDaemon(worker, daemon_config)
    daemon.install()
    return builder, worker, rival, daemon


class TestInstall:
    def test_daemon_thread_is_rt_and_pinned(self):
        _, worker, _, daemon = build_contended()
        assert daemon.thread is not None
        assert daemon.thread.rt
        assert daemon.thread.pinned_to == 0

    def test_double_install_rejected(self):
        _, worker, _, daemon = build_contended()
        with pytest.raises(RuntimeError):
            daemon.install()


class TestScaling:
    def test_shrinks_under_contention(self):
        builder, worker, rival, daemon = build_contended()
        for index in range(4):
            rival.spawn(busy(30 * SEC), f"r{index}")
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=2 * SEC)
        # Equal weights on a 4-pCPU pool: the worker deserves ~2 pCPUs.
        assert worker.online_vcpus <= 3
        assert daemon.reconfigurations >= 1

    def test_expands_when_rival_idles(self):
        builder, worker, rival, daemon = build_contended()
        for index in range(4):
            rival.spawn(busy(1 * SEC), f"r{index}")  # rival stops after 1s
        for index in range(4):
            worker.spawn(busy(60 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=1 * SEC)
        shrunk = worker.online_vcpus
        machine.run(until=4 * SEC)
        assert worker.online_vcpus > shrunk or worker.online_vcpus == 4
        assert worker.online_vcpus == 4

    def test_vcpu0_always_online(self):
        builder, worker, rival, daemon = build_contended(
            DaemonConfig(min_vcpus=1)
        )
        for index in range(8):
            rival.spawn(busy(30 * SEC), f"r{index}")
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert 0 not in worker.cpu_freeze_mask
        assert worker.online_vcpus >= 1

    def test_disabled_daemon_never_reconfigures(self):
        builder, worker, rival, daemon = build_contended()
        daemon.disable()
        for index in range(4):
            rival.spawn(busy(10 * SEC), f"r{index}")
        for index in range(4):
            worker.spawn(busy(10 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert daemon.reconfigurations == 0
        assert worker.online_vcpus == 4

    def test_trace_records_changes(self):
        builder, worker, rival, daemon = build_contended()
        for index in range(4):
            rival.spawn(busy(30 * SEC), f"r{index}")
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=2 * SEC)
        trace = daemon.vcpu_trace()
        assert trace
        times = [t for t, _ in trace]
        assert times == sorted(times)
        assert all(1 <= n <= 4 for _, n in trace)


class TestRounding:
    @pytest.mark.parametrize(
        "mode,ext_pcpus,expected",
        [
            ("ceil", 2.1, 3),
            ("ceil", 2.0, 2),
            ("floor", 2.9, 2),
            ("conservative", 2.5, 2),
            ("conservative", 2.85, 3),
            ("conservative", 0.2, 1),
        ],
    )
    def test_round_modes(self, mode, ext_pcpus, expected):
        builder, worker, rival, daemon = build_contended(
            DaemonConfig(round_mode=mode)
        )
        builder.start()
        period = builder.machine.config.vscale_period_ns
        ext = round(ext_pcpus * period)
        n_opt = -(-ext // period)  # ceil
        assert daemon._round_target(ext, n_opt) == expected

    def test_unknown_mode_raises(self):
        builder, worker, rival, daemon = build_contended(
            DaemonConfig(round_mode="banana")
        )
        builder.start()
        with pytest.raises(ValueError):
            daemon._round_target(10 * MS, 1)


class TestHysteresis:
    def test_shrink_needs_patience(self):
        config = DaemonConfig(shrink_patience=3)
        builder, worker, rival, daemon = build_contended(config)
        builder.start()
        # Simulate three successive decisions asking for fewer vCPUs.
        assert daemon._decide(2) == []
        assert daemon._decide(2) == []
        steps = daemon._decide(2)
        assert steps and all(freeze for _, freeze in steps)

    def test_growth_is_immediate(self):
        builder, worker, rival, daemon = build_contended()
        builder.start()
        worker.cpu_freeze_mask.add(3)
        steps = daemon._decide(4)
        assert steps == [(3, False)]
