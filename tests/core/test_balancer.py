"""Tests for the vScale balancer (Algorithm 2)."""

import pytest

from repro.core.balancer import BalancerCosts, VScaleBalancer
from repro.hypervisor.domain import VCPUState
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


@pytest.fixture
def running_guest():
    builder = StackBuilder(pcpus=4)
    kernel = builder.guest("vm", vcpus=4)
    for index in range(4):
        kernel.spawn(busy(10 * SEC), f"w{index}")
    machine = builder.start()
    machine.run(until=50 * MS)
    return builder, kernel, machine


class TestCosts:
    def test_breakdown_matches_paper(self):
        costs = BalancerCosts()
        rows = costs.cumulative()
        assert len(rows) == 6
        assert rows[-1][2] == costs.total_ns
        # Table 3: 2.10us total.
        assert costs.total_ns == pytest.approx(2100, abs=20)

    def test_cumulative_is_monotone(self):
        rows = BalancerCosts().cumulative()
        running = [r[2] for r in rows]
        assert running == sorted(running)

    @pytest.mark.parametrize("field", [
        "syscall_ns", "lock_ns", "mask_ns",
        "group_power_ns", "hypercall_ns", "ipi_send_ns",
    ])
    def test_nonpositive_components_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            BalancerCosts(**{field: 0})
        with pytest.raises(ValueError, match=field):
            BalancerCosts(**{field: -10})


class TestFreeze:
    def test_freeze_sets_mask_and_marks_hypervisor(self, running_guest):
        _, kernel, machine = running_guest
        balancer = VScaleBalancer(kernel)
        report = balancer.freeze(3)
        assert report.freeze
        assert 3 in kernel.cpu_freeze_mask
        vcpu = kernel.domain.vcpus[3]
        assert vcpu.freeze_pending or vcpu.state is VCPUState.FROZEN
        assert report.master_cost_ns == pytest.approx(2100, rel=0.25)

    def test_freeze_completes_and_work_continues(self, running_guest):
        _, kernel, machine = running_guest
        balancer = VScaleBalancer(kernel)
        balancer.freeze(3)
        machine.run(until=machine.sim.now + 50 * MS)
        assert kernel.domain.vcpus[3].state is VCPUState.FROZEN
        # All four busy threads still make progress on 3 vCPUs.
        start = {t.name: t.exec_ns for t in kernel.threads}
        machine.run(until=machine.sim.now + 200 * MS)
        for thread in kernel.threads:
            assert thread.exec_ns > start[thread.name]

    def test_freeze_vcpu0_rejected(self, running_guest):
        _, kernel, _ = running_guest
        balancer = VScaleBalancer(kernel)
        with pytest.raises(ValueError):
            balancer.freeze(0)

    def test_double_freeze_rejected(self, running_guest):
        _, kernel, machine = running_guest
        balancer = VScaleBalancer(kernel)
        balancer.freeze(3)
        with pytest.raises(ValueError):
            balancer.freeze(3)

    def test_freeze_unknown_vcpu_rejected(self, running_guest):
        _, kernel, _ = running_guest
        balancer = VScaleBalancer(kernel)
        with pytest.raises(ValueError):
            balancer.freeze(7)

    def test_master_cost_charged_to_vcpu0(self, running_guest):
        _, kernel, _ = running_guest
        before = kernel.runqueues[0].pending_overhead_ns
        VScaleBalancer(kernel).freeze(2)
        assert kernel.runqueues[0].pending_overhead_ns >= before + 1500


class TestUnfreeze:
    def test_roundtrip(self, running_guest):
        _, kernel, machine = running_guest
        balancer = VScaleBalancer(kernel)
        balancer.freeze(3)
        machine.run(until=machine.sim.now + 50 * MS)
        balancer.unfreeze(3)
        machine.run(until=machine.sim.now + 100 * MS)
        assert 3 not in kernel.cpu_freeze_mask
        assert kernel.domain.vcpus[3].state is not VCPUState.FROZEN
        assert kernel.online_vcpus == 4

    def test_unfreeze_not_frozen_rejected(self, running_guest):
        _, kernel, _ = running_guest
        with pytest.raises(ValueError):
            VScaleBalancer(kernel).unfreeze(2)

    def test_many_cycles_are_stable(self, running_guest):
        """Freeze/unfreeze churn must not lose threads or corrupt state."""
        _, kernel, machine = running_guest
        balancer = VScaleBalancer(kernel)
        for _ in range(20):
            balancer.freeze(3)
            machine.run(until=machine.sim.now + 20 * MS)
            balancer.unfreeze(3)
            machine.run(until=machine.sim.now + 20 * MS)
        alive = [t for t in kernel.threads if not t.done]
        assert len(alive) == 4
        total_load = sum(rq.load() for rq in kernel.runqueues)
        assert total_load == 4
        assert balancer.freezes == 20 and balancer.unfreezes == 20


class TestMeasurement:
    def test_breakdown_monte_carlo(self, running_guest):
        _, kernel, _ = running_guest
        balancer = VScaleBalancer(kernel)
        rows = balancer.measure_master_breakdown(2_000)
        assert rows[-1][2] == pytest.approx(2.1, rel=0.05)  # us

    def test_measure_requires_iterations(self, running_guest):
        _, kernel, _ = running_guest
        with pytest.raises(ValueError):
            VScaleBalancer(kernel).measure_master_breakdown(0)
