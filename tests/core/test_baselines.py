"""Tests for the baseline scaling managers."""

import pytest

from repro.core.baselines import FixedVCPUPolicy, HotplugScaler, VCPUBalManager, VCPUBalConfig
from repro.guest.hotplug import HotplugModel
from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def test_fixed_policy_is_a_noop(single_guest):
    builder, kernel = single_guest
    FixedVCPUPolicy(kernel).install()
    machine = builder.start()
    machine.run(until=100 * MS)
    assert kernel.online_vcpus == 2


class TestVCPUBal:
    def _build(self):
        builder = StackBuilder(pcpus=4)
        worker = builder.guest("worker", vcpus=4, weight=256)
        rival = builder.guest("rival", vcpus=4, weight=768)
        seeds = SeedSequenceFactory(9)
        dom0 = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
        model = HotplugModel("v3.14.15", seeds.generator("hp"))
        manager = VCPUBalManager(worker, dom0, model)
        return builder, worker, rival, manager

    def test_weight_only_target(self):
        builder, worker, rival, manager = self._build()
        builder.machine.install_vscale()
        builder.start()
        # worker weight share = 256/1024 of 4 pCPUs = 1 pCPU -> target 1,
        # regardless of what the rival actually consumes.
        assert manager._weight_only_target(builder.machine) == 1

    def test_manager_scales_down_via_hotplug(self):
        builder, worker, rival, manager = self._build()
        builder.machine.install_vscale()
        manager.install()
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=3 * SEC)
        # Weight-only target is 1: it removes vCPUs even though the rival
        # is completely idle — the non-work-conserving flaw.
        assert worker.online_vcpus < 4
        assert manager.reconfigurations >= 1

    def test_double_install_rejected(self):
        builder, worker, rival, manager = self._build()
        manager.install()
        with pytest.raises(RuntimeError):
            manager.install()


class TestHotplugScaler:
    def test_scaler_reacts_but_slowly(self):
        builder = StackBuilder(pcpus=4)
        worker = builder.guest("worker", vcpus=4, weight=256)
        rival = builder.guest("rival", vcpus=4, weight=256)
        builder.machine.install_vscale()
        seeds = SeedSequenceFactory(4)
        scaler = HotplugScaler(worker, HotplugModel("v3.14.15", seeds.generator("hp")))
        scaler.install()
        for index in range(4):
            rival.spawn(busy(30 * SEC), f"r{index}")
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=3 * SEC)
        assert scaler.reconfigurations >= 1
        assert worker.online_vcpus < 4

    def test_double_install_rejected(self):
        builder = StackBuilder(pcpus=2)
        worker = builder.guest("worker", vcpus=2)
        builder.machine.install_vscale()
        seeds = SeedSequenceFactory(4)
        scaler = HotplugScaler(worker, HotplugModel("v4.2", seeds.generator("hp")))
        scaler.install()
        with pytest.raises(RuntimeError):
            scaler.install()
