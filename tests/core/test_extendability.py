"""Tests for Algorithm 1 — including property-based invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.extendability import VMUsage, compute_extendability
from repro.units import MS

PERIOD = 10 * MS


def usage(name, weight, consumed, **kw):
    return VMUsage(name=name, weight=weight, consumed_ns=consumed, **kw)


class TestPaperExamples:
    def test_all_idle_everyone_gets_fair_share(self):
        usages = [usage("a", 256, 0), usage("b", 256, 0)]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        for row in result.values():
            assert row.extendability_ns == 2 * PERIOD  # fair share = 2 pCPUs
            assert row.optimal_vcpus == 2
            assert not row.is_competitor

    def test_competitor_absorbs_releaser_slack(self):
        # b consumes nothing; a is saturated -> a can extend to ~4 pCPUs.
        usages = [usage("a", 256, 4 * PERIOD), usage("b", 256, 0)]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        assert result["a"].is_competitor
        assert result["a"].extendability_ns == 4 * PERIOD
        assert result["a"].optimal_vcpus == 4
        # The releaser keeps its deserved parallelism available.
        assert result["b"].extendability_ns == 2 * PERIOD
        assert result["b"].optimal_vcpus == 2

    def test_two_competitors_split_slack_by_weight(self):
        usages = [
            usage("heavy", 512, 3 * PERIOD),
            usage("light", 256, 2 * PERIOD),
            usage("idle", 256, 0),
        ]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        slack = PERIOD  # idle's fair share = 1 pCPU
        assert result["heavy"].extendability_ns == pytest.approx(
            2 * PERIOD + slack * 512 / 768, rel=1e-6
        )
        assert result["light"].extendability_ns == pytest.approx(
            1 * PERIOD + slack * 256 / 768, rel=1e-6
        )

    def test_ceiling_grants_partial_vcpu(self):
        usages = [usage("a", 300, 4 * PERIOD), usage("b", 100, 0)]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        # a's extendability = 3 + 1 = 4 pCPUs -> exactly 4 vCPUs;
        # b = fair share 1 pCPU -> 1 vCPU.
        assert result["a"].optimal_vcpus == 4
        assert result["b"].optimal_vcpus == 1

    def test_exact_integer_extendability_not_over_ceiled(self):
        usages = [usage("a", 256, PERIOD), usage("b", 256, PERIOD)]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        for row in result.values():
            assert row.optimal_vcpus == 2  # 2.0 pCPUs, not ceil -> 3

    def test_cap_clamps_extendability(self):
        usages = [usage("a", 256, 4 * PERIOD, cap=1.5), usage("b", 256, 0)]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        assert result["a"].extendability_ns == round(1.5 * PERIOD)
        assert result["a"].optimal_vcpus == 2

    def test_reservation_floors_extendability(self):
        usages = [
            usage("a", 64, 0, reservation=2.0),
            usage("b", 1024, 4 * PERIOD),
        ]
        result = compute_extendability(usages, pool_pcpus=4, period_ns=PERIOD)
        assert result["a"].extendability_ns >= 2 * PERIOD
        assert result["a"].optimal_vcpus >= 2

    def test_max_vcpus_clamps_count(self):
        usages = [usage("a", 1024, 4 * PERIOD, max_vcpus=2), usage("b", 64, 0)]
        result = compute_extendability(usages, pool_pcpus=8, period_ns=PERIOD)
        assert result["a"].optimal_vcpus == 2

    def test_competitor_tolerance_classifies_borderline(self):
        # Consuming 97% of fair share: releaser with tol=0, competitor
        # with tol=0.05.
        near = round(0.97 * 2 * PERIOD)
        usages = [usage("a", 256, near), usage("b", 256, 4 * PERIOD)]
        strict = compute_extendability(usages, 4, PERIOD)
        tolerant = compute_extendability(usages, 4, PERIOD, competitor_tolerance=0.05)
        assert not strict["a"].is_competitor
        assert tolerant["a"].is_competitor


class TestValidation:
    def test_empty_input(self):
        assert compute_extendability([], 4, PERIOD) == {}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            compute_extendability([usage("a", 1, 0), usage("a", 1, 0)], 4, PERIOD)

    def test_bad_pool_or_period(self):
        with pytest.raises(ValueError):
            compute_extendability([usage("a", 1, 0)], 0, PERIOD)
        with pytest.raises(ValueError):
            compute_extendability([usage("a", 1, 0)], 4, 0)

    def test_bad_usage_fields(self):
        with pytest.raises(ValueError):
            usage("a", 0, 0)
        with pytest.raises(ValueError):
            usage("a", 1, -1)
        with pytest.raises(ValueError):
            usage("a", 1, 0, cap=0)
        with pytest.raises(ValueError):
            usage("a", 1, 0, reservation=-0.1)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
vm_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=1024),       # weight
        st.integers(min_value=0, max_value=16 * PERIOD)  # consumption
    ),
    min_size=1,
    max_size=8,
)


@given(vm_lists, st.integers(min_value=1, max_value=16))
@settings(max_examples=200)
def test_vcpu_counts_always_in_range(vms, pcpus):
    usages = [usage(f"vm{i}", w, c) for i, (w, c) in enumerate(vms)]
    result = compute_extendability(usages, pcpus, PERIOD)
    for row in result.values():
        assert 1 <= row.optimal_vcpus <= pcpus
        assert 0 <= row.extendability_ns <= pcpus * PERIOD


@given(vm_lists, st.integers(min_value=1, max_value=16))
@settings(max_examples=200)
def test_releasers_keep_fair_share(vms, pcpus):
    usages = [usage(f"vm{i}", w, c) for i, (w, c) in enumerate(vms)]
    total_weight = sum(u.weight for u in usages)
    result = compute_extendability(usages, pcpus, PERIOD)
    for u in usages:
        row = result[u.name]
        fair = u.weight / total_weight * pcpus * PERIOD
        if not row.is_competitor:
            assert row.extendability_ns == pytest.approx(fair, abs=2)


@given(vm_lists, st.integers(min_value=1, max_value=16))
@settings(max_examples=200)
def test_total_extendability_conserves_capacity(vms, pcpus):
    """Fair shares + slack redistribution never mint capacity: the sum of
    extendabilities equals the pool exactly (when uncapped)."""
    usages = [usage(f"vm{i}", w, c) for i, (w, c) in enumerate(vms)]
    result = compute_extendability(usages, pcpus, PERIOD)
    competitors = [r for r in result.values() if r.is_competitor]
    total = sum(r.extendability_ns for r in result.values())
    capacity = pcpus * PERIOD
    total_weight = sum(u.weight for u in usages)
    if competitors:
        # Releasers keep their fair share *and* donate their slack to the
        # competitors, so the sum over-commits by exactly the slack:
        # sum = capacity + sum(fair_r - consumed_r) over releasers.
        slack = sum(
            u.weight / total_weight * capacity - u.consumed_ns
            for u in usages
            if not result[u.name].is_competitor
        )
        assert total == pytest.approx(capacity + slack, abs=16)
    else:
        assert total == pytest.approx(capacity, abs=16)


@given(vm_lists)
@settings(max_examples=200)
def test_competitor_extendability_weight_monotone(vms):
    """Among competitors, extendability per unit weight is equal (max-min
    fairness of the slack split)."""
    usages = [usage(f"vm{i}", w, c) for i, (w, c) in enumerate(vms)]
    result = compute_extendability(usages, 8, PERIOD)
    competitors = [(u, result[u.name]) for u in usages if result[u.name].is_competitor]
    if len(competitors) >= 2:
        ratios = [r.extendability_ns / u.weight for u, r in competitors]
        assert max(ratios) - min(ratios) <= max(ratios) * 1e-6 + 1


@given(vm_lists, st.integers(min_value=1, max_value=16))
@settings(max_examples=100)
def test_scaling_consumption_never_lowers_own_extendability(vms, pcpus):
    """A VM consuming more (others fixed) never loses extendability —
    no incentive to waste, no penalty for demand."""
    usages = [usage(f"vm{i}", w, c) for i, (w, c) in enumerate(vms)]
    base = compute_extendability(usages, pcpus, PERIOD)
    boosted = [
        usage(u.name, u.weight, u.consumed_ns * 2 if u.name == "vm0" else u.consumed_ns)
        for u in usages
    ]
    bumped = compute_extendability(boosted, pcpus, PERIOD)
    assert bumped["vm0"].extendability_ns >= base["vm0"].extendability_ns - 2
