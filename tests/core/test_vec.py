"""Bit-identity of the vectorized batch kernels and coalesced RNG draws.

The vectorized paths are only allowed to exist because they are
indistinguishable from the scalar ones: same IEEE doubles, same Python
object types at the clamp bounds (serialized state can see int-vs-float),
same RNG stream positions.  These tests pin each of those properties, on
both sides of the ``REPRO_NO_VECTOR`` switch.
"""

import math
import os

import pytest
from hypothesis import given, strategies as st

from repro.core import vec
from repro.sim.rng import SeedSequenceFactory, jittered, jittered_sum


def _scalar_clipped_add(values, delta, lo, hi):
    return [min(hi, max(lo, v + delta)) for v in values]


_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@given(
    values=st.lists(_floats, min_size=0, max_size=40),
    delta=_floats,
    bound=st.integers(min_value=1, max_value=10**9),
)
def test_clipped_add_matches_scalar_loop(values, delta, bound):
    lo, hi = -bound, bound
    expected = _scalar_clipped_add(values, delta, lo, hi)
    previous = os.environ.pop("REPRO_NO_VECTOR", None)
    try:
        vectorized = vec.clipped_add(values, delta, lo, hi)
        os.environ["REPRO_NO_VECTOR"] = "1"
        scalar = vec.clipped_add(values, delta, lo, hi)
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_VECTOR", None)
        else:
            os.environ["REPRO_NO_VECTOR"] = previous
    assert vectorized == expected
    assert scalar == expected
    # Clamped slots must carry the original bound *objects* — Python's
    # min/max return the bound itself (an int here), and serialized
    # state distinguishes 300 from 300.0.
    for got, want in zip(vectorized, expected):
        assert type(got) is type(want), (got, want)


def test_clipped_add_uses_numpy_above_min_batch():
    if not vec.HAVE_NUMPY:
        pytest.skip("numpy unavailable")
    values = [float(i) for i in range(vec._MIN_BATCH)]
    out = vec.clipped_add(values, 0.5, -2, 3)
    assert out == [min(3, max(-2, v + 0.5)) for v in values]
    assert all(isinstance(v, (int, float)) for v in out)


def test_vector_enabled_honors_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    assert not vec._vector_enabled()
    monkeypatch.delenv("REPRO_NO_VECTOR")
    assert vec._vector_enabled() == vec.HAVE_NUMPY


COSTS = ((1200, 0.06), (5400, 0.08), (800, 0.10), (2500, 0.05))


def test_jittered_sum_matches_sequential_jittered():
    """Same values AND same stream state as separate jittered() calls."""
    a = SeedSequenceFactory(42).stream("costs", "normal")
    b = SeedSequenceFactory(42).stream("costs", "normal")
    for _ in range(700):  # cross several buffer refills
        coalesced = jittered_sum(a, COSTS)
        sequential = sum(jittered(b, mean, sigma) for mean, sigma in COSTS)
        assert coalesced == sequential
    assert a.state_dict() == b.state_dict()


def test_jittered_sum_raw_generator_fallback():
    a = SeedSequenceFactory(7).generator("raw")
    b = SeedSequenceFactory(7).generator("raw")
    total = jittered_sum(a, COSTS)
    assert total == sum(jittered(b, mean, sigma) for mean, sigma in COSTS)
    assert isinstance(total, int) and total > 0


def test_jittered_sum_clamps_each_component():
    """Each component clamps to >= 1 individually, like jittered does."""
    stream = SeedSequenceFactory(1).stream("tiny", "normal")
    total = jittered_sum(stream, ((1, 5.0),) * 100)
    assert total >= 100  # 100 components, each at least 1


def test_clipped_add_empty_and_math_edge():
    assert vec.clipped_add([], 1.0, -5, 5) == []
    out = vec.clipped_add([math.inf], 0.0, -5, 5)
    assert out == [5]
