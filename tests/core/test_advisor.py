"""Tests for the application-awareness interface (paper SS7 future work)."""

import pytest

from repro.core.advisor import AdaptiveTeam, ComputeAdvice, ComputeAdvisor
from repro.core.daemon import VScaleDaemon
from repro.units import MS, SEC
from repro.workloads.base import AppHarness, phase_compute
from tests.conftest import StackBuilder, busy


def build_managed(pcpus=4, vcpus=4, rival_busy=True):
    builder = StackBuilder(pcpus=pcpus)
    worker = builder.guest("worker", vcpus=vcpus)
    rival = builder.guest("rival", vcpus=pcpus)
    if rival_busy:
        for index in range(pcpus):
            rival.spawn(busy(60 * SEC), f"r{index}")
    builder.machine.install_vscale()
    daemon = VScaleDaemon(worker)
    daemon.install()
    advisor = ComputeAdvisor(worker, daemon)
    return builder, worker, daemon, advisor


class TestAdvice:
    def test_recommendation_respects_online_and_optimal(self):
        advice = ComputeAdvice(
            online_vcpus=4, optimal_vcpus=2, extendability_pcpus=2.0, stable=True
        )
        assert advice.recommended_parallelism == 2
        advice = ComputeAdvice(
            online_vcpus=2, optimal_vcpus=4, extendability_pcpus=4.0, stable=False
        )
        assert advice.recommended_parallelism == 2

    def test_advice_tracks_contention(self):
        builder, worker, daemon, advisor = build_managed()
        machine = builder.start()
        machine.run(until=2 * SEC)
        advice = advisor.advice()
        # Equal weights on 4 pCPUs with a saturated rival: ~2 pCPUs.
        assert advice.recommended_parallelism <= 3
        assert 1.0 <= advice.extendability_pcpus <= 3.0

    def test_stability_needs_consistent_history(self):
        builder, worker, daemon, advisor = build_managed(rival_busy=False)
        machine = builder.start()
        machine.run(until=1 * SEC)
        first = advisor.advice()
        assert not first.stable  # single observation
        machine.run(until=machine.sim.now + 100 * MS)
        advisor.advice()
        machine.run(until=machine.sim.now + 100 * MS)
        third = advisor.advice()
        assert third.stable

    def test_advice_without_vscale_extension(self):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        builder.start()
        advisor = ComputeAdvisor(kernel)
        advice = advisor.advice()
        assert advice.online_vcpus == 2
        assert advice.optimal_vcpus == 2


class TestSubscription:
    def test_callback_fires_on_reconfiguration(self):
        builder, worker, daemon, advisor = build_managed()
        events = []
        advisor.subscribe(events.append)
        for index in range(4):
            worker.spawn(busy(30 * SEC), f"w{index}")
        machine = builder.start()
        machine.run(until=3 * SEC)
        assert daemon.reconfigurations >= 1
        assert events, "no advice callbacks delivered"
        assert all(isinstance(e, ComputeAdvice) for e in events)


class TestAdaptiveTeam:
    def test_team_resizes_between_phases(self):
        builder, worker, daemon, advisor = build_managed()
        team = AdaptiveTeam(worker, advisor)
        harness = AppHarness(worker, "adaptive")

        import numpy as np

        rng = np.random.default_rng(3)

        def phase_work(phase, rank, width):
            def fragment():
                # Fixed total work per phase, divided by the width used.
                yield phase_compute(rng, 40 * MS // width, 0.1)

            return fragment()

        team.run_phases(harness, phase_work, phases=12)
        machine = builder.start()
        machine.run(until=30 * SEC)
        assert harness.done
        widths = [w for _, w in team.width_log]
        assert len(widths) == 12
        # Under a saturated rival the team should not insist on width 4.
        assert min(widths) <= 3
        assert all(1 <= w <= 4 for w in widths)
