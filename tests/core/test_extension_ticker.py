"""Tests for the in-hypervisor VScaleExtension ticker."""

import pytest

from repro.units import MS, SEC
from tests.conftest import StackBuilder, busy


def build(pcpus=2):
    builder = StackBuilder(pcpus=pcpus)
    worker = builder.guest("worker", vcpus=2)
    rival = builder.guest("rival", vcpus=2)
    extension = builder.machine.install_vscale()
    return builder, worker, rival, extension


def test_install_is_idempotent():
    builder, *_ = build()
    first = builder.machine.vscale
    assert builder.machine.install_vscale() is first


def test_ticker_publishes_every_period():
    builder, worker, rival, extension = build()
    machine = builder.start()
    machine.run(until=100 * MS)
    assert worker.domain.extendability_ns is not None
    assert worker.domain.optimal_vcpus is not None
    assert extension.last_results


def test_up_vm_skipped_but_participates():
    builder = StackBuilder(pcpus=2)
    smp = builder.guest("smp", vcpus=2)
    up = builder.guest("up", vcpus=1)
    for index in range(2):
        smp.spawn(busy(10 * SEC), f"s{index}")
    up.spawn(busy(10 * SEC), "u0")
    extension = builder.machine.install_vscale()
    machine = builder.start()
    machine.run(until=500 * MS)
    # The UP VM's struct is never written (no room to scale)...
    assert up.domain.extendability_ns is None
    # ...but it is present in the calculation as a competitor.
    assert extension.last_results["up"].is_competitor


def test_read_before_first_tick_reports_full_optimism():
    builder, worker, rival, extension = build()
    machine = builder.machine
    machine.start()
    ext, n = machine.hyp_read_extendability(worker.domain)
    assert ext == machine.config.pcpus * machine.config.vscale_period_ns
    assert n == 2  # min(provisioned, pcpus)


def test_consumption_smoothing_converges():
    builder, worker, rival, extension = build()
    for index in range(2):
        worker.spawn(busy(30 * SEC), f"w{index}")
        rival.spawn(busy(30 * SEC), f"r{index}")
    machine = builder.start()
    machine.run(until=2 * SEC)
    # Two equal saturated VMs on 2 pCPUs: extendability ~1 pCPU each.
    period = machine.config.vscale_period_ns
    assert worker.domain.extendability_ns == pytest.approx(period, rel=0.15)
    assert worker.domain.optimal_vcpus == 1


def test_reconfiguration_bookkeeping():
    builder, worker, rival, extension = build()
    machine = builder.start()
    machine.run(until=50 * MS)
    machine.hyp_mark_freeze(worker.domain.vcpus[1])
    assert extension.reconfigurations.get("worker") == 1
    machine.hyp_unfreeze_vcpu(worker.domain.vcpus[1])
    assert extension.reconfigurations.get("worker") == 2
