"""Smoke/shape tests for the application experiments (Figures 6-14),
run at reduced scale so the suite stays fast; the full-scale runs live in
benchmarks/."""

import pytest

from repro.experiments import fig6_7, fig8, fig9, fig10, fig11_13, fig14
from repro.experiments.setups import Config
from repro.units import SEC
from repro.workloads.openmp import SPINCOUNT_ACTIVE, SPINCOUNT_PASSIVE


class TestNPBCells:
    def test_cell_measurements_consistent(self):
        from repro.experiments.npb_common import run_cell

        cell = run_cell("ep", 4, SPINCOUNT_ACTIVE, Config.VANILLA, work_scale=0.2)
        assert cell.duration_ns > 0
        assert cell.cpu_used_ns > 0
        assert cell.ipi_rate_per_vcpu >= 0

    def test_vscale_reduces_waiting_time(self):
        from repro.experiments.npb_common import run_cell

        vanilla = run_cell("cg", 4, SPINCOUNT_ACTIVE, Config.VANILLA, work_scale=0.3)
        vscale = run_cell("cg", 4, SPINCOUNT_ACTIVE, Config.VSCALE, work_scale=0.3)
        assert vscale.wait_ns < vanilla.wait_ns * 0.5

    def test_unknown_app_rejected(self):
        from repro.experiments.npb_common import run_cell

        with pytest.raises(KeyError):
            run_cell("zz", 4, 0, Config.VANILLA)


class TestFig6Shape:
    def test_sync_heavy_app_improves(self):
        result = fig6_7.run(
            vcpus=4,
            apps=["ua"],
            spincounts=(SPINCOUNT_ACTIVE,),
            configs=[Config.VANILLA, Config.VSCALE],
            work_scale=0.5,
        )
        assert result.normalized("ua", SPINCOUNT_ACTIVE, Config.VSCALE) < 0.9

    def test_insensitive_app_unchanged(self):
        result = fig6_7.run(
            vcpus=4,
            apps=["ep"],
            spincounts=(SPINCOUNT_ACTIVE,),
            configs=[Config.VANILLA, Config.VSCALE],
            work_scale=0.5,
        )
        assert result.normalized("ep", SPINCOUNT_ACTIVE, Config.VSCALE) == pytest.approx(
            1.0, abs=0.25
        )


class TestFig8:
    def test_trace_oscillates_within_bounds(self):
        result = fig8.run(vcpus=4, work_scale=0.6)
        assert result.trace, "no scaling activity recorded"
        assert result.levels() <= {1, 2, 3, 4}
        assert len(result.levels()) >= 2  # it actually oscillates


class TestFig9:
    def test_waiting_time_reduction_large(self):
        result = fig9.run(apps=["cg"], include_pvlock=False, work_scale=0.3)
        assert result.reduction("cg") > 0.5


class TestFig10:
    def test_spin_policy_controls_ipi_rate(self):
        result = fig10.run(apps=["sp"], work_scale=0.3)
        heavy_spin = result.rate("sp", SPINCOUNT_ACTIVE)
        passive = result.rate("sp", SPINCOUNT_PASSIVE)
        # Blocking synchronization needs wake-up IPIs; spinning does not.
        assert passive > heavy_spin * 3
        assert passive > 50


class TestParsec:
    def test_dedup_ipi_signature_and_improvement(self):
        cellv = fig11_13.run_cell("dedup", 4, Config.VANILLA, work_scale=0.4)
        cells = fig11_13.run_cell("dedup", 4, Config.VSCALE, work_scale=0.4)
        assert cellv.ipi_rate_per_vcpu > 100
        # Packing converts inter-vCPU wake-ups into intra-vCPU ones.
        assert cells.ipi_rate_per_vcpu < cellv.ipi_rate_per_vcpu

    def test_swaptions_marginal(self):
        result = fig11_13.run(
            vcpus=4, apps=["swaptions"], configs=[Config.VANILLA, Config.VSCALE]
        )
        assert result.normalized("swaptions", Config.VSCALE) == pytest.approx(1.0, abs=0.15)


class TestFig14:
    def test_vscale_keeps_connection_time_low(self):
        vanilla = fig14.run_point(Config.VANILLA, 8000, duration_ns=1 * SEC)
        vscale = fig14.run_point(Config.VSCALE, 8000, duration_ns=1 * SEC)
        assert vscale.connection_time.mean() < vanilla.connection_time.mean() * 0.5

    def test_low_rate_no_drops_anywhere(self):
        for config in (Config.VANILLA, Config.VSCALE):
            result = fig14.run_point(config, 1000, duration_ns=1 * SEC)
            assert result.drops == 0
            assert result.reply_rate == pytest.approx(1000, rel=0.05)
