"""Tests for the shared scenario builder."""

import pytest

from repro.experiments.setups import ALL_CONFIGS, Config, ScenarioBuilder, run_until_done
from repro.units import MS, SEC


def test_consolidation_ratio_determines_background_count():
    builder = ScenarioBuilder(pcpus=8).with_worker_vm(4)
    scenario = builder.build()
    # 2 vCPUs/pCPU: 16 total vCPUs = 4 worker + 6x2 desktops.
    assert len(scenario.machine.domains) == 1 + 6
    total_vcpus = sum(len(d.vcpus) for d in scenario.machine.domains)
    assert total_vcpus == 16


def test_8vcpu_worker_gets_fewer_desktops():
    scenario = ScenarioBuilder(pcpus=8).with_worker_vm(8).build()
    assert len(scenario.machine.domains) == 1 + 4


def test_explicit_background_count_wins():
    scenario = ScenarioBuilder().with_worker_vm(4).with_background_vms(2).build()
    assert len(scenario.machine.domains) == 3


def test_weights_treat_all_vcpus_equally():
    scenario = ScenarioBuilder().with_worker_vm(4).build()
    for domain in scenario.machine.domains:
        assert domain.weight == 128 * len(domain.vcpus)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_configs_wire_up_correctly(config):
    scenario = ScenarioBuilder().with_worker_vm(4).with_config(config).build()
    assert (scenario.daemon is not None) == config.uses_vscale
    assert scenario.worker_kernel.config.pv_spinlock == config.uses_pvlock
    assert scenario.machine.vscale is not None  # extension always present


def test_scenario_runs(single_run_budget=500 * MS):
    scenario = ScenarioBuilder(seed=5).with_config(Config.VSCALE).build()
    scenario.start()
    scenario.run(single_run_budget)
    assert scenario.machine.sim.now == single_run_budget


def test_run_until_done_times_out():
    scenario = ScenarioBuilder(seed=5).build()
    scenario.start()

    class NeverDone:
        done = False
        duration_ns = 0

    with pytest.raises(TimeoutError):
        run_until_done(scenario, NeverDone(), timeout_ns=200 * MS)
