"""Tests for the experiment runner CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_no_experiments_errors():
    with pytest.raises(SystemExit):
        main([])


def test_bad_scale_errors():
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "0"])


def test_runs_and_writes_output(tmp_path, capsys):
    assert main(["table1", "--scale", "0.01", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "sys_getvscaleinfo" in out
    written = (tmp_path / "table1.txt").read_text()
    assert "sys_getvscaleinfo" in written


def test_fig5_via_runner(capsys):
    assert main(["fig5", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "v3.14.15" in out


def test_every_experiment_is_registered():
    expected = {
        "table1", "table2", "table3",
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig14",
    }
    assert set(EXPERIMENTS) == expected
