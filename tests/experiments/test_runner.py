"""Tests for the experiment runner CLI."""

import re
from pathlib import Path

import pytest

from repro.experiments.runner import EXPERIMENTS, main

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_no_experiments_errors():
    with pytest.raises(SystemExit):
        main([])


def test_bad_scale_errors():
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "0"])


def test_bad_jobs_errors():
    with pytest.raises(SystemExit):
        main(["table1", "--jobs", "0"])


def test_runs_and_writes_output(tmp_path, capsys):
    out_dir = tmp_path / "out"
    assert (
        main(
            [
                "table1",
                "--scale",
                "0.01",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sys_getvscaleinfo" in out
    written = (out_dir / "table1.txt").read_text()
    assert "sys_getvscaleinfo" in written
    assert (out_dir / "telemetry.json").exists()


def test_fig5_via_runner(tmp_path, capsys):
    assert main(["fig5", "--scale", "0.2", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "v3.14.15" in out


def test_no_cache_leaves_no_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert (
        main(
            [
                "table1",
                "--scale",
                "0.01",
                "--no-cache",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "misses=1" in err
    assert not cache_dir.exists()


def test_warm_cache_rerun_hits(tmp_path, capsys):
    args = ["table1", "--scale", "0.01", "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "hits=0 misses=1" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "hits=1 misses=0" in warm.err
    # Determinism: stdout is byte-identical between cold and warm runs.
    assert warm.out == cold.out


def test_every_experiment_is_registered():
    expected = {
        "table1", "table2", "table3",
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13", "fig14",
        "variance", "ablations", "faults", "chaos", "generality",
    }
    assert set(EXPERIMENTS) == expected


def test_list_matches_benchmark_inventory():
    """Every tableN/figN benchmark has a runner entry, and vice versa.

    The benchmark files are named ``test_<name>_<slug>.py``; extra
    benchmark suites that aren't single tables/figures (decentralization,
    generality) are exempt, but variance and ablations must be runnable.
    """
    inventory = set()
    for path in BENCHMARKS.glob("test_*.py"):
        match = re.match(r"test_((?:fig|table)\d+)", path.name)
        if match:
            inventory.add(match.group(1))
    registered = {n for n in EXPERIMENTS if re.fullmatch(r"(?:fig|table)\d+", n)}
    assert inventory == registered
    assert {"variance", "ablations"} <= set(EXPERIMENTS)
    assert (BENCHMARKS / "test_variance.py").exists()
    assert (BENCHMARKS / "test_ablations.py").exists()
