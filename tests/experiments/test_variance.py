"""Tests for the seed-variance analysis module."""

import pytest

from repro.experiments import variance


def test_requires_multiple_seeds():
    with pytest.raises(ValueError):
        variance.run(seeds=(3,))


def test_small_variance_run():
    result = variance.run(app="ep", seeds=(3, 4), work_scale=0.2)
    assert set(result.durations) == {3, 4}
    assert len(result.reductions) == 2
    assert -1.0 < result.mean_reduction < 1.0
    assert result.spread >= 0
    text = result.render()
    assert "Seed variance" in text
    assert "mean reduction" in text


def test_always_wins_logic():
    result = variance.VarianceResult(app="x", spincount=0, seeds=[1, 2])
    result.durations = {1: (100, 50), 2: (100, 80)}
    assert result.always_wins
    result.durations[2] = (100, 120)
    assert not result.always_wins
