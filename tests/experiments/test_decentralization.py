"""Tests for the decentralization experiment module."""

import pytest

from repro.experiments import decentralization
from repro.units import SEC


def test_requires_two_vms():
    with pytest.raises(ValueError):
        decentralization.run(vms=1)


def test_small_run_reports_all_vms():
    result = decentralization.run(vms=3, duration_ns=2 * SEC)
    assert result.vms == 3
    assert set(result.shares) == {"vm0", "vm1", "vm2"}
    assert set(result.reconfigurations) == set(result.shares)
    assert result.channel_cost_ns > 0
    assert result.centralized_cost_ns > result.channel_cost_ns


def test_render_contains_speedup():
    result = decentralization.run(vms=3, duration_ns=2 * SEC)
    text = result.render()
    assert "decentralized" in text
    assert "x)" in text


def test_worst_share_error_defined():
    result = decentralization.run(vms=3, duration_ns=2 * SEC)
    assert 0.0 <= result.worst_share_error < 1.0
