"""Golden-result snapshot tests.

Each case runs a small, fixed-scale experiment and compares its
``results.to_dict`` JSON against a snapshot checked in under
``tests/experiments/goldens/``.  Because the simulator is seeded and
bit-for-bit deterministic, any diff means the simulation's numerical
behavior changed — which must be a conscious decision, not an accident.

Regenerating the snapshots (after an intentional model change)::

    REPRO_UPDATE_GOLDENS=1 python -m pytest \
        tests/experiments/test_goldens.py -q

then review the JSON diff and commit it alongside the change that
caused it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import results

GOLDENS = Path(__file__).resolve().parent / "goldens"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDENS"))


def _table1():
    from repro.experiments import table1

    return table1.run(iterations=1000)


def _table3():
    from repro.experiments import table3

    return table3.run(iterations=20)


def _fig6_cell():
    from repro.experiments.npb_common import run_cell
    from repro.experiments.setups import Config
    from repro.workloads.openmp import SPINCOUNT_ACTIVE

    return run_cell(
        "cg", 4, SPINCOUNT_ACTIVE, Config.VSCALE, seed=3, work_scale=0.05
    )


def _faults_cell():
    from repro.experiments import faults

    return faults.run_matrix_cell("cg", "vscale", 0.05, seed=3, work_scale=0.05)


def _chaos_cell():
    from repro.experiments import chaos

    return chaos.run_chaos_cell("crash", seed=3, work_scale=0.05)


CASES = {
    "table1": _table1,
    "table3": _table3,
    "fig6_cell_cg_vscale": _fig6_cell,
    "faults_cell_cg_vscale": _faults_cell,
    "chaos_cell_crash": _chaos_cell,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name):
    computed = json.loads(results.dumps(CASES[name](), experiment=name))
    path = GOLDENS / f"{name}.json"
    if UPDATE:
        GOLDENS.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(computed, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated golden {path.name}")
    assert path.exists(), (
        f"missing golden {path}; regenerate with REPRO_UPDATE_GOLDENS=1 "
        "(see module docstring)"
    )
    expected = json.loads(path.read_text())
    assert computed == expected, (
        f"{name} diverged from its golden snapshot; if the change is "
        "intentional, regenerate with REPRO_UPDATE_GOLDENS=1 and commit "
        "the diff"
    )
