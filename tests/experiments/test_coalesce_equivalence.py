"""Optimization on/off equivalence against the golden snapshots.

The golden tests (:mod:`tests.experiments.test_goldens`) already run with
the fast path fully enabled — tick coalescing on, timer-wheel engine —
because those are the defaults.  These tests flip each optimization OFF
via its environment knob and re-run a cell, requiring the *same* golden
bytes: the fast path must be a pure performance change, invisible in
every number an experiment produces.
"""

import json

import pytest

from repro.experiments import results
from tests.experiments.test_goldens import CASES, GOLDENS


def _expect_golden(name):
    path = GOLDENS / f"{name}.json"
    assert path.exists(), f"missing golden {path}"
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", ["fig6_cell_cg_vscale", "faults_cell_cg_vscale"])
def test_coalescing_off_matches_golden(monkeypatch, name):
    monkeypatch.setenv("REPRO_COALESCE_TICKS", "0")
    computed = json.loads(results.dumps(CASES[name](), experiment=name))
    assert computed == _expect_golden(name)


@pytest.mark.parametrize("name", ["fig6_cell_cg_vscale", "table1"])
def test_heap_engine_matches_golden(monkeypatch, name):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "heap")
    computed = json.loads(results.dumps(CASES[name](), experiment=name))
    assert computed == _expect_golden(name)


def test_everything_off_matches_golden(monkeypatch):
    """Both knobs off at once — the fully unoptimized configuration."""
    monkeypatch.setenv("REPRO_COALESCE_TICKS", "0")
    monkeypatch.setenv("REPRO_SIM_ENGINE", "heap")
    name = "fig6_cell_cg_vscale"
    computed = json.loads(results.dumps(CASES[name](), experiment=name))
    assert computed == _expect_golden(name)
