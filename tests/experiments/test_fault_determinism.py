"""Fault-injection determinism: same seed + same plan => same results.

The fault injector draws from named streams derived from the *plan*
seed, so an injected run is just as deterministic as a clean one: the
same (workload seed, fault seed, rate) triple must reproduce the same
faults, the same degradation counters, and the same report — serially,
pooled, or cached.  This is what makes the fault matrix cacheable and
its goldens meaningful.
"""

from repro.experiments import faults, results
from repro.parallel import ParallelExecutor

KWARGS = dict(app_name="cg", mechanism="vscale", rate=0.1, seed=3, work_scale=0.05)


def test_same_seed_and_plan_reproduce_bit_for_bit():
    first = faults.run_matrix_cell(**KWARGS)
    second = faults.run_matrix_cell(**KWARGS)
    assert first == second
    assert results.dumps(first) == results.dumps(second)
    # The run actually injected faults — this is not vacuous.
    assert sum(first.injected.values()) > 0


def test_fault_seed_changes_the_run():
    base = faults.run_matrix_cell(**KWARGS)
    other = faults.run_matrix_cell(**KWARGS, fault_seed=faults.FAULT_SEED + 1)
    assert base.injected != other.injected or base.duration_ns != other.duration_ns


def test_pool_matches_serial_for_fault_cells():
    grid = dict(
        apps=("cg",), mechanisms=("vscale", "hotplug"), rates=(0.0, 0.1),
        seed=3, work_scale=0.05,
    )
    serial = faults.run(**grid, executor=ParallelExecutor(jobs=1))
    pooled = faults.run(**grid, executor=ParallelExecutor(jobs=2))
    assert serial.cells == pooled.cells
    assert serial.render() == pooled.render()


def test_rate_zero_cell_matches_undisturbed_baseline():
    """A zero-rate plan must not alter the simulation at all: the
    injector is never installed, and the hotplug cell equals a run with
    no fault machinery anywhere near it."""
    cell = faults.run_matrix_cell("cg", "hotplug", 0.0, seed=3, work_scale=0.05)
    assert cell.injected == {}
    again = faults.run_matrix_cell("cg", "hotplug", 0.0, seed=3, work_scale=0.05)
    assert cell == again
