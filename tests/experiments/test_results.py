"""Tests for the JSON results persistence layer."""

import json

import pytest

from repro.experiments import results, table1
from repro.experiments.setups import Config
from repro.metrics.collectors import LatencyReservoir


def test_dataclass_round_trips():
    result = table1.run(iterations=1_000)
    payload = results.to_dict(result, experiment="table1")
    assert payload["experiment"] == "table1"
    assert payload["total_us"] == pytest.approx(0.91, abs=0.05)
    json.dumps(payload)  # serializable


def test_reservoir_summarized():
    reservoir = LatencyReservoir()
    for value in (10, 20, 30):
        reservoir.record(value)
    encoded = results._encode(reservoir)
    assert encoded["count"] == 3
    assert encoded["min_ns"] == 10
    assert encoded["max_ns"] == 30


def test_empty_reservoir():
    assert results._encode(LatencyReservoir()) == {"count": 0}


def test_tuple_keys_flattened():
    payload = results._encode({("cg", Config.VSCALE): 1.0})
    assert payload == {"cg|vScale": 1.0}


def test_enum_values_encoded():
    assert results._encode(Config.VANILLA) == "Xen/Linux"


def test_save_writes_json(tmp_path):
    result = table1.run(iterations=500)
    target = tmp_path / "t1.json"
    results.save(result, target, experiment="table1")
    loaded = json.loads(target.read_text())
    assert loaded["experiment"] == "table1"
    assert loaded["iterations"] == 500


def test_non_dataclass_objects_use_public_attrs():
    class Plain:
        def __init__(self):
            self.value = 7
            self._hidden = 8

        def method(self):
            return None

    payload = results.to_dict(Plain())
    assert payload["value"] == 7
    assert "_hidden" not in payload
    assert "method" not in payload
