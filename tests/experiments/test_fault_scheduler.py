"""Fault experiments are scheduler-agnostic.

The freeze-failure site and the rest of the injector act through the
generic ``Scheduler`` interface, so the fault matrix must run — and stay
bit-for-bit deterministic — under any registered scheduler, not just the
credit scheduler the paper patched.
"""

import pytest

from repro.experiments import faults, results
from repro.hypervisor.schedulers import available

KWARGS = dict(app_name="cg", mechanism="vscale", rate=0.1, seed=3, work_scale=0.05)


def test_non_credit_scheduler_fault_run_is_deterministic():
    """Same seed + same plan reproduce bit-for-bit under credit2."""
    first = faults.run_matrix_cell(**KWARGS, scheduler="credit2")
    second = faults.run_matrix_cell(**KWARGS, scheduler="credit2")
    assert first == second
    assert results.dumps(first) == results.dumps(second)
    # Faults were actually injected — the run is not vacuous.
    assert sum(first.injected.values()) > 0


def test_scheduler_changes_the_fault_run():
    """The scheduler choice is part of the simulation, not a no-op."""
    credit = faults.run_matrix_cell(**KWARGS, scheduler="credit")
    rr = faults.run_matrix_cell(**KWARGS, scheduler="rr")
    assert credit.duration_ns != rr.duration_ns or credit.injected != rr.injected


@pytest.mark.parametrize("scheduler", [n for n in available() if n != "credit"])
def test_fault_cell_completes_under_every_scheduler(scheduler):
    """Freeze-failure injection must not wedge any zoo member."""
    cell = faults.run_matrix_cell(
        "cg", "vscale", 0.05, seed=3, work_scale=0.05, scheduler=scheduler
    )
    assert cell.duration_ns > 0
    assert sum(cell.injected.values()) > 0


def test_scheduler_key_extends_cell_names_only_when_set():
    plain = faults.cells(apps=("cg",), rates=(0.1,))
    tagged = faults.cells(apps=("cg",), rates=(0.1,), scheduler="rr")
    assert all("sched=" not in spec.name for spec in plain)
    assert all("scheduler" not in spec.kwargs for spec in plain)
    assert all(spec.name.endswith("/sched=rr") for spec in tagged)
    assert all(spec.kwargs["scheduler"] == "rr" for spec in tagged)
