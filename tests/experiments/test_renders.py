"""Render-path tests for experiment result objects (cheap, no long runs)."""

import pytest

from repro.experiments.fig11_13 import ParsecCell, ParsecFigureResult
from repro.experiments.fig14 import Fig14Result
from repro.experiments.fig6_7 import NPBFigureResult
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.setups import Config
from repro.experiments.npb_common import NPBCell
from repro.workloads.apache import HttperfResult
from repro.workloads.openmp import SPINCOUNT_ACTIVE


def make_npb_cell(app, config, duration):
    return NPBCell(
        app=app,
        vcpus=4,
        spincount=SPINCOUNT_ACTIVE,
        config=config,
        duration_ns=duration,
        wait_ns=duration // 10,
        cpu_used_ns=duration * 2,
        ipi_rate_per_vcpu=42.0,
        vcpu_trace=[],
    )


class TestNPBFigureResult:
    def test_normalized_and_render(self):
        result = NPBFigureResult(vcpus=4)
        result.cells[("cg", SPINCOUNT_ACTIVE, Config.VANILLA)] = make_npb_cell(
            "cg", Config.VANILLA, 2_000_000_000
        )
        result.cells[("cg", SPINCOUNT_ACTIVE, Config.VSCALE)] = make_npb_cell(
            "cg", Config.VSCALE, 1_000_000_000
        )
        assert result.normalized("cg", SPINCOUNT_ACTIVE, Config.VSCALE) == 0.5
        text = result.render()
        assert "cg" in text and "0.500" in text


class TestFig8Result:
    def test_levels_and_render(self):
        result = Fig8Result(vcpus=4, trace=[(0, 4), (10**9, 2)], duration_ns=2 * 10**9)
        assert result.levels() == {2, 4}
        assert "bt in a 4-vCPU VM" in result.render()


class TestFig9Result:
    def test_reduction_math(self):
        result = Fig9Result()
        result.plain["cg"] = (10 * 10**9, 1 * 10**9)
        assert result.reduction("cg") == pytest.approx(0.9)
        result.plain["zero"] = (0, 0)
        assert result.reduction("zero") == 0.0
        assert "cg" in result.render()


class TestParsecFigureResult:
    def test_ipi_rate_and_render(self):
        result = ParsecFigureResult(vcpus=4)
        result.cells[("dedup", Config.VANILLA)] = ParsecCell(
            "dedup", Config.VANILLA, 2 * 10**9, 900.0
        )
        result.cells[("dedup", Config.VSCALE)] = ParsecCell(
            "dedup", Config.VSCALE, 10**9, 300.0
        )
        assert result.ipi_rate("dedup") == 900.0
        assert result.normalized("dedup", Config.VSCALE) == 0.5
        assert "dedup" in result.render()


class TestFig14Result:
    def test_peak_and_render(self):
        result = Fig14Result()
        for rate, replies in ((1000, 1000), (5000, 4500)):
            hr = HttperfResult(request_rate=rate, duration_ns=10**9)
            hr.replies = replies
            from repro.metrics.collectors import LatencyReservoir

            hr.connection_time = LatencyReservoir()
            hr.connection_time.record(1_000_000)
            hr.response_time = LatencyReservoir()
            hr.response_time.record(2_000_000)
            result.points[(Config.VANILLA, rate)] = hr
        assert result.peak_reply_rate(Config.VANILLA) == 4500
        assert result.reply_rate(Config.VANILLA, 1000) == 1000
        assert result.mean_connection_ms(Config.VANILLA, 1000) == pytest.approx(1.0)
        assert "Apache" in result.render()
