"""Tests for the micro-benchmark experiments (Tables 1-3, Figures 4-5)."""

import pytest

from repro.experiments import fig4, fig5, table1, table2, table3
from repro.hypervisor.dom0 import Dom0Load


class TestTable1:
    def test_matches_paper_values(self):
        result = table1.run(iterations=20_000)
        assert result.syscall_us == pytest.approx(0.69, abs=0.03)
        assert result.hypercall_us == pytest.approx(0.22, abs=0.02)
        assert result.total_us == pytest.approx(0.91, abs=0.04)

    def test_render_contains_rows(self):
        text = table1.run(iterations=1_000).render()
        assert "sys_getvscaleinfo" in text
        assert "SCHEDOP_getvscaleinfo" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(iterations=400, vm_counts=[1, 10, 50])

    def test_linear_growth(self, result):
        for load in Dom0Load:
            series = result.points[load]
            assert series[1]["avg_ns"] < series[10]["avg_ns"] < series[50]["avg_ns"]

    def test_io_ordering(self, result):
        assert (
            result.avg_ms(Dom0Load.IDLE, 50)
            < result.avg_ms(Dom0Load.DISK_IO, 50)
            < result.avg_ms(Dom0Load.NET_IO, 50)
        )

    def test_paper_anchors(self, result):
        # >6ms average under network I/O at 50 VMs; max in the tens of ms.
        assert result.avg_ms(Dom0Load.NET_IO, 50) > 6.0
        assert result.max_ms(Dom0Load.NET_IO, 50) > 12.0

    def test_render(self, result):
        assert "libxl" in result.render()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(seed=1)

    def test_active_vcpus_tick_at_1000hz(self, result):
        for rate in result.timer_before:
            assert rate == pytest.approx(1000, abs=30)

    def test_frozen_vcpu_receives_nothing(self, result):
        assert result.timer_after[3] == 0
        assert result.ipi_after[3] == 0

    def test_survivors_keep_ticking(self, result):
        for rate in result.timer_after[:3]:
            assert rate == pytest.approx(1000, abs=30)

    def test_ipis_flow_before_and_after(self, result):
        assert sum(result.ipi_before) > 10
        assert sum(result.ipi_after[:3]) > 10


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(iterations=40)

    def test_master_cost_is_2_1_us(self, result):
        assert result.breakdown[-1][2] == pytest.approx(2.1, abs=0.1)
        assert result.live_master_us == pytest.approx(2.1, rel=0.1)

    def test_freeze_latency_microseconds(self, result):
        # Whole freeze (IPI + thread migration + block) stays in the
        # microsecond range — vs. milliseconds for hotplug.
        assert result.live_freeze_latency_us < 100

    def test_render(self, result):
        text = result.render()
        assert "sys_freezecpu" in text
        assert "reschedule IPI" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(cycles=100, seed=2)

    def test_all_versions_present(self, result):
        assert set(result.add) == {"v2.6.32", "v3.2.60", "v3.14.15", "v4.2"}

    def test_removal_slower_than_fast_add(self, result):
        fast_add = result.add["v3.14.15"]
        removal = result.remove["v3.14.15"]
        assert removal.percentile(0.5) > fast_add.percentile(0.5) * 10

    def test_cdf_shapes(self, result):
        cdf = result.cdf("v2.6.32", "remove")
        assert len(cdf) == 100
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)

    def test_paper_anchor_v31415_add(self, result):
        assert 300_000 <= result.add["v3.14.15"].min() <= 600_000
