"""Determinism regression: pooled execution == serial execution, bit for bit.

The simulator draws all randomness from named, seeded streams, so one
cell's result is a pure function of its parameters.  The parallel
executor relies on that: it may run cells in any process, in any order,
and serve them from cache, and the assembled results must still be
byte-identical to a plain serial run.  This test is the standing
correctness harness for ``repro.parallel`` (tier-1).
"""

from repro.experiments import fig6_7, results
from repro.experiments.npb_common import run_cell
from repro.experiments.setups import Config
from repro.parallel import CellSpec, ParallelExecutor
from repro.workloads.openmp import SPINCOUNT_ACTIVE

WORK_SCALE = 0.05
CONFIGS = (Config.VANILLA, Config.VSCALE)


def _specs():
    return [
        CellSpec(
            experiment="determinism",
            name=f"cg/{config.value}",
            fn=run_cell,
            kwargs=dict(
                app_name="cg",
                vcpus=4,
                spincount=SPINCOUNT_ACTIVE,
                config=config,
                seed=3,
                work_scale=WORK_SCALE,
            ),
        )
        for config in CONFIGS
    ]


def test_pool_matches_serial_cell_for_cell():
    serial = [
        run_cell("cg", 4, SPINCOUNT_ACTIVE, config, seed=3, work_scale=WORK_SCALE)
        for config in CONFIGS
    ]
    pooled_1 = ParallelExecutor(jobs=1).run_cells(_specs())
    pooled_4 = ParallelExecutor(jobs=4).run_cells(_specs())

    # The dataclasses compare field-by-field (durations, waits, IPI
    # rates, vCPU traces): equality here is exact, not approximate.
    assert serial == pooled_1 == pooled_4

    # And the rendered/serialized forms are bit-for-bit identical.
    for a, b, c in zip(serial, pooled_1, pooled_4):
        assert results.dumps(a) == results.dumps(b) == results.dumps(c)


def test_figure_result_identical_through_pool():
    kwargs = dict(
        vcpus=4,
        apps=["cg"],
        spincounts=(SPINCOUNT_ACTIVE,),
        configs=list(CONFIGS),
        work_scale=WORK_SCALE,
    )
    serial = fig6_7.run(**kwargs, executor=ParallelExecutor(jobs=1))
    pooled = fig6_7.run(**kwargs, executor=ParallelExecutor(jobs=4))
    assert serial.render() == pooled.render()
    assert results.dumps(serial, "fig6") == results.dumps(pooled, "fig6")
