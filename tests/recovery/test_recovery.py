"""Recovery-protocol tests: crash/restart, hang watchdog, outage degrade.

Each crash-stop fault class gets its protocol pinned:

* a crashed daemon restarts, rebuilds its dwell state from the durable
  xenstore snapshot, and reconverges within a bounded number of epochs;
* a crashed daemon *without* durable state still recovers (relearning
  from scratch) — the protocol does not depend on the optimization;
* a wedged vCPU visibly starves fair threads until the watchdog's
  freeze/unfreeze cycle clears it;
* a dom0 balancer outage degrades VCPU-Bal to naive per-domain decisions
  and explicitly re-syncs when the service returns.
"""

import pytest

from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder
from repro.faults import FaultEvent, FaultPlan, generate_plan
from repro.units import MS, SEC


def _vscale(plan, daemon_config=None, seed=11, watchdog=False):
    builder = (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VSCALE)
        .with_faults(plan)
        .with_watchdog(watchdog)
    )
    builder.daemon_config = daemon_config
    return builder.build()


# ----------------------------------------------------------------------
# Daemon crash/restart
# ----------------------------------------------------------------------
def test_daemon_crash_restarts_and_reconverges():
    plan = generate_plan(11, 1 * SEC, daemon_crashes=2)
    scenario = _vscale(plan, DaemonConfig.crash_hardened())
    scenario.start()
    scenario.run(1 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.daemon_crashes == 2
    assert recovery.daemon_restarts == 2
    assert recovery.state_restores == 2
    assert recovery.recoveries == 2
    # Bounded reconvergence: restart delay (20 ms = 2 periods) + the
    # first fresh read => a small, fixed epoch count.
    assert 1 <= recovery.recovery_epochs_max <= 4


def test_daemon_crash_without_durable_state_still_recovers():
    plan = generate_plan(11, 1 * SEC, daemon_crashes=2)
    scenario = _vscale(plan, DaemonConfig.hardened())
    scenario.start()
    scenario.run(1 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.daemon_restarts == 2
    assert recovery.state_restores == 0  # nothing durable to reload
    assert recovery.recoveries == 2


def test_durable_state_survives_crash():
    """The restored dwell state equals what the daemon published: after
    the run, the xenstore key holds the live hysteresis values."""
    import json

    plan = generate_plan(11, 1 * SEC, daemon_crashes=1)
    scenario = _vscale(plan, DaemonConfig.crash_hardened())
    scenario.start()
    scenario.run(1 * SEC)
    daemon = scenario.daemon
    store = scenario.machine.xenstore
    path = f"/vscale/{scenario.worker_domain.name}/daemon/state"
    assert store.exists(path)
    saved = json.loads(store.read(path))
    assert set(saved) == {"direction", "last_change_ns", "shrink_votes"}
    assert saved["direction"] == daemon._last_direction
    assert saved["last_change_ns"] == daemon._last_change_ns


def test_crashed_and_healthy_twins_converge():
    """The reconvergence claim, end to end: after recovery completes the
    crashed run's scaling decisions track the healthy twin's again (the
    online-vCPU count agrees once both are past the last crash)."""
    plan = generate_plan(11, 1 * SEC, daemon_crashes=1)
    crashed = _vscale(plan, DaemonConfig.crash_hardened())
    healthy = _vscale(None, DaemonConfig.crash_hardened())
    crashed.start()
    healthy.start()
    crashed.run(2 * SEC)
    healthy.run(2 * SEC)
    assert crashed.machine.faults.recovery.recoveries == 1
    assert crashed.worker_kernel.online_vcpus == healthy.worker_kernel.online_vcpus


def test_zero_crash_plan_changes_nothing():
    """A plan without crash events leaves the run identical to no plan at
    all: crash sites consume no randomness when quiet (golden safety)."""
    from repro.recovery import fingerprint, state_dict

    with_plan = _vscale(FaultPlan(seed=9), DaemonConfig.hardened())
    without = _vscale(None, DaemonConfig.hardened())
    with_plan.start()
    without.start()
    with_plan.run(500 * MS)
    without.run(500 * MS)
    a = state_dict(with_plan.machine)
    b = state_dict(without.machine)
    # The injector itself only exists on one side; everything else
    # (domains, scheduler, pool, engine, rng) must be identical.
    for key in ("domains", "scheduler", "pool", "engine", "at_ns"):
        assert a[key] == b[key], key


# ----------------------------------------------------------------------
# vCPU hang watchdog
# ----------------------------------------------------------------------
def test_watchdog_clears_wedged_vcpu():
    plan = FaultPlan(
        seed=5,
        events=(FaultEvent(at_ns=100 * MS, site="vcpu_hang", magnitude=1.0),),
    )
    scenario = (
        ScenarioBuilder(seed=5, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VANILLA)
        .with_faults(plan)
        .with_watchdog()
        .build()
    )
    scenario.start()
    scenario.run(1 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.hangs_injected == 1
    assert recovery.watchdog_clears == 1
    # Fully recovered: nothing hung, nothing pending, vCPU back online.
    watchdog = scenario.watchdog
    assert not watchdog.hung and not watchdog._clearing
    assert 1 not in scenario.worker_kernel.cpu_freeze_mask


def test_wedge_starves_fair_threads_until_cleared():
    """The hang is real: while wedged, the RT spinner owns the vCPU, so a
    fair thread pinned there makes no progress; after the watchdog clears
    the vCPU the thread runs again."""
    from repro.guest.actions import Compute

    plan = FaultPlan(
        seed=5,
        events=(FaultEvent(at_ns=50 * MS, site="vcpu_hang", magnitude=1.0),),
    )
    scenario = (
        ScenarioBuilder(seed=5, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VANILLA)
        .with_faults(plan)
        .with_watchdog()
        .build()
    )
    kernel = scenario.worker_kernel

    def ticker():
        while True:
            yield Compute(1 * MS)

    victim = kernel.spawn(ticker(), name="victim", pinned_to=1)
    scenario.start()
    scenario.run(51 * MS)  # wedge landed at 50 ms
    exec_at_wedge = victim.exec_ns
    # The wedge holds until the next watchdog sweep (every 20 ms) releases
    # it, so 51-59 ms is inside the guaranteed-wedged window.
    scenario.run(59 * MS)
    starved_delta = victim.exec_ns - exec_at_wedge
    scenario.run(1 * SEC)  # long past the clear
    assert scenario.machine.faults.recovery.watchdog_clears == 1
    recovered_delta = victim.exec_ns - exec_at_wedge
    # Starvation while wedged, progress after the clear.
    assert starved_delta < 2 * MS
    assert recovered_delta > 100 * MS


def test_hang_on_frozen_vcpu_waits_for_surface():
    """A hang scripted onto a frozen vCPU stays latent until the vCPU
    comes back online (a frozen vCPU runs nothing, so there is nothing
    to wedge)."""
    plan = FaultPlan(
        seed=5,
        events=(FaultEvent(at_ns=30 * MS, site="vcpu_hang", magnitude=3.0),),
    )
    scenario = (
        ScenarioBuilder(seed=5, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VANILLA)
        .with_faults(plan)
        .with_watchdog()
        .build()
    )
    scenario.start()
    scenario.run(20 * MS)
    scenario.watchdog.balancer.freeze(3)
    scenario.run(200 * MS)
    assert scenario.machine.faults.recovery.hangs_injected == 0  # latent
    scenario.watchdog.balancer.unfreeze(3)
    scenario.run(1 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.hangs_injected == 1
    assert recovery.watchdog_clears == 1


# ----------------------------------------------------------------------
# Balancer outage degradation
# ----------------------------------------------------------------------
def _vcpubal(plan, seed=9):
    from repro.core.baselines import VCPUBalManager
    from repro.guest.hotplug import HotplugModel
    from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
    from repro.sim.rng import SeedSequenceFactory

    scenario = (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VANILLA)
        .with_faults(plan)
        .build()
    )
    seeds = SeedSequenceFactory(seed)
    dom0 = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
    model = HotplugModel("v3.14.15", seeds.generator("hp"))
    manager = VCPUBalManager(scenario.worker_kernel, dom0, model)
    manager.install()
    return scenario, manager


def test_balancer_outage_degrades_then_resyncs():
    plan = generate_plan(9, 2 * SEC, balancer_outages=2)
    scenario, manager = _vcpubal(plan)
    scenario.start()
    scenario.run(2 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.balancer_outages == 2
    assert recovery.naive_fallback_decisions >= 2
    assert recovery.balancer_resyncs == 2
    assert not manager._degraded  # healthy again at the end


def test_naive_fallback_unfreezes_conservatively():
    """During the outage the degraded manager only brings frozen vCPUs
    back online — it never freezes blind."""
    plan = FaultPlan(
        seed=9,
        events=(
            FaultEvent(
                at_ns=300 * MS, site="balancer_outage", duration_ns=500 * MS
            ),
        ),
    )
    scenario, manager = _vcpubal(plan)
    kernel = scenario.worker_kernel
    scenario.start()
    scenario.run(250 * MS)
    kernel.machine.vscale  # ensure extension installed (builder does)
    frozen_before = len(kernel.cpu_freeze_mask)
    scenario.run(900 * MS)
    recovery = scenario.machine.faults.recovery
    assert recovery.naive_fallback_decisions >= 1
    assert len(kernel.cpu_freeze_mask) <= frozen_before
    assert recovery.balancer_resyncs == 1
