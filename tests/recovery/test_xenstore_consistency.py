"""XenStore consistency under interleaved restart/balancer traffic.

The daemon's durable state shares the machine-wide store with the
balancer's availability keys.  The torn-state hazards and why they
cannot happen:

* the daemon publishes its whole hysteresis snapshot as ONE JSON value
  on ONE key, and single-key commits are atomic — a reader sees the old
  complete snapshot or the new complete snapshot, never a blend;
* a crash between ``write`` and its delayed ``_commit`` leaves the
  previous complete snapshot in place (the restart reads old-but-whole
  state);
* interleaved balancer availability writes land on disjoint keys and
  cannot shear the daemon's snapshot.
"""

import json

import pytest

from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder
from repro.faults import generate_plan
from repro.hypervisor.xenstore import XenStoreError, availability_path
from repro.units import MS, SEC


def _scenario(plan=None, seed=13):
    builder = (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VSCALE)
        .with_faults(plan)
    )
    builder.daemon_config = DaemonConfig.crash_hardened()
    return builder.build()


def _poll_states(scenario, until_ns, step_ns=1 * MS):
    """Read the daemon-state key at every step; return the decoded dicts."""
    store = scenario.machine.xenstore
    path = f"/vscale/{scenario.worker_domain.name}/daemon/state"
    seen = []
    while scenario.machine.sim.now < until_ns:
        scenario.run(scenario.machine.sim.now + step_ns)
        try:
            raw = store.read(path)
        except XenStoreError:
            continue
        seen.append(json.loads(raw))
    return seen


def test_daemon_state_is_never_torn():
    """Every observable value of the state key is a complete snapshot
    with exactly the three expected fields and coherent types — sampled
    every millisecond across a run with crashes and scaling activity."""
    plan = generate_plan(13, 1 * SEC, daemon_crashes=2)
    scenario = _scenario(plan)
    scenario.start()
    snapshots = _poll_states(scenario, 1 * SEC)
    assert snapshots, "daemon never published durable state"
    for snap in snapshots:
        assert set(snap) == {"direction", "last_change_ns", "shrink_votes"}
        assert snap["direction"] in (-1, 0, 1)
        assert isinstance(snap["last_change_ns"], int)
        assert isinstance(snap["shrink_votes"], int)
        assert snap["shrink_votes"] >= 0


def test_interleaved_balancer_writes_do_not_corrupt_daemon_state():
    """Hammer availability keys (the balancer's traffic) on the shared
    store while the daemon publishes; both namespaces stay intact."""
    plan = generate_plan(13, 1 * SEC, daemon_crashes=1)
    scenario = _scenario(plan)
    store = scenario.machine.xenstore
    name = scenario.worker_domain.name
    scenario.start()

    # Interleave writes at a cadence that brackets the daemon's commits.
    for tick in range(50):
        scenario.run((tick + 1) * 17 * MS)
        store.write(availability_path(name, 1 + tick % 3), "online")

    path = f"/vscale/{name}/daemon/state"
    snap = json.loads(store.read(path))
    assert set(snap) == {"direction", "last_change_ns", "shrink_votes"}
    for index in (1, 2, 3):
        assert store.read(availability_path(name, index)) == "online"


def test_crash_before_commit_reads_old_complete_state():
    """A write in flight at crash time is invisible to the restart: the
    120 us commit latency means the restart's read returns the previous
    complete snapshot, not a half-applied one."""
    scenario = _scenario()
    store = scenario.machine.xenstore
    path = "/consistency/probe"
    scenario.start()
    scenario.run(10 * MS)
    store.write(path, json.dumps({"gen": 1, "complete": True}, sort_keys=True))
    scenario.run(20 * MS)  # gen 1 committed
    store.write(path, json.dumps({"gen": 2, "complete": True}, sort_keys=True))
    # "Crash" immediately: a reader at t+0 (before the 120 us commit)
    # must see gen 1, whole.
    observed = json.loads(store.read(path))
    assert observed == {"gen": 1, "complete": True}
    scenario.run(21 * MS)  # past the commit latency
    observed = json.loads(store.read(path))
    assert observed == {"gen": 2, "complete": True}


def test_restored_state_matches_last_published():
    """End to end: what the post-crash daemon restored equals what the
    pre-crash daemon last committed (no invented or partial values)."""
    plan = generate_plan(13, 2 * SEC, daemon_crashes=1)
    scenario = _scenario(plan)
    scenario.start()
    scenario.run(2 * SEC)
    recovery = scenario.machine.faults.recovery
    assert recovery.daemon_crashes == 1
    assert recovery.state_restores == 1
    # The published key tracks the live daemon again after recovery.
    daemon = scenario.daemon
    snap = json.loads(
        scenario.machine.xenstore.read(
            f"/vscale/{scenario.worker_domain.name}/daemon/state"
        )
    )
    assert snap["direction"] == daemon._last_direction
    assert snap["last_change_ns"] == daemon._last_change_ns
