"""Chaos harness tests: plan generation determinism and grid plumbing."""

import pytest

from repro.experiments import chaos
from repro.faults import generate_plan
from repro.units import MS, SEC


def test_generate_plan_is_deterministic():
    a = generate_plan(17, 4 * SEC, daemon_crashes=2, vcpu_hangs=2, balancer_outages=1)
    b = generate_plan(17, 4 * SEC, daemon_crashes=2, vcpu_hangs=2, balancer_outages=1)
    assert a == b
    c = generate_plan(18, 4 * SEC, daemon_crashes=2, vcpu_hangs=2, balancer_outages=1)
    assert c != a


def test_generate_plan_shapes():
    plan = generate_plan(7, 4 * SEC, daemon_crashes=3, vcpu_hangs=2, vcpus=4)
    sites = [e.site for e in plan.events]
    assert sites.count("daemon_crash") == 3
    assert sites.count("vcpu_hang") == 2
    # Instants land in the middle 80% of the window, sorted per plan.
    for event in plan.events:
        assert 4 * SEC // 10 <= event.at_ns <= 4 * SEC - 4 * SEC // 10
    for event in plan.events:
        if event.site == "vcpu_hang":
            assert 1 <= int(event.magnitude) <= 3  # never the master


def test_generate_plan_validates():
    with pytest.raises(ValueError):
        generate_plan(1, 0)
    with pytest.raises(ValueError):
        generate_plan(1, SEC, vcpu_hangs=1, vcpus=1)


def test_build_plan_covers_profiles():
    for profile in chaos.PROFILES:
        plan = chaos._build_plan(profile, 17, 1.0)
        if profile == "none":
            assert plan is None
        else:
            assert plan is not None and plan.active


def test_chaos_cell_smoke():
    """One tiny crash cell end to end: snapshots taken, recovery counted,
    and the cell is deterministic across runs."""
    cell = chaos.run_chaos_cell("crash", work_scale=0.05)
    assert cell.profile == "crash"
    assert cell.snapshots_taken >= 1
    assert len(cell.snapshot_fingerprints) == cell.snapshots_taken
    assert cell.recovery["daemon_crashes"] >= 1
    assert cell.recovery["daemon_restarts"] == cell.recovery["daemon_crashes"]

    again = chaos.run_chaos_cell("crash", work_scale=0.05)
    assert again == cell  # bit-identical, fingerprints included


def test_chaos_cell_rejects_unknown_profile():
    with pytest.raises(ValueError):
        chaos.run_chaos_cell("earthquake", work_scale=0.05)
