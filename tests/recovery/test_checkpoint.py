"""Deterministic checkpoint/restore across the scheduler zoo x engines.

The central contract of :mod:`repro.recovery.checkpoint`:

* snapshots are *pure* — taking one leaves the run bit-identical to
  never snapshotting;
* restore-then-run is bit-identical to straight-through, for every
  registered scheduler under both event-queue engines;
* the state format is name-keyed, so fingerprints compare across
  independently built machines (the restore path depends on this).
"""

import json

import pytest

from repro.experiments.setups import Config, ScenarioBuilder
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.hypervisor.schedulers import available
from repro.recovery import RestoreMismatch, capture, fingerprint, restore, state_dict
from repro.units import MS

ALL_SCHEDULERS = available()
ENGINES = ("wheel", "heap", "macro")

SNAP_NS = 40 * MS
END_NS = 120 * MS


def _builder(scheduler, seed=7):
    return (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VSCALE)
        .with_scheduler(scheduler)
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_restore_then_run_is_bit_identical(scheduler, engine, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
    build = lambda: _builder(scheduler).build()

    straight = build()
    straight.start()
    straight.run(SNAP_NS)
    checkpoint = straight.machine.snapshot()

    restored = restore(checkpoint, build)

    straight.run(END_NS)
    restored.run(END_NS)
    assert fingerprint(state_dict(straight.machine)) == fingerprint(
        state_dict(restored.machine)
    )


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_snapshot_is_pure(scheduler):
    """A mid-run snapshot must not perturb the run (read-only contract:
    no queue pops, no RNG draws, no timer flushes)."""
    with_snapshot = _builder(scheduler).build()
    with_snapshot.start()
    with_snapshot.run(SNAP_NS)
    with_snapshot.machine.snapshot()
    with_snapshot.run(END_NS)

    without = _builder(scheduler).build()
    without.start()
    without.run(END_NS)
    assert fingerprint(state_dict(with_snapshot.machine)) == fingerprint(
        state_dict(without.machine)
    )


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_scheduler_state_dict_shape(scheduler):
    """Every registered scheduler exposes a JSON-able state_dict with the
    conformance keys the checkpoint format relies on."""
    scenario = _builder(scheduler).build()
    scenario.start()
    scenario.run(SNAP_NS)
    state = scenario.machine.scheduler.state_dict()
    assert set(state) >= {"name", "runqueues", "backlog", "extra"}
    assert state["name"] == scenario.machine.scheduler.name
    json.dumps(state)  # must serialize without a custom encoder


def test_checkpoint_json_roundtrip_and_fingerprint_stability():
    scenario = _builder(None).build()
    scenario.start()
    scenario.run(SNAP_NS)
    checkpoint = capture(scenario.machine)
    payload = json.loads(checkpoint.dumps())
    assert payload["at_ns"] == SNAP_NS
    assert payload["fingerprint"] == checkpoint.fingerprint
    # Fingerprint is a function of the state alone.
    assert fingerprint(payload["state"]) == checkpoint.fingerprint


def test_restore_rejects_wrong_factory():
    """Replaying the wrong scenario must raise, naming differing keys."""
    scenario = _builder(None, seed=7).build()
    scenario.start()
    scenario.run(SNAP_NS)
    checkpoint = scenario.machine.snapshot()
    with pytest.raises(RestoreMismatch):
        restore(checkpoint, lambda: _builder(None, seed=8).build())


def test_machine_snapshot_facade():
    """Machine.snapshot/restore delegate to the recovery layer."""
    build = lambda: _builder(None).build()
    scenario = build()
    scenario.start()
    scenario.run(SNAP_NS)
    checkpoint = scenario.machine.snapshot()
    assert checkpoint.at_ns == SNAP_NS
    restored = Machine.restore(checkpoint, build)
    assert restored.machine.sim.now == SNAP_NS
