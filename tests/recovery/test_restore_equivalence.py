"""Property test: restore(snapshot(t)) -> run is bit-identical for any t.

Hypothesis picks the snapshot instant and the build seed; the invariant
is the same every time — a twin rebuilt from the deterministic factory
and replayed to the checkpoint has the identical future.  This is the
generalized form of the per-scheduler golden checks in
``test_checkpoint.py``: not just at one hand-picked instant, but at
arbitrary (and deliberately awkward, e.g. mid-period) times.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.setups import Config, ScenarioBuilder
from repro.faults import generate_plan
from repro.recovery import fingerprint, restore, state_dict
from repro.units import MS, SEC


def _build(seed, plan=None):
    builder = (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VSCALE)
    )
    if plan is not None:
        builder.with_faults(plan)
    return builder.build()


@given(
    snap_ns=st.integers(min_value=1 * MS, max_value=90 * MS),
    seed=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=10, deadline=None)
def test_restore_equivalence_over_time_and_seed(snap_ns, seed):
    straight = _build(seed)
    straight.start()
    straight.run(snap_ns)
    checkpoint = straight.machine.snapshot()

    restored = restore(checkpoint, lambda: _build(seed))

    end_ns = snap_ns + 60 * MS
    straight.run(end_ns)
    restored.run(end_ns)
    assert fingerprint(state_dict(straight.machine)) == fingerprint(
        state_dict(restored.machine)
    )


@given(snap_ns=st.integers(min_value=100 * MS, max_value=900 * MS))
@settings(max_examples=5, deadline=None)
def test_restore_equivalence_under_faults(snap_ns):
    """The invariant holds with an active fault plan: the injector's
    consumed-event set and RNG positions are part of the state."""
    plan = generate_plan(
        23, 1 * SEC, daemon_crashes=1, vcpu_hangs=1, balancer_outages=1
    )
    straight = _build(5, plan)
    straight.start()
    straight.run(snap_ns)
    checkpoint = straight.machine.snapshot()

    restored = restore(checkpoint, lambda: _build(5, plan))

    end_ns = snap_ns + 200 * MS
    straight.run(end_ns)
    restored.run(end_ns)
    assert fingerprint(state_dict(straight.machine)) == fingerprint(
        state_dict(restored.machine)
    )
