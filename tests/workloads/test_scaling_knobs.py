"""Tests for the NPB problem-class and PARSEC input-size scaling knobs."""

import pytest

from repro.workloads.npb import NPB_PROFILES
from repro.workloads.parsec import PARSEC_PROFILES


class TestNPBClasses:
    def test_class_w_is_identity(self):
        base = NPB_PROFILES["cg"]
        assert base.with_class("W") == base

    def test_classes_grow_per_phase_compute(self):
        base = NPB_PROFILES["cg"]
        s = base.with_class("S")
        a = base.with_class("A")
        c = base.with_class("C")
        assert s.phase_ns < base.phase_ns < a.phase_ns < c.phase_ns
        assert a.phase_ns == base.phase_ns * 4
        # Synchronization structure unchanged.
        assert a.iterations == base.iterations
        assert a.barrier_every == base.barrier_every

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            NPB_PROFILES["cg"].with_class("D")

    def test_tiny_phase_floors(self):
        from dataclasses import replace

        tiny = replace(NPB_PROFILES["cg"], phase_ns=2000)
        assert tiny.with_class("S").phase_ns >= 1000


class TestParsecInputs:
    def test_simmedium_is_identity(self):
        base = PARSEC_PROFILES["bodytrack"]
        assert base.with_input("simmedium") == base

    def test_inputs_grow_work_units(self):
        base = PARSEC_PROFILES["bodytrack"]
        large = base.with_input("simlarge")
        assert large.iterations == base.iterations * 4
        assert large.phase_ns == base.phase_ns  # per-unit cost unchanged

    def test_pipeline_scales_items(self):
        base = PARSEC_PROFILES["dedup"]
        small = base.with_input("simsmall")
        assert small.items == round(base.items * 0.25)
        assert small.iterations == base.iterations

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            PARSEC_PROFILES["dedup"].with_input("huge")
