"""Tests for the Apache/httperf workload model."""

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.apache import ApacheConfig, ApacheServer, HttperfClient
from tests.conftest import StackBuilder


def build_server(pcpus=4, vcpus=4, config=None):
    builder = StackBuilder(pcpus=pcpus)
    kernel = builder.guest("web", vcpus=vcpus)
    seeds = SeedSequenceFactory(5)
    server = ApacheServer(kernel, config=config, rng=seeds.generator("apache"))
    client = HttperfClient(server, rng=seeds.generator("httperf"))
    return builder, kernel, server, client


def test_low_rate_all_requests_served():
    builder, kernel, server, client = build_server()
    client.start(rate_per_s=500, duration_ns=1 * SEC)
    machine = builder.start()
    machine.run(until=2 * SEC)
    result = client.collect()
    assert result.sent == 500
    assert result.replies == 500
    assert result.drops == 0


def test_latency_reservoirs_populated():
    builder, kernel, server, client = build_server()
    client.start(rate_per_s=300, duration_ns=1 * SEC)
    machine = builder.start()
    machine.run(until=2 * SEC)
    result = client.collect()
    assert len(result.connection_time) == 300
    assert len(result.response_time) == 300
    # Response includes the reply wire time, so it exceeds connection.
    assert result.response_time.mean() > result.connection_time.mean()


def test_reply_rate_capped_by_link():
    """16KB at 1Gbps: no more than ~7.6K replies/s can leave the wire."""
    builder, kernel, server, client = build_server(pcpus=8)
    client.start(rate_per_s=12_000, duration_ns=1 * SEC)
    machine = builder.start()
    machine.run(until=3 * SEC)
    result = client.collect()
    wire_cap = 1e9 / server.config.reply_wire_ns
    assert result.reply_rate <= wire_cap * 1.05


def test_backlog_overflow_drops():
    config = ApacheConfig(backlog=16, workers=2, service_ns=5 * MS)
    builder, kernel, server, client = build_server(config=config)
    client.start(rate_per_s=5_000, duration_ns=500 * MS)
    machine = builder.start()
    machine.run(until=2 * SEC)
    result = client.collect()
    assert result.drops > 0
    assert result.replies + result.drops <= result.sent


def test_requests_conserved():
    """Every sent request is eventually replied, dropped, or in flight."""
    builder, kernel, server, client = build_server()
    client.start(rate_per_s=2_000, duration_ns=1 * SEC)
    machine = builder.start()
    machine.run(until=4 * SEC)
    result = client.collect()
    assert result.replies + result.drops == result.sent


def test_collect_before_start_raises():
    builder, kernel, server, client = build_server()
    with pytest.raises(RuntimeError):
        client.collect()


def test_invalid_rate_rejected():
    builder, kernel, server, client = build_server()
    with pytest.raises(ValueError):
        client.start(rate_per_s=0, duration_ns=SEC)


def test_stop_terminates_workers():
    builder, kernel, server, client = build_server()
    client.start(rate_per_s=100, duration_ns=200 * MS)
    machine = builder.start()
    machine.run(until=1 * SEC)
    server.stop()
    machine.run(until=2 * SEC)
    workers = [t for t in kernel.threads if t.name.startswith("httpd.")]
    assert all(t.done for t in workers)
