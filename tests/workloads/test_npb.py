"""Tests for the NPB workload models."""

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE, SPINCOUNT_PASSIVE
from tests.conftest import StackBuilder


def run_app(name, spincount=SPINCOUNT_ACTIVE, nthreads=None, scale=0.05):
    from dataclasses import replace

    builder = StackBuilder(pcpus=4)
    kernel = builder.guest("vm", vcpus=4)
    seeds = SeedSequenceFactory(1)
    profile = NPB_PROFILES[name]
    profile = replace(profile, iterations=max(2, round(profile.iterations * scale)))
    app = NPBApp(kernel, profile, spincount, seeds.generator("npb"), nthreads=nthreads)
    app.launch()
    machine = builder.start()
    machine.run(until=120 * SEC)
    return app, kernel


def test_profiles_cover_the_suite():
    assert set(NPB_PROFILES) == {"bt", "cg", "dc", "ep", "ft", "is", "lu", "mg", "sp", "ua"}


def test_lu_has_custom_spin_and_sparse_barriers():
    assert NPB_PROFILES["lu"].custom_spin
    assert NPB_PROFILES["lu"].barrier_every > 1


@pytest.mark.parametrize("name", ["bt", "ep", "lu", "ua"])
def test_apps_run_to_completion(name):
    app, kernel = run_app(name)
    assert app.done
    assert app.duration_ns > 0


def test_lu_relay_completes_under_passive_policy(self=None):
    app, kernel = run_app("lu", spincount=SPINCOUNT_PASSIVE)
    assert app.done


def test_team_size_follows_nthreads():
    app, kernel = run_app("cg", nthreads=2)
    assert len(app.harness.threads) == 2


def test_team_defaults_to_provisioned_vcpus():
    app, kernel = run_app("cg")
    assert len(app.harness.threads) == 4


def test_serial_work_property():
    profile = NPB_PROFILES["bt"]
    assert profile.serial_work_ns == profile.iterations * profile.phase_ns


def test_duration_scales_with_team_packing():
    """2 threads on 4 vCPUs do the same per-thread work as 4 threads, so
    the app's total work halves; the makespan should not grow."""
    four, _ = run_app("ep", nthreads=4)
    two, _ = run_app("ep", nthreads=2)
    assert two.duration_ns <= four.duration_ns * 1.5
