"""Tests for the PARSEC workload models."""

from dataclasses import replace

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.parsec import PARSEC_PROFILES, ParsecApp
from tests.conftest import StackBuilder


def run_app(name, scale=0.05, nthreads=None):
    builder = StackBuilder(pcpus=4)
    kernel = builder.guest("vm", vcpus=4)
    seeds = SeedSequenceFactory(1)
    profile = PARSEC_PROFILES[name]
    if profile.kind == "pipeline":
        profile = replace(profile, items=max(8, round(profile.items * scale)))
    else:
        profile = replace(profile, iterations=max(1, round(profile.iterations * scale)))
    app = ParsecApp(kernel, profile, seeds.generator("parsec"), nthreads=nthreads)
    app.launch()
    machine = builder.start()
    machine.run(until=120 * SEC)
    return app, kernel


def test_profiles_cover_the_suite():
    assert len(PARSEC_PROFILES) == 13
    kinds = {p.kind for p in PARSEC_PROFILES.values()}
    assert kinds == {"barrier", "pipeline", "locks", "compute", "openmp"}


@pytest.mark.parametrize(
    "name", ["dedup", "streamcluster", "bodytrack", "swaptions", "freqmine", "ferret"]
)
def test_apps_run_to_completion(name):
    app, kernel = run_app(name)
    assert app.done
    assert app.duration_ns > 0


def test_pipeline_produces_and_consumes_all_items():
    app, kernel = run_app("dedup", scale=0.05)
    assert app.done
    # One producer + (nthreads-1) consumers were launched.
    assert len(app.harness.threads) == 4


def test_dedup_generates_cross_vcpu_ipis():
    """The paper's signature observation: dedup is IPI-heavy."""
    app, kernel = run_app("dedup", scale=0.2)
    total_ipis = sum(int(v.ipi_received) for v in kernel.domain.vcpus)
    assert total_ipis > 100


def test_swaptions_generates_almost_no_ipis():
    app, kernel = run_app("swaptions", scale=1.0)
    total_ipis = sum(int(v.ipi_received) for v in kernel.domain.vcpus)
    assert total_ipis < 50


def test_serial_sections_run_on_rank0_only():
    app, kernel = run_app("streamcluster", scale=0.05)
    execs = sorted(t.exec_ns for t in app.harness.threads)
    # Rank 0 does the serial portions: it must be the biggest consumer.
    rank0 = next(t for t in app.harness.threads if t.name.endswith(".t0"))
    assert rank0.exec_ns == max(execs)


def test_unknown_kind_rejected():
    builder = StackBuilder(pcpus=2)
    kernel = builder.guest("vm", vcpus=2)
    seeds = SeedSequenceFactory(1)
    bogus = replace(PARSEC_PROFILES["vips"], kind="quantum")
    app = ParsecApp(kernel, bogus, seeds.generator("x"))
    with pytest.raises(ValueError):
        app.launch()
