"""Tests for the desktop, kernel-build and pthread-composite workloads."""

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.base import AppHarness, phase_compute
from repro.workloads.desktop import PhotoSlideshow, SlideshowConfig
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.pthreads import BoundedQueue, MutexCondBarrier
from tests.conftest import StackBuilder


class TestPhaseCompute:
    def test_zero_imbalance_is_exact(self):
        import numpy as np

        action = phase_compute(np.random.default_rng(0), 5 * MS, 0.0)
        assert action.remaining_ns == 5 * MS

    def test_imbalance_jitters_but_floors(self):
        import numpy as np

        rng = np.random.default_rng(0)
        samples = [phase_compute(rng, 1 * MS, 0.5).remaining_ns for _ in range(200)]
        assert min(samples) >= 1000
        assert max(samples) > 1 * MS


class TestAppHarness:
    def test_double_launch_rejected(self, single_guest):
        builder, kernel = single_guest
        harness = AppHarness(kernel, "app")
        from repro.guest.actions import Compute

        harness.launch([lambda t: iter([Compute(MS)])])
        with pytest.raises(RuntimeError):
            harness.launch([lambda t: iter([Compute(MS)])])

    def test_duration_before_finish_raises(self, single_guest):
        builder, kernel = single_guest
        harness = AppHarness(kernel, "app")
        with pytest.raises(RuntimeError):
            harness.duration_ns


class TestSlideshow:
    def test_generates_bursty_consumption(self):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("desktop", vcpus=2)
        seeds = SeedSequenceFactory(3)
        show = PhotoSlideshow(kernel, seeds.generator("ss"))
        show.install()
        machine = builder.start()
        machine.run(until=10 * SEC)
        consumed = kernel.domain.total_run_ns(machine.sim.now)
        # Bursty, not idle and not fully saturated.
        assert 2 * SEC < consumed < 19 * SEC
        assert show.slides_shown >= 1

    def test_ui_thread_wakes_frequently(self):
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("desktop", vcpus=2)
        seeds = SeedSequenceFactory(3)
        config = SlideshowConfig(decode_ns=1 * MS, render_ns=1 * MS)
        show = PhotoSlideshow(kernel, seeds.generator("ss"), config)
        show.install()
        machine = builder.start()
        machine.run(until=2 * SEC)
        ui = next(t for t in kernel.threads if t.name == "slideshow.ui")
        # ~60Hz x 2s of ticks, each burning ~2-3ms.
        assert ui.exec_ns >= 100 * MS


class TestKernelBuild:
    def test_compiles_and_keeps_vcpus_busy(self):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("builder", vcpus=4)
        seeds = SeedSequenceFactory(3)
        build = KernelBuild(kernel, seeds.generator("kb"), jobs=8)
        build.install()
        machine = builder.start()
        machine.run(until=4 * SEC)
        assert build.compiled > 50
        for index in range(4):
            assert int(kernel.timer_interrupts[index]) > 3000


class TestBoundedQueue:
    def test_capacity_respected_and_fifo(self, single_guest):
        builder, kernel = single_guest
        queue = BoundedQueue(kernel, capacity=2)
        received = []

        def producer(thread):
            for item in range(6):
                yield from queue.put(thread, item)
                assert len(queue.items) <= 2
            yield from queue.close(thread)

        def consumer(thread):
            while True:
                item = yield from queue.get(thread)
                if item is None:
                    return
                received.append(item)
                from repro.guest.actions import Compute

                yield Compute(2 * MS)

        for name, gen in (("p", producer), ("c", consumer)):
            ph = []

            def deferred(ph=ph):
                yield from ph[0]

            thread = kernel.spawn(deferred(), name)
            ph.append(gen(thread))
        machine = builder.start()
        machine.run(until=5 * SEC)
        assert received == [0, 1, 2, 3, 4, 5]

    def test_close_releases_all_consumers(self, single_guest):
        builder, kernel = single_guest
        queue = BoundedQueue(kernel, capacity=4)
        finished = []

        def consumer(thread):
            item = yield from queue.get(thread)
            finished.append(item)

        def closer(thread):
            from repro.guest.actions import Compute

            yield Compute(5 * MS)
            yield from queue.close(thread)

        for index in range(3):
            ph = []

            def deferred(ph=ph):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"c{index}")
            ph.append(consumer(thread))
        ph = []

        def deferred2(ph=ph):
            yield from ph[0]

        thread = kernel.spawn(deferred2(), "closer")
        ph.append(closer(thread))
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert finished == [None, None, None]

    def test_zero_capacity_rejected(self, single_guest):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            BoundedQueue(kernel, capacity=0)


class TestMutexCondBarrier:
    def test_generation_semantics(self):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        barrier = MutexCondBarrier(kernel, parties=3)
        crossings = []

        def worker(tag, thread):
            from repro.guest.actions import Compute

            for phase in range(5):
                yield Compute((1 + tag) * MS)
                yield from barrier.wait(thread)
                crossings.append((phase, tag))

        for tag in range(3):
            ph = []

            def deferred(ph=ph):
                yield from ph[0]

            thread = kernel.spawn(deferred(), f"w{tag}")
            ph.append(worker(tag, thread))
        machine = builder.start()
        machine.run(until=10 * SEC)
        assert len(crossings) == 15
        phases = [p for p, _ in crossings]
        assert phases == sorted(phases)  # no thread skipped ahead

    def test_single_party_barrier_never_blocks(self, single_guest):
        builder, kernel = single_guest
        barrier = MutexCondBarrier(kernel, parties=1)

        def worker(thread):
            for _ in range(3):
                yield from barrier.wait(thread)

        ph = []

        def deferred():
            yield from ph[0]

        thread = kernel.spawn(deferred(), "solo")
        ph.append(worker(thread))
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert thread.done

    def test_invalid_parties_rejected(self, single_guest):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            MutexCondBarrier(kernel, parties=0)
