"""Tests for the OpenMP runtime model."""

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.base import AppHarness
from repro.workloads.openmp import (
    OpenMPRuntime,
    SPINCOUNT_ACTIVE,
    SPINCOUNT_DEFAULT,
    SPINCOUNT_PASSIVE,
    spincount_to_budget_ns,
)
from tests.conftest import StackBuilder


class TestSpincountConversion:
    def test_passive_is_zero(self):
        assert spincount_to_budget_ns(SPINCOUNT_PASSIVE) == 0

    def test_default_is_microseconds(self):
        budget = spincount_to_budget_ns(SPINCOUNT_DEFAULT)
        assert 100_000 <= budget <= 1_000_000

    def test_active_is_effectively_forever(self):
        assert spincount_to_budget_ns(SPINCOUNT_ACTIVE) >= 10**10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spincount_to_budget_ns(-1)


class TestParallelRegion:
    def _run_region(self, spincount, phases=6, team=4):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        seeds = SeedSequenceFactory(2)
        runtime = OpenMPRuntime(
            kernel, spincount=spincount, rng=seeds.generator("omp"), team_size=team
        )
        harness = AppHarness(kernel, "region")
        runtime.parallel_region(harness, [(2 * MS, 0.2)] * phases)
        machine = builder.start()
        machine.run(until=30 * SEC)
        return harness, runtime, kernel

    @pytest.mark.parametrize(
        "spincount", [SPINCOUNT_PASSIVE, SPINCOUNT_DEFAULT, SPINCOUNT_ACTIVE]
    )
    def test_region_completes_under_all_policies(self, spincount):
        harness, runtime, kernel = self._run_region(spincount)
        assert harness.done
        assert harness.duration_ns > 0

    def test_team_size_defaults_to_online_vcpus(self):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        kernel.cpu_freeze_mask.add(3)
        seeds = SeedSequenceFactory(2)
        runtime = OpenMPRuntime(kernel, SPINCOUNT_DEFAULT, seeds.generator("omp"))
        assert runtime.team_size == 3

    def test_all_threads_do_all_phases(self):
        harness, runtime, kernel = self._run_region(SPINCOUNT_PASSIVE, phases=4)
        # 4 threads x 4 phases x ~2ms each: total exec close to 16ms+sync.
        total = sum(t.exec_ns for t in harness.threads)
        assert total >= 4 * 4 * 1 * MS

    def test_dedicated_runtime_near_ideal(self):
        """On an idle host the region takes ~sum of phases (no delays)."""
        harness, runtime, kernel = self._run_region(SPINCOUNT_ACTIVE, phases=5)
        # 5 phases x 2ms mean, imbalance 0.2 -> expect < 2.5x ideal.
        assert harness.duration_ns <= 25 * MS
