"""Tests for the synthetic workload primitives."""

import numpy as np
import pytest

from repro.units import MS, SEC
from repro.workloads.base import AppHarness
from repro.workloads.synthetic import (
    ForkJoinSpec,
    LoadMix,
    cpu_hog,
    fork_join,
    on_off,
    poisson_worker,
)
from tests.conftest import StackBuilder


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestCpuHog:
    def test_burns_exact_total(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(cpu_hog(200 * MS), "hog")
        machine = builder.start()
        machine.run(until=1 * SEC)
        assert thread.done
        assert thread.exec_ns >= 200 * MS

    def test_validation(self):
        with pytest.raises(ValueError):
            next(cpu_hog(0))
        with pytest.raises(ValueError):
            next(cpu_hog(10, chunk_ns=0))


class TestOnOff:
    def test_duty_cycle(self, single_guest):
        builder, kernel = single_guest
        thread = kernel.spawn(
            on_off(kernel, busy_ns=100 * MS, idle_ns=100 * MS, cycles=5), "wave"
        )
        machine = builder.start()
        machine.run(until=2 * SEC)
        assert thread.done
        # 5 cycles x 100ms busy = ~500ms of CPU over ~1s of wall time.
        assert 450 * MS <= thread.exec_ns <= 600 * MS

    def test_validation(self, single_guest):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            next(on_off(kernel, 0, 1))


class TestPoissonWorker:
    def test_completes_all_jobs(self, single_guest, rng):
        builder, kernel = single_guest
        thread = kernel.spawn(
            poisson_worker(kernel, rng, rate_per_s=100, service_ns=1 * MS, jobs=30),
            "poisson",
        )
        machine = builder.start()
        machine.run(until=5 * SEC)
        assert thread.done
        assert thread.exec_ns >= 30 * MS

    def test_validation(self, single_guest, rng):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            next(poisson_worker(kernel, rng, 0, 1, 1))


class TestForkJoin:
    def test_team_completes(self, rng):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        harness = AppHarness(kernel, "fj")
        spec = ForkJoinSpec(threads=4, iterations=5, phase_ns=2 * MS)
        harness.launch(fork_join(kernel, rng, spec))
        machine = builder.start()
        machine.run(until=5 * SEC)
        assert harness.done

    def test_validation(self, rng, single_guest):
        _, kernel = single_guest
        with pytest.raises(ValueError):
            fork_join(kernel, rng, ForkJoinSpec(threads=0, iterations=1, phase_ns=1))


class TestLoadMix:
    def test_mixture_installs_and_runs(self, rng):
        builder = StackBuilder(pcpus=4)
        kernel = builder.guest("vm", vcpus=4)
        mix = (
            LoadMix(kernel, rng)
            .add_hogs(2, total_ns=300 * MS)
            .add_on_off(1, busy_ns=50 * MS, idle_ns=100 * MS)
            .add_poisson(rate_per_s=50, service_ns=2 * MS, jobs=10)
            .add_fork_join(ForkJoinSpec(threads=2, iterations=3, phase_ns=5 * MS))
        )
        assert len(mix.installed) == 2 + 1 + 1 + 2
        machine = builder.start()
        machine.run(until=3 * SEC)
        consumed = kernel.domain.total_run_ns(machine.sim.now)
        assert consumed > 500 * MS
