"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core.daemon import VScaleDaemon
from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.hypervisor.domain import VCPUState
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE
from tests.conftest import StackBuilder, busy


class TestAccountingInvariants:
    def test_vcpu_time_is_conserved(self):
        """run + wait + blocked + frozen == wall clock, for every vCPU."""
        scenario = ScenarioBuilder(seed=7).with_config(Config.VSCALE).build()
        scenario.start()
        scenario.run(3 * SEC)
        now = scenario.machine.sim.now
        for domain in scenario.machine.domains:
            for vcpu in domain.vcpus:
                vcpu.timer.flush(now)
                total = sum(vcpu.timer.totals.values())
                assert total == now, vcpu.name

    def test_pool_time_is_conserved(self):
        """Sum of domain run times + pool idle == pCPUs x wall clock."""
        scenario = ScenarioBuilder(seed=7).with_config(Config.VANILLA).build()
        scenario.start()
        scenario.run(3 * SEC)
        machine = scenario.machine
        now = machine.sim.now
        consumed = sum(d.total_run_ns(now) for d in machine.domains)
        idle = machine.pool_idle_ns()
        capacity = machine.config.pcpus * now
        assert consumed + idle == pytest.approx(capacity, rel=0.001)

    def test_no_thread_ever_rests_on_frozen_vcpu(self):
        scenario = ScenarioBuilder(seed=7).with_config(Config.VSCALE).build()
        scenario.start()
        kernel = scenario.worker_kernel
        for index in range(4):
            kernel.spawn(busy(30 * SEC), f"w{index}")
        for step in range(1, 40):
            scenario.run(step * 100 * MS)
            for frozen_index in kernel.cpu_freeze_mask:
                vcpu = kernel.domain.vcpus[frozen_index]
                if vcpu.state is VCPUState.FROZEN:
                    assert kernel.runqueues[frozen_index].load() == 0

    def test_determinism_same_seed_same_result(self):
        durations = []
        for _ in range(2):
            scenario = ScenarioBuilder(seed=11).with_config(Config.VSCALE).build()
            scenario.start()
            scenario.run(2 * SEC)
            seeds = SeedSequenceFactory(11)
            app = NPBApp(
                scenario.worker_kernel,
                NPB_PROFILES["cg"],
                SPINCOUNT_ACTIVE,
                seeds.generator("npb"),
            )
            from dataclasses import replace

            app.profile = app.profile  # no-op; explicit for readability
            app.launch()
            durations.append(run_until_done(scenario, app))
        assert durations[0] == durations[1]

    def test_different_seeds_differ(self):
        durations = []
        for seed in (11, 12):
            scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
            scenario.start()
            scenario.run(2 * SEC)
            seeds = SeedSequenceFactory(seed)
            app = NPBApp(
                scenario.worker_kernel,
                NPB_PROFILES["ep"],
                SPINCOUNT_ACTIVE,
                seeds.generator("npb"),
            )
            app.launch()
            durations.append(run_until_done(scenario, app))
        assert durations[0] != durations[1]


class TestCrossLayerBehaviour:
    def test_vscale_daemon_survives_long_idle(self):
        """The daemon keeps polling with an idle guest without leaking
        events or drifting."""
        builder = StackBuilder(pcpus=2)
        kernel = builder.guest("vm", vcpus=2)
        builder.machine.install_vscale()
        daemon = VScaleDaemon(kernel)
        daemon.install()
        machine = builder.start()
        machine.run(until=10 * SEC)
        # ~1000 polls at the 10ms period.
        assert daemon.decisions == pytest.approx(1000, rel=0.05)

    def test_frozen_vcpu_earns_nothing_siblings_gain(self):
        builder = StackBuilder(pcpus=2)
        vm = builder.guest("vm", vcpus=2)
        rival = builder.guest("rival", vcpus=2)
        for index in range(2):
            vm.spawn(busy(60 * SEC), f"v{index}")
            rival.spawn(busy(60 * SEC), f"r{index}")
        machine = builder.start()
        machine.run(until=1 * SEC)
        from repro.core.balancer import VScaleBalancer

        VScaleBalancer(vm).freeze(1)
        machine.run(until=machine.sim.now + 100 * MS)
        frozen = vm.domain.vcpus[1]
        assert frozen.state is VCPUState.FROZEN
        frozen.timer.flush(machine.sim.now)
        frozen_run_before = frozen.timer.total(VCPUState.RUNNING.value)
        start = machine.sim.now
        base = vm.domain.total_run_ns(start)
        machine.run(until=start + 2 * SEC)
        gained = vm.domain.total_run_ns(machine.sim.now) - base
        # Per-VM weight: the domain still deserves half the 2-pCPU pool —
        # one full pCPU, now concentrated on the single active vCPU.
        assert gained == pytest.approx(2 * SEC, rel=0.1)
        frozen.timer.flush(machine.sim.now)
        assert frozen.timer.total(VCPUState.RUNNING.value) == frozen_run_before

    def test_end_to_end_scenario_with_all_configs(self):
        """Every configuration runs the same tiny app successfully."""
        from repro.experiments.setups import ALL_CONFIGS

        for config in ALL_CONFIGS:
            scenario = ScenarioBuilder(seed=5).with_config(config).build()
            scenario.start()
            scenario.run(1 * SEC)
            seeds = SeedSequenceFactory(5)
            from dataclasses import replace

            profile = replace(NPB_PROFILES["is"], iterations=4)
            app = NPBApp(
                scenario.worker_kernel,
                profile,
                SPINCOUNT_ACTIVE,
                seeds.generator("npb"),
                kernel_lock=scenario.worker_kernel_lock,
            )
            app.launch()
            duration = run_until_done(scenario, app)
            assert duration > 0
