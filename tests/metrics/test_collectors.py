"""Tests for the measurement primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.collectors import (
    Counter,
    LatencyReservoir,
    RateMeter,
    StateTimer,
    summarize,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert int(counter) == 5


class TestStateTimer:
    def test_accumulates_per_state(self):
        timer = StateTimer("idle", now=0)
        timer.transition("busy", 100)
        timer.transition("idle", 250)
        timer.flush(400)
        assert timer.total("idle") == 100 + 150
        assert timer.total("busy") == 150

    def test_flush_is_idempotent(self):
        timer = StateTimer("a", now=0)
        timer.flush(10)
        timer.flush(10)
        assert timer.total("a") == 10

    def test_time_backwards_raises(self):
        timer = StateTimer("a", now=100)
        with pytest.raises(ValueError):
            timer.transition("b", 50)

    def test_repeated_same_state_transitions(self):
        timer = StateTimer("a", now=0)
        timer.transition("a", 5)
        timer.transition("a", 9)
        assert timer.total("a") == 9

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(1, 100)), max_size=30))
    def test_totals_sum_to_elapsed(self, steps):
        """Property: state totals always sum to total observed time."""
        timer = StateTimer("a", now=0)
        now = 0
        for state, delta in steps:
            now += delta
            timer.transition(state, now)
        timer.flush(now)
        assert sum(timer.totals.values()) == now


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(start=0)
        for t in (100_000_000, 200_000_000, 300_000_000):
            meter.record(t)
        assert meter.per_second(1_000_000_000) == pytest.approx(3.0)

    def test_reset(self):
        meter = RateMeter(start=0)
        meter.record(10, 5)
        meter.reset(1_000)
        assert meter.count == 0
        assert meter.start == 1_000


class TestLatencyReservoir:
    def test_percentiles_nearest_rank(self):
        reservoir = LatencyReservoir()
        for value in range(1, 101):
            reservoir.record(value)
        assert reservoir.percentile(0.50) == 50
        assert reservoir.percentile(0.99) == 99
        assert reservoir.percentile(1.0) == 100
        assert reservoir.percentile(0.0) == 1

    def test_empty_raises(self):
        reservoir = LatencyReservoir()
        with pytest.raises(ValueError):
            reservoir.percentile(0.5)
        with pytest.raises(ValueError):
            reservoir.mean()

    def test_cdf_monotone(self):
        reservoir = LatencyReservoir()
        for value in (5, 1, 9, 3):
            reservoir.record(value)
        cdf = reservoir.cdf()
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200))
    def test_summary_bounds(self, values):
        """Property: min <= p50 <= p99 <= max, and mean within [min, max]."""
        reservoir = LatencyReservoir()
        for value in values:
            reservoir.record(value)
        summary = summarize(reservoir)
        assert summary.minimum <= summary.p50 <= summary.p99 <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.count == len(values)
