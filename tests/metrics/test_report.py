"""Tests for table/series rendering."""

import pytest

from repro.metrics.report import Table, format_series


def test_table_renders_header_and_rows():
    table = Table("Demo", ["name", "value"])
    table.add_row("alpha", 1.5)
    table.add_row("beta", 2)
    text = table.render()
    assert "Demo" in text
    assert "alpha" in text
    assert "1.500" in text
    assert "beta" in text


def test_table_rejects_wrong_arity():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_table_alignment_is_consistent():
    table = Table("T", ["col"])
    table.add_row("short")
    table.add_row("a-much-longer-cell")
    lines = table.render().splitlines()
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_format_series():
    text = format_series("throughput", [(1, 10.0), (2, 20.0)])
    assert "throughput" in text
    assert "1 -> 10.000" in text
    assert "2 -> 20.000" in text
