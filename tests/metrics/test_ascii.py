"""Tests for the ASCII chart renderers."""

import pytest

from repro.metrics.ascii import cdf_plot, hbar_chart, step_trace


class TestHBar:
    def test_scales_to_peak(self):
        text = hbar_chart("t", [("a", 1.0), ("b", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_explicit_max_value(self):
        text = hbar_chart("t", [("a", 1.0)], width=10, max_value=2.0)
        assert text.splitlines()[1].count("#") == 5

    def test_labels_aligned(self):
        text = hbar_chart("t", [("long-name", 1.0), ("x", 1.0)], width=8)
        lines = text.splitlines()[1:]
        positions = {line.index("#") for line in lines}
        assert len(positions) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            hbar_chart("t", [])
        with pytest.raises(ValueError):
            hbar_chart("t", [("a", 1.0)], width=2)

    def test_zero_values_do_not_crash(self):
        text = hbar_chart("t", [("a", 0.0), ("b", 0.0)])
        assert "0.00" in text


class TestCdfPlot:
    def test_shape_and_axes(self):
        points = [(float(v), (v + 1) / 10) for v in range(10)]
        text = cdf_plot("latency CDF", points, width=20, height=5)
        lines = text.splitlines()
        assert lines[0] == "latency CDF"
        assert "1.0" in lines[1]
        assert "0.0" in lines[5]
        assert text.count("*") >= 5

    def test_monotone_series_fills_corners(self):
        points = [(0.0, 0.1), (10.0, 1.0)]
        text = cdf_plot("t", points, width=10, height=4)
        rows = text.splitlines()[1:5]
        assert rows[0].rstrip().endswith("*")  # fraction 1.0 at max x
        # The low-fraction point lands in the lower half, left edge.
        lower_half = "\n".join(rows[2:])
        assert "*" in lower_half

    def test_validation(self):
        with pytest.raises(ValueError):
            cdf_plot("t", [])
        with pytest.raises(ValueError):
            cdf_plot("t", [(0, 0.5)], width=2)


class TestStepTrace:
    def test_levels_render_rows(self):
        points = [(0.0, 4), (1.0, 2), (2.0, 4)]
        text = step_trace("active vCPUs", points, width=30)
        lines = text.splitlines()
        assert lines[0] == "active vCPUs"
        assert any(line.strip().startswith("4") for line in lines)
        assert any(line.strip().startswith("2") for line in lines)
        four_row = next(line for line in lines if line.strip().startswith("4"))
        two_row = next(line for line in lines if line.strip().startswith("2"))
        assert "=" in four_row and "=" in two_row

    def test_explicit_levels(self):
        points = [(0.0, 1)]
        text = step_trace("t", points, levels=[1, 2, 3])
        assert sum(1 for line in text.splitlines() if "|" in line) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            step_trace("t", [])
