"""Tests for windowed time-series collectors."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.timeseries import SteppedSeries, WindowedRate
from repro.units import MS, SEC


class TestWindowedRate:
    def test_bucketing(self):
        series = WindowedRate(window_ns=1 * SEC)
        series.record(100 * MS)
        series.record(900 * MS)
        series.record(1_500 * MS, n=3)
        assert series.bucket(0) == 2
        assert series.bucket(1) == 3
        assert series.bucket(2) == 0

    def test_series_includes_gaps(self):
        series = WindowedRate(window_ns=1 * SEC)
        series.record(0)
        series.record(2_500 * MS)
        points = series.series()
        assert len(points) == 3
        assert points[1][1] == 0.0

    def test_rates_are_per_second(self):
        series = WindowedRate(window_ns=500 * MS)
        series.record(100 * MS, n=5)
        assert series.series()[0][1] == pytest.approx(10.0)

    def test_peak_rate(self):
        series = WindowedRate(window_ns=1 * SEC)
        assert series.peak_rate() == 0.0
        series.record(0, n=7)
        assert series.peak_rate() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(0)
        series = WindowedRate(SEC, start_ns=SEC)
        with pytest.raises(ValueError):
            series.record(0)


class TestSteppedSeries:
    def test_value_at(self):
        series = SteppedSeries(2, start_ns=0)
        series.record(100, 4)
        series.record(300, 3)
        assert series.value_at(50) == 2
        assert series.value_at(100) == 4
        assert series.value_at(299) == 4
        assert series.value_at(1000) == 3

    def test_duplicate_values_collapse(self):
        series = SteppedSeries(2)
        series.record(100, 2)
        assert len(series.change_points()) == 1

    def test_time_average(self):
        series = SteppedSeries(2, start_ns=0)
        series.record(500, 4)
        # [0,500)=2, [500,1000)=4 -> mean 3.
        assert series.time_average(1000) == pytest.approx(3.0)

    def test_time_going_backwards_rejected(self):
        series = SteppedSeries(1, start_ns=100)
        with pytest.raises(ValueError):
            series.record(50, 2)
        with pytest.raises(ValueError):
            series.value_at(50)
        with pytest.raises(ValueError):
            series.time_average(100)

    def test_distinct_values(self):
        series = SteppedSeries(2)
        series.record(10, 3)
        series.record(20, 2)
        assert series.distinct_values() == {2, 3}

    @given(
        st.lists(
            st.tuples(st.integers(1, 1000), st.integers(0, 8)),
            min_size=1,
            max_size=30,
        )
    )
    def test_time_average_bounded_by_extremes(self, deltas):
        """Property: the time average lies within [min, max] of values."""
        series = SteppedSeries(4, start_ns=0)
        now = 0
        values = [4]
        for delta, value in deltas:
            now += delta
            series.record(now, value)
            values.append(value)
        average = series.time_average(now + 100)
        assert min(values) <= average <= max(values)
