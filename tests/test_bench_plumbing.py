"""Tests for the benchmark suite's shared plumbing (no long runs)."""

import importlib.util
import os
import pathlib
import sys


def _load_bench_conftest():
    path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_work_scale_defaults_to_one(monkeypatch):
    module = _load_bench_conftest()
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert module.work_scale() == 1.0


def test_work_scale_reads_env(monkeypatch):
    module = _load_bench_conftest()
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    assert module.work_scale() == 0.25


def test_every_paper_artifact_has_a_bench():
    bench_dir = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
    names = {p.stem for p in bench_dir.glob("test_*.py")}
    expected = {
        "test_table1_channel",
        "test_table2_quiescence",
        "test_table3_freeze",
        "test_fig4_libxl",
        "test_fig5_hotplug",
        "test_fig6_npb_4vcpu",
        "test_fig7_npb_8vcpu",
        "test_fig8_trace",
        "test_fig9_waiting",
        "test_fig10_npb_ipis",
        "test_fig11_parsec_4vcpu",
        "test_fig12_parsec_8vcpu",
        "test_fig13_parsec_ipis",
        "test_fig14_apache",
    }
    assert expected <= names, expected - names
