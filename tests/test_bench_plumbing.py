"""Tests for the benchmark suite's shared plumbing (no long runs)."""

import importlib.util
import os
import pathlib
import sys


def _load_bench_conftest():
    path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_work_scale_defaults_to_one(monkeypatch):
    module = _load_bench_conftest()
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert module.work_scale() == 1.0


def test_work_scale_reads_env(monkeypatch):
    module = _load_bench_conftest()
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    assert module.work_scale() == 0.25


def test_every_paper_artifact_has_a_bench():
    bench_dir = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
    names = {p.stem for p in bench_dir.glob("test_*.py")}
    expected = {
        "test_table1_channel",
        "test_table2_quiescence",
        "test_table3_freeze",
        "test_fig4_libxl",
        "test_fig5_hotplug",
        "test_fig6_npb_4vcpu",
        "test_fig7_npb_8vcpu",
        "test_fig8_trace",
        "test_fig9_waiting",
        "test_fig10_npb_ipis",
        "test_fig11_parsec_4vcpu",
        "test_fig12_parsec_8vcpu",
        "test_fig13_parsec_ipis",
        "test_fig14_apache",
    }
    assert expected <= names, expected - names


# ----------------------------------------------------------------------
# perf_bench.py harness plumbing (no timed runs)
# ----------------------------------------------------------------------

def _load_perf_bench():
    path = pathlib.Path(__file__).resolve().parents[1] / "scripts" / "perf_bench.py"
    spec = importlib.util.spec_from_file_location("perf_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_perf_bench_lineage_migrates_schema1_and_keeps_seed(tmp_path):
    import json

    module = _load_perf_bench()
    output = tmp_path / "BENCH.json"
    # Schema-1 file: "before" was the seed measurement of the original tree.
    output.write_text(json.dumps({
        "before": {"a": {"seconds": 4.0}},
        "after": {"a": {"seconds": 2.0}},
        "quick": {"a": {"seconds": 0.5}},
    }))

    payload: dict = {}
    module.apply_lineage(payload, {"a": {"seconds": 1.0}}, output, "pr-n", None)
    assert payload["seed_baseline"]["a"]["seconds"] == 4.0
    assert payload["before"]["a"]["seconds"] == 2.0  # previous after
    assert payload["after"]["a"]["seconds"] == 1.0
    assert payload["speedup"]["a"] == 4.0  # always vs seed, not vs before
    assert payload["quick"]["a"]["seconds"] == 0.5  # reference column survives
    assert [run["label"] for run in payload["history"]] == ["pr-n"]

    # A second recorded run must never overwrite the seed baseline.
    output.write_text(json.dumps(payload))
    payload2: dict = {}
    module.apply_lineage(payload2, {"a": {"seconds": 0.5}}, output, None, None)
    assert payload2["seed_baseline"]["a"]["seconds"] == 4.0
    assert payload2["before"]["a"]["seconds"] == 1.0
    assert payload2["speedup"]["a"] == 8.0
    assert len(payload2["history"]) == 2


def test_perf_bench_merge_baseline_file_seeds_lineage(tmp_path):
    import json

    module = _load_perf_bench()
    output = tmp_path / "BENCH.json"  # does not exist: first ever run
    baseline = tmp_path / "before.json"
    baseline.write_text(json.dumps({"benches": {"a": {"seconds": 2.0}}}))
    payload: dict = {}
    module.apply_lineage(
        payload, {"a": {"seconds": 1.0}}, output, None, baseline
    )
    assert payload["seed_baseline"]["a"]["seconds"] == 2.0
    assert payload["before"]["a"]["seconds"] == 2.0
    assert payload["speedup"]["a"] == 2.0


def test_perf_bench_regression_gate(tmp_path, capsys):
    import json

    module = _load_perf_bench()
    reference = tmp_path / "ref.json"
    reference.write_text(json.dumps({"after": {"a": {"seconds": 1.0}}}))
    # 20% slower: within the 30% budget.
    assert module.check_regressions(
        {"a": {"seconds": 1.2}}, reference, 0.30, quick=False
    ) == 0
    # 50% slower: fails.
    assert module.check_regressions(
        {"a": {"seconds": 1.5}}, reference, 0.30, quick=False
    ) == 1


def test_perf_bench_quick_gate_uses_quick_column(tmp_path):
    import json

    module = _load_perf_bench()
    reference = tmp_path / "ref.json"
    # Full numbers would flag this quick run; the quick column must win.
    reference.write_text(json.dumps(
        {"after": {"a": {"seconds": 0.01}}, "quick": {"a": {"seconds": 1.0}}}
    ))
    assert module.check_regressions(
        {"a": {"seconds": 1.1}}, reference, 0.30, quick=True
    ) == 0
    # And a missing quick column is a no-op, not a spurious failure.
    reference.write_text(json.dumps({"after": {"a": {"seconds": 0.01}}}))
    assert module.check_regressions(
        {"a": {"seconds": 1.1}}, reference, 0.30, quick=True
    ) == 0


def test_perf_bench_modules_load_and_declare_benches():
    module = _load_perf_bench()
    engine = module._load("engine_bench")
    for name in ("tick_chains", "deep_queue", "cancel_churn", "peek_monitor"):
        assert callable(getattr(engine, name))
    e2e = module._load("e2e_bench")
    for name in ("fig6_npb_cell", "faults_cell", "decentralized_50vm",
                 "fig4_dom0_sweep"):
        assert callable(getattr(e2e, name))
    assert callable(module._load("rng_bench").fault_decisions)
    assert callable(module._load("memory_bench").object_sizes)


def test_memory_census_shows_slotted_objects_are_small():
    module = _load_perf_bench()
    sizes = module._load("memory_bench").object_sizes(count=2_000)
    # Losing __slots__ adds a ~104-byte __dict__ per object; the ceilings
    # sit between the slotted size (thread includes its behavior generator
    # and name string) and the unslotted one, so they catch the regression
    # without being allocator-sensitive.
    assert sizes["thread_bytes"] < 700
    assert sizes["runqueue_bytes"] < 250
    assert sizes["irq_bytes"] < 220
    assert sizes["scheduled_event_bytes"] < 290
