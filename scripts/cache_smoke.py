#!/usr/bin/env python
"""Cold-vs-warm cache smoke check for the experiment runner.

Runs ``repro.experiments.runner --all`` twice against a fresh cache
directory and asserts the contract the parallel executor guarantees:

* the second (warm) run re-executes **zero** cells — every cell is a
  cache hit, per the runner's telemetry counters on stderr;
* the warm run is at least ``--min-speedup`` times faster;
* both runs produce byte-identical report files (determinism).

Used by the CI smoke workflow (``.github/workflows/smoke.yml``)::

    python scripts/cache_smoke.py --scale 0.05 --jobs 2
"""

from __future__ import annotations

import argparse
import filecmp
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SUMMARY = re.compile(r"\[telemetry\] cells=(\d+) hits=(\d+) misses=(\d+)")


def run_once(scale: float, jobs: int, cache_dir: Path, out_dir: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments.runner",
        "--all",
        "--scale",
        str(scale),
        "--jobs",
        str(jobs),
        "--cache-dir",
        str(cache_dir),
        "--out",
        str(out_dir),
    ]
    started = time.monotonic()
    proc = subprocess.run(
        cmd, cwd=REPO, env=env, capture_output=True, text=True
    )
    elapsed = time.monotonic() - started
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:])
        sys.stderr.write(proc.stderr[-4000:])
        raise SystemExit(f"runner failed (rc={proc.returncode})")
    match = SUMMARY.search(proc.stderr)
    if not match:
        raise SystemExit("no [telemetry] summary found on runner stderr")
    cells, hits, misses = map(int, match.groups())
    return elapsed, cells, hits, misses


def compare_outputs(first: Path, second: Path) -> list[str]:
    """Return the report files that differ (telemetry.json is timing)."""
    names = sorted(
        p.name
        for p in first.iterdir()
        if p.suffix in {".txt", ".json"} and p.name != "telemetry.json"
    )
    _, mismatch, errors = filecmp.cmpfiles(first, second, names, shallow=False)
    return mismatch + errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp_path = Path(tmp)
        cache = tmp_path / "cache"
        out_cold, out_warm = tmp_path / "cold", tmp_path / "warm"

        cold_s, cells, hits, misses = run_once(args.scale, args.jobs, cache, out_cold)
        print(f"cold: {cold_s:.1f}s cells={cells} hits={hits} misses={misses}")
        if misses == 0:
            raise SystemExit("cold run hit the cache; cache dir was not fresh")

        warm_s, cells2, hits2, misses2 = run_once(
            args.scale, args.jobs, cache, out_warm
        )
        print(f"warm: {warm_s:.1f}s cells={cells2} hits={hits2} misses={misses2}")

        failures = []
        if misses2 != 0:
            failures.append(f"warm run re-executed {misses2} cells (expected 0)")
        if cells2 != cells:
            failures.append(f"cell count changed: {cells} -> {cells2}")
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"speedup: {speedup:.1f}x (required >= {args.min_speedup:.1f}x)")
        if speedup < args.min_speedup:
            failures.append(
                f"warm run only {speedup:.1f}x faster (need {args.min_speedup}x)"
            )
        diffs = compare_outputs(out_cold, out_warm)
        if diffs:
            failures.append(f"report files differ between runs: {diffs}")

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("cache smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
