#!/usr/bin/env python
"""Profile one benchmark cell: hot-function table + collapsed stacks.

Two passes over the same cell from ``benchmarks/perf/``:

1. a ``cProfile`` pass, printed as a cumulative-time-sorted table of the
   hottest functions (deterministic, exact call counts);
2. an optional wall-clock sampling pass (``--collapsed``), written in
   the semicolon-separated *collapsed stack* format that flamegraph
   tooling consumes directly (``flamegraph.pl``, speedscope, inferno).

Usage::

    python scripts/profile_cell.py e2e.fig6_npb_cell
    python scripts/profile_cell.py e2e.decentralized_50vm --quick \
        --top 40 --collapsed /tmp/decent.folded
    REPRO_SIM_ENGINE=macro python scripts/profile_cell.py e2e.fig6_npb_cell

Cells are named ``module.function`` exactly as in ``BENCH_sim.json``
(``e2e.fig6_npb_cell`` is ``benchmarks/perf/e2e_bench.py::fig6_npb_cell``);
``--list`` enumerates everything available.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib.util
import io
import pstats
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"

if importlib.util.find_spec("repro") is None:  # uninstalled checkout
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Bench modules whose public functions are profile targets, keyed by
#: the prefix used in BENCH_sim.json bench names.
MODULES = {
    "engine": "engine_bench",
    "rng": "rng_bench",
    "e2e": "e2e_bench",
    "tracelog": "tracelog_bench",
}


def _load(module_name: str):
    path = PERF_DIR / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(f"perf_{module_name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cells() -> dict[str, object]:
    cells: dict[str, object] = {}
    for prefix, module_name in MODULES.items():
        module = _load(module_name)
        for name in dir(module):
            if name.startswith("_"):
                continue
            fn = getattr(module, name)
            if callable(fn) and getattr(fn, "__module__", "").startswith("perf_"):
                cells[f"{prefix}.{name}"] = fn
    return cells


def _resolve_kwargs(fn, quick: bool) -> dict:
    """Pass ``quick=`` only to cells that take it (engine/rng cells size
    themselves by event counts instead)."""
    import inspect

    params = inspect.signature(fn).parameters
    return {"quick": quick} if "quick" in params else {}


def _profile_table(fn, kwargs: dict, top: int, sort: str) -> None:
    profiler = cProfile.Profile()
    profiler.enable()
    fn(**kwargs)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    print(stream.getvalue())


def _sample_collapsed(fn, kwargs: dict, out: Path, hz: int) -> None:
    """Wall-clock sampler: SIGPROF fires ``hz`` times a second and folds
    the current Python stack into a collapsed-stack counter."""
    import signal

    counts: Counter[str] = Counter()
    interval = 1.0 / hz

    def _sample(signum, frame):
        frames = []
        while frame is not None:
            code = frame.f_code
            frames.append(f"{Path(code.co_filename).name}:{code.co_name}")
            frame = frame.f_back
        counts[";".join(reversed(frames))] += 1

    previous = signal.signal(signal.SIGPROF, _sample)
    signal.setitimer(signal.ITIMER_PROF, interval, interval)
    try:
        fn(**kwargs)
    finally:
        signal.setitimer(signal.ITIMER_PROF, 0, 0)
        signal.signal(signal.SIGPROF, previous)

    lines = [f"{stack} {count}" for stack, count in counts.most_common()]
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {len(counts)} collapsed stacks ({sum(counts.values())} "
          f"samples @ {hz} Hz) to {out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cell", nargs="?", help="cell name, e.g. e2e.fig6_npb_cell")
    parser.add_argument("--list", action="store_true", help="list available cells")
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--top", type=int, default=25, help="table rows (default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "calls"],
                        help="table sort key (default cumulative)")
    parser.add_argument("--collapsed", type=Path, metavar="FILE",
                        help="also write collapsed stacks for flamegraph tools")
    parser.add_argument("--hz", type=int, default=997,
                        help="sampling rate for --collapsed (default 997)")
    args = parser.parse_args(argv)

    cells = _cells()
    if args.list or not args.cell:
        for name in sorted(cells):
            print(name)
        return 0
    if args.cell not in cells:
        print(f"error: unknown cell {args.cell!r} (try --list)", file=sys.stderr)
        return 2
    fn = cells[args.cell]
    kwargs = _resolve_kwargs(fn, args.quick)

    fn(**kwargs)  # warm-up: imports and first-touch allocations
    _profile_table(fn, kwargs, args.top, args.sort)
    if args.collapsed:
        _sample_collapsed(fn, kwargs, args.collapsed, args.hz)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
