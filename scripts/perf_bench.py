#!/usr/bin/env python
"""Time the simulation core and representative experiment cells.

Runs the ``benchmarks/perf/`` suite — engine-throughput microbenchmarks,
RNG-path microbenchmarks, end-to-end experiment cells, and a per-object
memory census — and writes the results to ``BENCH_sim.json`` so the
repo's performance trajectory is tracked commit over commit.

Usage::

    python scripts/perf_bench.py                                # full run
    python scripts/perf_bench.py --quick                        # CI smoke
    python scripts/perf_bench.py \
        --check-against BENCH_sim.json --max-regression 0.30    # gate

An installed ``repro`` (``pip install -e .``) is used when present;
otherwise the checkout's own ``src/`` is put on ``sys.path``.

The bench modules use only public APIs, so the same script can time an
older revision of the simulator: point ``PYTHONPATH`` at that revision's
``src`` (e.g. a ``git worktree`` of the previous commit) and pass
``--label before``.  ``--merge-baseline before.json`` then folds such a
run into the output as the ``before`` column, with speedups computed.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"

if importlib.util.find_spec("repro") is None:  # uninstalled checkout
    sys.path.insert(0, str(REPO_ROOT / "src"))


def _load(module_name: str):
    path = PERF_DIR / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(f"perf_{module_name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_json(path: Path, role: str) -> dict:
    """Read a results/reference JSON; exit with a one-line error if it is
    missing or corrupt instead of dumping a traceback."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: {role} file not found: {path}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SystemExit(f"error: {role} file {path} is corrupt: {exc}")


def _time_best_of(fn, args: dict, repeats: int) -> tuple[float, float]:
    """(best seconds, items) over ``repeats`` runs, after one warm-up."""
    fn(**args)  # warm-up: imports, first-touch allocations
    best = float("inf")
    items = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(**args)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if isinstance(result, (int, float)):
            items = float(result)
    return best, items


def run_suite(quick: bool) -> dict:
    engine = _load("engine_bench")
    rng = _load("rng_bench")
    e2e = _load("e2e_bench")
    tracelog = _load("tracelog_bench")
    memory = _load("memory_bench")

    scale = 4 if quick else 1
    # Best-of-3 even on the quick lane: the smallest e2e cells run in a
    # few ms, where a single sample can swing >30% on a shared runner and
    # trip the regression gate on noise alone.
    repeats = 3
    benches = [
        # (name, fn, kwargs, items are events -> report events/s)
        ("engine.tick_chains", engine.tick_chains, {"events": 200_000 // scale}),
        ("engine.deep_queue", engine.deep_queue, {"events": 30_000 // scale}),
        ("engine.cancel_churn", engine.cancel_churn, {"events": 40_000 // scale}),
        ("engine.peek_monitor", engine.peek_monitor, {"events": 20_000 // scale}),
        ("rng.fault_decisions", rng.fault_decisions, {"calls": 100_000 // scale}),
        ("rng.cost_jitter", rng.cost_jitter, {"calls": 100_000 // scale}),
        ("e2e.fig6_npb_cell", e2e.fig6_npb_cell, {"quick": quick}),
        ("e2e.faults_cell", e2e.faults_cell, {"quick": quick}),
        ("e2e.decentralized_50vm", e2e.decentralized_50vm, {"quick": quick}),
        ("e2e.fig4_dom0_sweep", e2e.fig4_dom0_sweep, {"quick": quick}),
        ("tracelog.fig6_traced_cell", tracelog.fig6_traced_cell, {"quick": quick}),
    ]

    results: dict[str, dict] = {}
    for name, fn, kwargs in benches:
        seconds, items = _time_best_of(fn, kwargs, repeats)
        entry = {"seconds": round(seconds, 6)}
        if items and name.split(".")[0] in ("engine", "rng"):
            entry["per_second"] = round(items / seconds)
        results[name] = entry
        print(f"  {name:<28} {seconds * 1e3:9.2f} ms"
              + (f"  ({entry['per_second']:,}/s)" if "per_second" in entry else ""))

    # Tracing overhead: interleaved traced/untraced pairs of the same
    # cell, best-of each, so machine noise cancels instead of showing
    # up as tracing cost.
    pair = tracelog.trace_overhead(quick)
    results["tracelog.fig6_traced_cell"]["overhead"] = pair["overhead"]
    print(f"  {'tracelog overhead':<28} {pair['overhead']:8.1%} vs untraced fig6 "
          f"({pair['untraced_s'] * 1e3:.0f} -> {pair['traced_s'] * 1e3:.0f} ms)")

    print("  memory census ...")
    results["memory.objects"] = {
        key: round(value, 1)
        for key, value in memory.object_sizes(5_000 if quick else 20_000).items()
    }
    return results


def check_trace_overhead(current: dict, limit: float) -> int:
    """Gate the tracelog bench's overhead ratio (<10% by default)."""
    entry = current.get("tracelog.fig6_traced_cell") or {}
    overhead = entry.get("overhead")
    if overhead is None:
        return 0
    status = "OK" if overhead <= limit else "FAIL"
    print(f"  tracing overhead {overhead:.1%} (limit {limit:.0%})  {status}")
    if overhead > limit:
        print(f"FAIL: tracing overhead {overhead:.1%} exceeds {limit:.0%} "
              "on the fig6 cell")
        return 1
    return 0


def check_regressions(current: dict, reference_path: Path, limit: float,
                      quick: bool) -> int:
    reference = _load_json(reference_path, "reference")
    # Compare like-for-like: quick runs use smaller workloads, so they gate
    # against the committed "quick" column; full runs against "after" (a
    # merged file) or "benches" (a flat run).
    if quick:
        ref_benches = reference.get("quick") or {}
        if not ref_benches:
            print(f"no 'quick' reference column in {reference_path}; "
                  "nothing to gate against")
            return 0
    else:
        ref_benches = reference.get("after") or reference.get("benches") or {}
    failures = []
    for name, entry in current.items():
        if "seconds" not in entry or name not in ref_benches:
            continue
        ref_seconds = ref_benches[name].get("seconds")
        if not ref_seconds:
            continue
        ratio = entry["seconds"] / ref_seconds
        status = "OK" if ratio <= 1.0 + limit else "REGRESSION"
        print(f"  {name:<28} {ratio:5.2f}x vs reference  {status}")
        if ratio > 1.0 + limit:
            failures.append((name, ratio))
    if failures:
        print(f"FAIL: {len(failures)} bench(es) regressed more than "
              f"{limit:.0%}: " + ", ".join(f"{n} ({r:.2f}x)" for n, r in failures))
        return 1
    print("perf gate passed")
    return 0


def _speedups(baseline: dict, after: dict) -> dict:
    speedup = {}
    for name, entry in after.items():
        if "seconds" in entry and name in baseline and "seconds" in baseline.get(name, {}):
            speedup[name] = round(baseline[name]["seconds"] / entry["seconds"], 2)
    return speedup


def apply_lineage(payload: dict, after: dict, output: Path,
                  label: str | None, baseline_path: Path | None) -> None:
    """Fold a full run into the results file without losing its lineage.

    ``seed_baseline`` is written once — from an explicit
    ``--merge-baseline`` file, or inherited from the existing file (a
    schema-1 file's ``before`` column was the seed measurement) — and
    never overwritten afterwards, so the ``speedup`` column always reads
    against the original seed, not against last week's already-optimized
    run.  The previous ``after`` becomes ``before`` (the run this commit
    improves on), and every recorded full run is appended to ``history``
    so ``--history`` can print the whole trajectory.
    """
    existing: dict = {}
    if output.exists():
        existing = _load_json(output, "results")
    seed = existing.get("seed_baseline") or existing.get("before")
    if baseline_path is not None:
        baseline = _load_json(baseline_path, "baseline")
        if "benches" not in baseline:
            raise SystemExit(
                f"error: baseline file {baseline_path} has no 'benches' column"
            )
        if seed is None:
            seed = baseline["benches"]
        payload["before"] = baseline["benches"]
    elif existing.get("after"):
        payload["before"] = existing["after"]
    if seed is None:
        seed = after  # first ever run: the seed measurement is this run
    payload["seed_baseline"] = seed
    payload["after"] = after
    payload["speedup"] = _speedups(seed, after)
    if "quick" in existing:
        payload["quick"] = existing["quick"]
    history = list(existing.get("history") or [])
    history.append({
        "label": label or f"run-{len(history) + 1}",
        "python": platform.python_version(),
        "seconds": {
            name: entry["seconds"]
            for name, entry in sorted(after.items())
            if "seconds" in entry
        },
    })
    payload["history"] = history


def print_history(path: Path) -> int:
    """Print the per-bench trajectory: seed -> each recorded run."""
    data = _load_json(path, "results")
    seed = data.get("seed_baseline") or data.get("before") or {}
    history = data.get("history") or []
    if not history:
        # Schema-1 file: synthesize one entry from the "after" column.
        after = data.get("after") or data.get("benches") or {}
        history = [{
            "label": data.get("label") or "current",
            "seconds": {n: e["seconds"] for n, e in after.items()
                        if "seconds" in e},
        }]
    names = sorted(
        {n for n, e in seed.items() if "seconds" in e}
        | {n for run in history for n in run.get("seconds", {})}
    )
    labels = [run.get("label", f"run-{i + 1}") for i, run in enumerate(history)]
    print(f"{'bench':<28} {'seed':>10}  " +
          "  ".join(f"{label:>10}" for label in labels) + "  speedup")
    for name in names:
        seed_s = seed.get(name, {}).get("seconds")
        cells = [f"{seed_s * 1e3:8.1f}ms" if seed_s else f"{'-':>10}"]
        last = None
        for run in history:
            seconds = run.get("seconds", {}).get(name)
            if seconds is None:
                cells.append(f"{'-':>10}")
            else:
                cells.append(f"{seconds * 1e3:8.1f}ms")
                last = seconds
        trend = f"{seed_s / last:7.2f}x" if seed_s and last else f"{'-':>8}"
        print(f"{name:<28} " + "  ".join(cells) + f" {trend}")
    return 0


#: Cells the wheel-vs-macro engine gate times (the macro engine only
#: changes guest tick delivery, so only end-to-end cells can differ).
_ENGINE_GATE_CELLS = (
    "fig6_npb_cell",
    "faults_cell",
    "decentralized_50vm",
    "fig4_dom0_sweep",
)


def engine_gate(quick: bool, limit: float) -> int:
    """Fail when the macro engine is slower than the wheel on any e2e cell.

    Runs the engines *interleaved* (wheel, macro, wheel, macro, ...) and
    keeps each engine's best time, so slow machine drift cancels out
    instead of being attributed to whichever engine ran last.  ``limit``
    absorbs residual timer noise on cells where macro is only at par.
    """
    e2e = _load("e2e_bench")
    failures = []
    for cell in _ENGINE_GATE_CELLS:
        fn = getattr(e2e, cell)
        best = {"wheel": float("inf"), "macro": float("inf")}
        for engine in best:  # one warm-up per engine
            os.environ["REPRO_SIM_ENGINE"] = engine
            fn(quick=quick)
        for _ in range(3):
            for engine in best:
                os.environ["REPRO_SIM_ENGINE"] = engine
                start = time.perf_counter()
                fn(quick=quick)
                best[engine] = min(best[engine], time.perf_counter() - start)
        os.environ.pop("REPRO_SIM_ENGINE", None)
        ratio = best["macro"] / best["wheel"]
        status = "OK" if ratio <= 1.0 + limit else "FAIL"
        print(f"  e2e.{cell:<24} wheel {best['wheel'] * 1e3:8.2f} ms  "
              f"macro {best['macro'] * 1e3:8.2f} ms  ({ratio:.2f}x)  {status}")
        if ratio > 1.0 + limit:
            failures.append((cell, ratio))
    if failures:
        print(f"FAIL: macro engine slower than wheel on " +
              ", ".join(f"{n} ({r:.2f}x)" for n, r in failures))
        return 1
    print("engine gate passed (macro at least on par with wheel)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, single repeat (CI smoke lane)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results JSON here (default: BENCH_sim.json "
                             "at the repo root for full runs; no file for "
                             "--quick unless given)")
    parser.add_argument("--label", default=None,
                        help="free-form tag stored in the output (e.g. 'before')")
    parser.add_argument("--merge-baseline", type=Path, default=None,
                        help="fold a previous run in as the 'before' column")
    parser.add_argument("--record-quick", type=Path, default=None,
                        help="with --quick: store this run as the 'quick' "
                             "reference column inside an existing results "
                             "file (the one CI gates against)")
    parser.add_argument("--check-against", type=Path, default=None,
                        help="compare against a reference JSON and fail on "
                             "regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed slowdown vs reference (default 0.30)")
    parser.add_argument("--max-trace-overhead", type=float, default=0.10,
                        help="allowed tracing overhead on the fig6 cell "
                             "(default 0.10; gated with --check-against)")
    parser.add_argument("--history", action="store_true",
                        help="print the recorded per-bench trajectory from "
                             "the results file and exit (no benches run)")
    parser.add_argument("--engine-gate", action="store_true",
                        help="A/B the wheel and macro engines on the e2e "
                             "cells and fail if macro is slower; runs only "
                             "this comparison")
    parser.add_argument("--max-engine-slowdown", type=float, default=0.10,
                        help="allowed macro-vs-wheel slowdown in the engine "
                             "gate before failing (default 0.10, absorbs "
                             "timer noise on at-par cells)")
    args = parser.parse_args()

    if args.history:
        return print_history(args.output or REPO_ROOT / "BENCH_sim.json")
    if args.engine_gate:
        print(f"perf_bench: engine gate ({'quick' if args.quick else 'full'} "
              f"sizes), python {platform.python_version()}")
        return engine_gate(args.quick, args.max_engine_slowdown)

    print(f"perf_bench: {'quick' if args.quick else 'full'} run, "
          f"python {platform.python_version()}")
    benches = run_suite(args.quick)

    payload: dict = {
        "schema": 2,
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
    }
    if args.label:
        payload["label"] = args.label

    output = args.output
    if output is None and not args.quick:
        output = REPO_ROOT / "BENCH_sim.json"
    if output is not None:
        if args.quick:
            payload["benches"] = benches
        else:
            apply_lineage(payload, benches, output, args.label,
                          args.merge_baseline)
        output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output}")

    if args.record_quick:
        if not args.quick:
            parser.error("--record-quick requires --quick")
        merged = _load_json(args.record_quick, "results")
        merged["quick"] = benches
        args.record_quick.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded quick reference column in {args.record_quick}")

    if args.check_against:
        rc = check_regressions(benches, args.check_against,
                               args.max_regression, args.quick)
        return rc or check_trace_overhead(benches, args.max_trace_overhead)
    return 0


if __name__ == "__main__":
    sys.exit(main())
