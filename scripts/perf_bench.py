#!/usr/bin/env python
"""Time the simulation core and representative experiment cells.

Runs the ``benchmarks/perf/`` suite — engine-throughput microbenchmarks,
RNG-path microbenchmarks, end-to-end experiment cells, and a per-object
memory census — and writes the results to ``BENCH_sim.json`` so the
repo's performance trajectory is tracked commit over commit.

Usage::

    python scripts/perf_bench.py                                # full run
    python scripts/perf_bench.py --quick                        # CI smoke
    python scripts/perf_bench.py \
        --check-against BENCH_sim.json --max-regression 0.30    # gate

An installed ``repro`` (``pip install -e .``) is used when present;
otherwise the checkout's own ``src/`` is put on ``sys.path``.

The bench modules use only public APIs, so the same script can time an
older revision of the simulator: point ``PYTHONPATH`` at that revision's
``src`` (e.g. a ``git worktree`` of the previous commit) and pass
``--label before``.  ``--merge-baseline before.json`` then folds such a
run into the output as the ``before`` column, with speedups computed.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"

if importlib.util.find_spec("repro") is None:  # uninstalled checkout
    sys.path.insert(0, str(REPO_ROOT / "src"))


def _load(module_name: str):
    path = PERF_DIR / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(f"perf_{module_name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_json(path: Path, role: str) -> dict:
    """Read a results/reference JSON; exit with a one-line error if it is
    missing or corrupt instead of dumping a traceback."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: {role} file not found: {path}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SystemExit(f"error: {role} file {path} is corrupt: {exc}")


def _time_best_of(fn, args: dict, repeats: int) -> tuple[float, float]:
    """(best seconds, items) over ``repeats`` runs, after one warm-up."""
    fn(**args)  # warm-up: imports, first-touch allocations
    best = float("inf")
    items = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(**args)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if isinstance(result, (int, float)):
            items = float(result)
    return best, items


def run_suite(quick: bool) -> dict:
    engine = _load("engine_bench")
    rng = _load("rng_bench")
    e2e = _load("e2e_bench")
    tracelog = _load("tracelog_bench")
    memory = _load("memory_bench")

    scale = 4 if quick else 1
    repeats = 1 if quick else 3
    benches = [
        # (name, fn, kwargs, items are events -> report events/s)
        ("engine.tick_chains", engine.tick_chains, {"events": 200_000 // scale}),
        ("engine.deep_queue", engine.deep_queue, {"events": 30_000 // scale}),
        ("engine.cancel_churn", engine.cancel_churn, {"events": 40_000 // scale}),
        ("engine.peek_monitor", engine.peek_monitor, {"events": 20_000 // scale}),
        ("rng.fault_decisions", rng.fault_decisions, {"calls": 100_000 // scale}),
        ("rng.cost_jitter", rng.cost_jitter, {"calls": 100_000 // scale}),
        ("e2e.fig6_npb_cell", e2e.fig6_npb_cell, {"quick": quick}),
        ("e2e.faults_cell", e2e.faults_cell, {"quick": quick}),
        ("e2e.decentralized_50vm", e2e.decentralized_50vm, {"quick": quick}),
        ("e2e.fig4_dom0_sweep", e2e.fig4_dom0_sweep, {"quick": quick}),
        ("tracelog.fig6_traced_cell", tracelog.fig6_traced_cell, {"quick": quick}),
    ]

    results: dict[str, dict] = {}
    for name, fn, kwargs in benches:
        seconds, items = _time_best_of(fn, kwargs, repeats)
        entry = {"seconds": round(seconds, 6)}
        if items and name.split(".")[0] in ("engine", "rng"):
            entry["per_second"] = round(items / seconds)
        results[name] = entry
        print(f"  {name:<28} {seconds * 1e3:9.2f} ms"
              + (f"  ({entry['per_second']:,}/s)" if "per_second" in entry else ""))

    # Tracing overhead: interleaved traced/untraced pairs of the same
    # cell, best-of each, so machine noise cancels instead of showing
    # up as tracing cost.
    pair = tracelog.trace_overhead(quick)
    results["tracelog.fig6_traced_cell"]["overhead"] = pair["overhead"]
    print(f"  {'tracelog overhead':<28} {pair['overhead']:8.1%} vs untraced fig6 "
          f"({pair['untraced_s'] * 1e3:.0f} -> {pair['traced_s'] * 1e3:.0f} ms)")

    print("  memory census ...")
    results["memory.objects"] = {
        key: round(value, 1)
        for key, value in memory.object_sizes(5_000 if quick else 20_000).items()
    }
    return results


def check_trace_overhead(current: dict, limit: float) -> int:
    """Gate the tracelog bench's overhead ratio (<10% by default)."""
    entry = current.get("tracelog.fig6_traced_cell") or {}
    overhead = entry.get("overhead")
    if overhead is None:
        return 0
    status = "OK" if overhead <= limit else "FAIL"
    print(f"  tracing overhead {overhead:.1%} (limit {limit:.0%})  {status}")
    if overhead > limit:
        print(f"FAIL: tracing overhead {overhead:.1%} exceeds {limit:.0%} "
              "on the fig6 cell")
        return 1
    return 0


def check_regressions(current: dict, reference_path: Path, limit: float,
                      quick: bool) -> int:
    reference = _load_json(reference_path, "reference")
    # Compare like-for-like: quick runs use smaller workloads, so they gate
    # against the committed "quick" column; full runs against "after" (a
    # merged file) or "benches" (a flat run).
    if quick:
        ref_benches = reference.get("quick") or {}
        if not ref_benches:
            print(f"no 'quick' reference column in {reference_path}; "
                  "nothing to gate against")
            return 0
    else:
        ref_benches = reference.get("after") or reference.get("benches") or {}
    failures = []
    for name, entry in current.items():
        if "seconds" not in entry or name not in ref_benches:
            continue
        ref_seconds = ref_benches[name].get("seconds")
        if not ref_seconds:
            continue
        ratio = entry["seconds"] / ref_seconds
        status = "OK" if ratio <= 1.0 + limit else "REGRESSION"
        print(f"  {name:<28} {ratio:5.2f}x vs reference  {status}")
        if ratio > 1.0 + limit:
            failures.append((name, ratio))
    if failures:
        print(f"FAIL: {len(failures)} bench(es) regressed more than "
              f"{limit:.0%}: " + ", ".join(f"{n} ({r:.2f}x)" for n, r in failures))
        return 1
    print("perf gate passed")
    return 0


def merge_baseline(after: dict, baseline_path: Path) -> dict:
    baseline = _load_json(baseline_path, "baseline")
    if "benches" not in baseline:
        raise SystemExit(
            f"error: baseline file {baseline_path} has no 'benches' column"
        )
    before = baseline["benches"]
    speedup = {}
    for name, entry in after.items():
        if "seconds" in entry and name in before and "seconds" in before[name]:
            speedup[name] = round(before[name]["seconds"] / entry["seconds"], 2)
    return {"before": before, "after": after, "speedup": speedup}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, single repeat (CI smoke lane)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results JSON here (default: BENCH_sim.json "
                             "at the repo root for full runs; no file for "
                             "--quick unless given)")
    parser.add_argument("--label", default=None,
                        help="free-form tag stored in the output (e.g. 'before')")
    parser.add_argument("--merge-baseline", type=Path, default=None,
                        help="fold a previous run in as the 'before' column")
    parser.add_argument("--record-quick", type=Path, default=None,
                        help="with --quick: store this run as the 'quick' "
                             "reference column inside an existing results "
                             "file (the one CI gates against)")
    parser.add_argument("--check-against", type=Path, default=None,
                        help="compare against a reference JSON and fail on "
                             "regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed slowdown vs reference (default 0.30)")
    parser.add_argument("--max-trace-overhead", type=float, default=0.10,
                        help="allowed tracing overhead on the fig6 cell "
                             "(default 0.10; gated with --check-against)")
    args = parser.parse_args()

    print(f"perf_bench: {'quick' if args.quick else 'full'} run, "
          f"python {platform.python_version()}")
    benches = run_suite(args.quick)

    payload: dict = {
        "schema": 1,
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
    }
    if args.label:
        payload["label"] = args.label
    if args.merge_baseline:
        payload.update(merge_baseline(benches, args.merge_baseline))
    else:
        payload["benches"] = benches

    output = args.output
    if output is None and not args.quick:
        output = REPO_ROOT / "BENCH_sim.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output}")

    if args.record_quick:
        if not args.quick:
            parser.error("--record-quick requires --quick")
        merged = _load_json(args.record_quick, "results")
        merged["quick"] = benches
        args.record_quick.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded quick reference column in {args.record_quick}")

    if args.check_against:
        rc = check_regressions(benches, args.check_against,
                               args.max_regression, args.quick)
        return rc or check_trace_overhead(benches, args.max_trace_overhead)
    return 0


if __name__ == "__main__":
    sys.exit(main())
