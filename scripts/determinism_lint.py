#!/usr/bin/env python3
"""AST lint for nondeterminism hazards in the simulation stack.

The whole repo rests on bit-for-bit reproducibility (pool==serial,
wheel==heap, coalesce on==off, golden snapshots).  Those guarantees die
quietly when wall-clock time, the process-global RNG, object identities or
hash-ordered set iteration leak into simulation state.  This lint walks the
ASTs under ``src/repro`` and flags the four hazard classes:

``wall-clock``
    ``time.time()``/``monotonic()``/``perf_counter()`` and
    ``datetime.now()``-family calls.  Wall-clock time differs per run;
    simulation code must use ``sim.now``.
``global-rng``
    The process-global random generators: ``random.<fn>()``,
    ``random.Random()`` with no seed, legacy ``numpy.random.<fn>()`` and
    ``numpy.random.default_rng()`` with no seed.  Simulation code must
    draw from :class:`repro.sim.rng.SeedSequenceFactory` streams.
``id-key``
    ``id(x)`` used as a dict key or subscript.  CPython ids are allocation
    addresses: stable within one process, different across processes — a
    cache keyed on them silently diverges between the pool and serial paths.
``set-iteration``
    Iterating a set (``for x in s``, comprehensions) where ``s`` is a set
    literal, ``set()``/``frozenset()`` call, set comprehension, or a local
    name bound/annotated as a set.  Small-int sets iterate in hash-bucket
    order, not insertion order; feed that into event scheduling and the
    replay guarantee breaks.  Wrap in ``sorted()`` or use an
    insertion-ordered ``dict[K, None]``.

A finding on a line containing ``# det: allow`` is suppressed — use it for
legitimately wall-clock code such as telemetry.

Exit status: 0 when clean, 1 when any finding survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, NamedTuple

PRAGMA = "det: allow"

#: Calls that read the wall clock (resolved, fully dotted).
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Calls that draw from a process-global RNG.
GLOBAL_RNG_CALLS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.betavariate",
    "random.expovariate",
    "random.getrandbits",
    "random.seed",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.seed",
}

#: Constructors that are hazards only when called with no seed argument.
UNSEEDED_CTORS = {"random.Random", "numpy.random.default_rng"}

#: Well-known module aliases we normalize before lookup.
MODULE_ALIASES = {"np": "numpy"}


class Finding(NamedTuple):
    path: Path
    lineno: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.code}] {self.message}"


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class HazardVisitor(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []
        #: local alias -> real dotted module ("t" -> "time").
        self.module_aliases: dict[str, str] = dict(MODULE_ALIASES)
        #: from-imported name -> full dotted origin ("time" -> "time.time").
        self.from_imports: dict[str, str] = {}
        #: names bound or annotated as sets anywhere in the module.
        self.set_names: set[str] = set()

    # -- plumbing ------------------------------------------------------
    def _suppressed(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno > len(self.lines):
            return False
        return PRAGMA in self.lines[lineno - 1]

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if not self._suppressed(node):
            self.findings.append(Finding(self.path, node.lineno, code, message))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name of a call target, alias-resolved."""
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.from_imports:
            return self.from_imports[head] + ("." + rest if rest else "")
        if head in self.module_aliases:
            return self.module_aliases[head] + ("." + rest if rest else "")
        return dotted

    # -- set bindings (module-wide prepass via generic visiting) -------
    def _note_set_binding(self, target: ast.AST, is_set: bool) -> None:
        if is_set and isinstance(target, ast.Name):
            self.set_names.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_set_binding(target, self._is_set_expr(node.value, deep=False))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        annotated_set = False
        ann = node.annotation
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        if isinstance(ann, ast.Name) and ann.id in ("set", "frozenset"):
            annotated_set = True
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            annotated_set = ann.value.lstrip().startswith(("set[", "set ", "frozenset"))
        value_set = node.value is not None and self._is_set_expr(node.value, deep=False)
        self._note_set_binding(node.target, annotated_set or value_set)
        self.generic_visit(node)

    def _is_set_expr(self, node: ast.AST, deep: bool = True) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            if name in ("set", "frozenset"):
                return True
        if deep and isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    # -- hazards -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            self._report(
                node, "wall-clock",
                f"{resolved}() reads the wall clock; simulation code must "
                f"use sim.now (suppress telemetry with `# {PRAGMA}`)",
            )
        elif resolved in GLOBAL_RNG_CALLS:
            self._report(
                node, "global-rng",
                f"{resolved}() draws from the process-global RNG; use a "
                f"SeedSequenceFactory stream",
            )
        elif resolved in UNSEEDED_CTORS and not node.args and not node.keywords:
            self._report(
                node, "global-rng",
                f"{resolved}() without a seed is entropy-seeded and "
                f"differs per run",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        index = node.slice
        if isinstance(index, ast.Call) and _dotted_name(index.func) == "id":
            self._report(
                node, "id-key",
                "id(...) used as a key: CPython ids differ across processes",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if isinstance(key, ast.Call) and _dotted_name(key.func) == "id":
                self._report(
                    node, "id-key",
                    "id(...) used as a dict key: CPython ids differ across "
                    "processes",
                )
                break
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._report(
                iter_node, "set-iteration",
                "iterating a set: hash-bucket order is not insertion order; "
                "wrap in sorted() or use an insertion-ordered dict",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for comp in node.generators:
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions


def lint_file(path: Path) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "syntax", str(exc))]
    visitor = HazardVisitor(path, source.splitlines())
    # Two passes: the first collects imports and set bindings declared
    # anywhere in the module (including after their first use site), the
    # second reports.  The visitor accumulates findings only on the second.
    visitor.visit(tree)
    visitor.findings.clear()
    visitor.visit(tree)
    return visitor.findings


def iter_python_files(targets: Iterable[Path]) -> Iterable[Path]:
    for target in targets:
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            yield target
        else:
            raise SystemExit(f"not a Python file or directory: {target}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Flag nondeterminism hazards in simulation code."
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    findings: list[Finding] = []
    checked = 0
    for path in iter_python_files(args.targets):
        findings.extend(lint_file(path))
        checked += 1
    if checked == 0:
        print("determinism-lint: no Python files found", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    summary = f"determinism-lint: {checked} files, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
