#!/usr/bin/env python
"""Seeded chaos harness: crash schedules, recovery bounds, restore checks.

Runs the chaos profile grid (``repro.experiments.chaos``) under a seeded
crash schedule and asserts the recovery contracts the protocols promise:

* every scripted daemon crash is followed by a restart and a bounded
  reconvergence (``--max-epochs`` periods by default);
* every injected vCPU hang the run had time to sweep is cleared by the
  watchdog;
* every balancer outage that ended inside the run is followed by an
  explicit re-sync;
* with ``--verify-restore``, the checkpoint captured before the first
  scripted crash restores onto a rebuilt twin — replay fingerprints must
  match (:class:`repro.recovery.RestoreMismatch` otherwise).

The whole run is deterministic: same ``--seed``/``--chaos-seed`` means
the same crash schedule, the same recovery trace, the same table.  Used
by the CI smoke workflow::

    python scripts/chaos.py --scale 0.05 --profiles crash outage --verify-restore
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import chaos  # noqa: E402
from repro.parallel import ParallelExecutor  # noqa: E402


def check_cell(cell, max_epochs: int) -> list[str]:
    """The recovery bounds one cell must satisfy; returns violations."""
    errors = []
    rec = cell.recovery
    crashes = rec.get("daemon_crashes", 0)
    restarts = rec.get("daemon_restarts", 0)
    if crashes != restarts:
        errors.append(
            f"{cell.profile}: {crashes} crashes but {restarts} restarts"
        )
    if rec.get("recoveries", 0) and rec.get("recovery_epochs_max", 0) > max_epochs:
        errors.append(
            f"{cell.profile}: reconvergence took "
            f"{rec['recovery_epochs_max']} epochs (bound {max_epochs})"
        )
    if crashes and cell.snapshots_taken < crashes:
        errors.append(
            f"{cell.profile}: only {cell.snapshots_taken} snapshots for "
            f"{crashes} scripted crashes"
        )
    return errors


def _twin_builder(args):
    """The deterministic scenario factory shared by the restore checks:
    the same args must always build the same machine."""
    from repro.core.daemon import DaemonConfig
    from repro.experiments.chaos import _build_plan
    from repro.experiments.setups import Config, ScenarioBuilder

    def build():
        builder = (
            ScenarioBuilder(seed=args.seed, pcpus=8)
            .with_worker_vm(4)
            .with_config(Config.VSCALE)
            .with_faults(_build_plan("crash", args.chaos_seed, args.scale))
        )
        builder.daemon_config = DaemonConfig.crash_hardened()
        return builder.build()

    return build


def _load_snapshot(path: Path):
    """Read a checkpoint JSON written by --save-snapshot; exit with a
    one-line error when the file is missing or corrupt."""
    import json

    from repro.recovery import Checkpoint

    try:
        data = json.loads(path.read_text())
        return Checkpoint(
            at_ns=data["at_ns"],
            state=data["state"],
            fingerprint=data["fingerprint"],
        )
    except FileNotFoundError:
        raise SystemExit(f"error: snapshot file not found: {path}")
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as exc:
        raise SystemExit(f"error: snapshot file {path} is corrupt: {exc!r}")


def restore_from(args) -> None:
    """Restore a saved snapshot onto a rebuilt twin and verify it."""
    from repro.hypervisor.machine import Machine
    from repro.recovery import RestoreMismatch

    checkpoint = _load_snapshot(args.restore_from)
    try:
        Machine.restore(checkpoint, _twin_builder(args))
    except RestoreMismatch as exc:
        raise SystemExit(f"error: {exc}")
    print(
        f"restored snapshot {args.restore_from} at t={checkpoint.at_ns} ns "
        f"({checkpoint.fingerprint[:16]}) onto a rebuilt twin"
    )


def verify_restore(args) -> None:
    """Capture a pre-crash checkpoint and restore it onto a rebuilt twin."""
    from repro.experiments.chaos import WARMUP_NS, _build_plan
    from repro.hypervisor.machine import Machine
    from repro.recovery import fingerprint, state_dict

    plan = _build_plan("crash", args.chaos_seed, args.scale)
    crash_ns = min(e.at_ns for e in plan.events if e.site == "daemon_crash")
    build = _twin_builder(args)

    original = build()
    original.start()
    original.run(crash_ns)
    checkpoint = original.machine.snapshot()
    if args.save_snapshot is not None:
        args.save_snapshot.write_text(checkpoint.dumps() + "\n")
        print(f"saved pre-crash snapshot to {args.save_snapshot}")
    restored = Machine.restore(checkpoint, build)

    # Both continue through the crash and beyond; futures must agree.
    horizon = crash_ns + WARMUP_NS
    original.run(horizon)
    restored.run(horizon)
    a = fingerprint(state_dict(original.machine))
    b = fingerprint(state_dict(restored.machine))
    if a != b:
        raise SystemExit(f"restored twin diverged after crash: {a} != {b}")
    print(f"restore verified: pre-crash checkpoint at t={crash_ns} ns, "
          f"futures identical through t={horizon} ns ({a[:16]})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3, help="workload seed")
    parser.add_argument(
        "--chaos-seed", type=int, default=chaos.CHAOS_SEED,
        help="crash-schedule seed (independent of the workload seed)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="work scale factor"
    )
    parser.add_argument(
        "--profiles", nargs="*", default=list(chaos.PROFILES),
        choices=chaos.PROFILES, help="chaos profiles to run",
    )
    parser.add_argument(
        "--max-epochs", type=int, default=4,
        help="reconvergence bound in daemon periods",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="crash + outage profiles only (CI smoke)",
    )
    parser.add_argument(
        "--verify-restore", action="store_true",
        help="also restore a pre-crash checkpoint onto a rebuilt twin",
    )
    parser.add_argument(
        "--save-snapshot", type=Path, default=None,
        help="with --verify-restore: write the pre-crash checkpoint JSON "
        "here for later --restore-from runs",
    )
    parser.add_argument(
        "--restore-from", type=Path, default=None,
        help="restore a snapshot saved by --save-snapshot onto a rebuilt "
        "twin (same --seed/--chaos-seed/--scale) and exit",
    )
    args = parser.parse_args(argv)

    if args.restore_from is not None:
        restore_from(args)
        return 0
    if args.quick:
        args.profiles = ["none", "crash", "outage"]

    profiles = tuple(args.profiles)
    if "none" not in profiles:
        profiles = ("none",) + profiles  # the slowdown baseline
    result = chaos.run(
        profiles=profiles,
        seed=args.seed,
        work_scale=args.scale,
        chaos_seed=args.chaos_seed,
        executor=ParallelExecutor(jobs=1, cache=None),
    )
    print(result.render())

    errors = []
    for profile in profiles:
        errors.extend(check_cell(result.cells[profile], args.max_epochs))
    if errors:
        print("recovery-bound violations:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1

    if args.verify_restore:
        verify_restore(args)
    print("chaos harness: all recovery bounds hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
