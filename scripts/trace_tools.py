#!/usr/bin/env python
"""Capture, verify and render ``repro.tracelog`` binary traces.

Subcommands::

    capture  run a named cell (fig6 | chaos) with tracing on
    verify   replay a trace from its embedded run metadata and compare
             fingerprints; exits non-zero with a divergence report on
             mismatch — the CI trace-replay check
    dump     print a trace's metadata and events (tolerates truncated
             traces from crashed runs)
    gantt    vCPU<->pCPU occupancy timeline with freeze edges
             (ASCII to stdout; --svg writes a standalone SVG)
    stats    event volumes and wakeup-to-run latency distributions

Examples::

    python scripts/trace_tools.py capture fig6 --out fig6.rtl --scale 0.2
    python scripts/trace_tools.py verify fig6.rtl
    python scripts/trace_tools.py gantt fig6.rtl --svg fig6.svg
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.tracelog import codec  # noqa: E402
from repro.tracelog.replay import capture_run, replay_verify  # noqa: E402


def _load(path: str, strict: bool):
    try:
        return codec.load(path, strict=strict)
    except codec.TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.tracelog import cells

    categories = None
    if args.categories:
        categories = frozenset(
            c.strip() for c in args.categories.split(",") if c.strip()
        )
    if args.cell == "fig6":
        fn = cells.fig6_cell
        kwargs = {
            "app": args.app,
            "config": args.config,
            "seed": args.seed,
            "work_scale": args.scale,
            "scheduler": args.scheduler,
        }
    else:
        fn = cells.chaos_cell
        kwargs = {
            "profile": args.profile,
            "app": args.app,
            "seed": args.seed,
            "work_scale": args.scale,
            "scheduler": args.scheduler,
        }
    capture_run(fn, kwargs, args.out, categories=categories)
    _, records = codec.load(args.out)
    print(f"captured {len(records)} events to {args.out}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        report = replay_verify(args.trace)
    except (codec.TraceFormatError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.match else 1


def _cmd_dump(args: argparse.Namespace) -> int:
    meta, records = _load(args.trace, strict=not args.lenient)
    import json

    print(f"# {args.trace}: {len(records)} events")
    print(f"# meta: {json.dumps(meta, sort_keys=True)}")
    for record in records:
        if args.category and record.category != args.category:
            continue
        print(record)
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.tracelog.render import ascii_gantt, svg_gantt

    _, records = _load(args.trace, strict=False)
    if args.svg:
        Path(args.svg).write_text(svg_gantt(records))
        print(f"wrote {args.svg}")
    else:
        print(ascii_gantt(records, width=args.width))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.tracelog.stats import render_stats

    _, records = _load(args.trace, strict=False)
    print(render_stats(records))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="trace_tools", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("capture", help="run a cell with tracing on")
    p.add_argument("cell", choices=("fig6", "chaos"))
    p.add_argument("--out", required=True, help="trace output path")
    p.add_argument("--app", default="cg")
    p.add_argument("--config", default="VSCALE", help="fig6 config name")
    p.add_argument("--profile", default="crash", help="chaos fault profile")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--scheduler", default=None)
    p.add_argument(
        "--categories", default=None,
        help="comma-separated trace categories (default: all but dispatch)",
    )
    p.set_defaults(fn=_cmd_capture)

    p = sub.add_parser("verify", help="replay a trace and compare fingerprints")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("dump", help="print trace metadata and events")
    p.add_argument("trace")
    p.add_argument("--category", default=None, help="only this category")
    p.add_argument(
        "--lenient", action="store_true",
        help="tolerate truncated traces (crashed runs)",
    )
    p.set_defaults(fn=_cmd_dump)

    p = sub.add_parser("gantt", help="render an occupancy timeline")
    p.add_argument("trace")
    p.add_argument("--width", type=int, default=100, help="ASCII columns")
    p.add_argument("--svg", default=None, help="write an SVG here instead")
    p.set_defaults(fn=_cmd_gantt)

    p = sub.add_parser("stats", help="event volumes and latency distributions")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_stats)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
