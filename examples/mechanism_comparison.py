#!/usr/bin/env python3
"""Mechanism shoot-out: vScale's balancer vs. Linux CPU hotplug.

Drives the *same* scaling policy (CPU extendability, Algorithm 1) through
three mechanisms and shows why the paper built a new one:

* no scaling at all (fixed vCPUs);
* Linux CPU hotplug (milliseconds per operation, plus a stop_machine
  stall of the whole guest on removal);
* the vScale balancer (~2 microseconds, no global stalls).

Also prints the raw mechanism latencies, reproducing the paper's
"100x to 100,000x" comparison.

Usage::

    python examples/mechanism_comparison.py [kernel-version]

    kernel-version  one of v2.6.32 v3.2.60 v3.14.15 v4.2 (default v3.14.15)
"""

import sys

from repro.core.balancer import BalancerCosts
from repro.experiments import ablations
from repro.guest.hotplug import HotplugModel, KERNEL_VERSIONS
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory


def main() -> None:
    version = sys.argv[1] if len(sys.argv) > 1 else "v3.14.15"
    if version not in KERNEL_VERSIONS:
        raise SystemExit(f"unknown kernel {version!r}; choose from {sorted(KERNEL_VERSIONS)}")

    # Raw mechanism latencies.
    seeds = SeedSequenceFactory(21)
    model = HotplugModel(version, seeds.generator("hp"))
    removals = [model.sample_remove_ns() for _ in range(100)]
    additions = [model.sample_add_ns() for _ in range(100)]
    vscale_ns = BalancerCosts().total_ns
    latency = Table(
        f"Mechanism latency: vScale balancer vs Linux hotplug ({version})",
        ["operation", "median", "worst", "vs vScale"],
    )
    removals.sort()
    additions.sort()
    latency.add_row("vScale freeze/unfreeze", f"{vscale_ns / 1000:.1f}us", "-", "1x")
    latency.add_row(
        "hotplug remove",
        f"{removals[50] / 1e6:.1f}ms",
        f"{removals[-1] / 1e6:.1f}ms",
        f"{removals[50] / vscale_ns:,.0f}x",
    )
    latency.add_row(
        "hotplug add",
        f"{additions[50] / 1e6:.2f}ms",
        f"{additions[-1] / 1e6:.2f}ms",
        f"{additions[50] / vscale_ns:,.0f}x",
    )
    print(latency.render())
    print()

    # End-to-end effect on a synchronization-heavy workload.
    print("Running cg (heavy spin) under the three mechanisms...")
    points = ablations.run_mechanism_ablation(hotplug_kernel=version)
    table = Table(
        "End-to-end: NPB cg under consolidation",
        ["mechanism", "duration (s)", "VM waiting (s)", "reconfigs"],
    )
    for point in points:
        table.add_row(
            point.label,
            point.duration_ns / 1e9,
            point.wait_ns / 1e9,
            point.reconfigurations,
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
