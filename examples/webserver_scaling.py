#!/usr/bin/env python3
"""Apache-under-httperf: how vScale protects an I/O-bound server.

Sweeps the request rate against a 4-vCPU web VM consolidated with desktop
VMs, comparing vanilla Xen/Linux against vScale.  Watch two things:

* the *connection time* — with vanilla, the NIC's event-channel interrupt
  lands on a preempted vCPU and waits out the scheduling queue; vScale
  keeps the interrupt-receiving vCPU backed by a whole pCPU;
* the *reply rate* past saturation — vanilla wastes capacity on socket
  lock spinning and delayed worker wake-ups.

Usage::

    python examples/webserver_scaling.py [rates...]
"""

import sys

from repro.experiments import fig14
from repro.experiments.setups import Config
from repro.metrics.report import Table
from repro.units import SEC


def main() -> None:
    rates = [int(arg) for arg in sys.argv[1:]] or [2000, 5000, 7000, 9000]
    table = Table(
        "Apache/httperf: vanilla vs vScale (16KB file over 1GbE)",
        ["req/s", "config", "replies/s", "conn time (ms)", "resp time (ms)", "drops"],
    )
    for rate in rates:
        for config in (Config.VANILLA, Config.VSCALE):
            print(f"driving {rate} req/s against {config.value}...")
            result = fig14.run_point(config, rate, duration_ns=2 * SEC)
            conn = (
                result.connection_time.mean() / 1e6
                if len(result.connection_time)
                else float("nan")
            )
            resp = (
                result.response_time.mean() / 1e6
                if len(result.response_time)
                else float("nan")
            )
            table.add_row(
                rate,
                config.value,
                f"{result.reply_rate:.0f}",
                conn,
                resp,
                result.drops,
            )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
