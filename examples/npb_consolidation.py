#!/usr/bin/env python3
"""NPB under consolidation: the paper's headline experiment, end to end.

Runs one synchronization-intensive NAS benchmark (default: cg, OpenMP
ACTIVE waiting policy) in a 4-vCPU VM consolidated with photo-slideshow
desktop VMs at two vCPUs per pCPU, under all four configurations of the
paper's Figure 6, and prints normalized execution times plus the VM's
scheduling-queue waiting time.

Usage::

    python examples/npb_consolidation.py [app] [spincount]

    app        one of bt cg dc ep ft is lu mg sp ua   (default: cg)
    spincount  GOMP_SPINCOUNT                          (default: 30000000000)
"""

import sys

from repro.experiments.npb_common import run_cell
from repro.experiments.setups import ALL_CONFIGS, Config
from repro.metrics.report import Table
from repro.workloads.npb import NPB_PROFILES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "cg"
    spincount = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000_000_000
    if app not in NPB_PROFILES:
        raise SystemExit(f"unknown app {app!r}; choose from {sorted(NPB_PROFILES)}")

    print(f"Running NPB '{app}' with GOMP_SPINCOUNT={spincount} under 4 configs...")
    cells = {}
    for config in ALL_CONFIGS:
        cells[config] = run_cell(app, vcpus=4, spincount=spincount, config=config)
        print(f"  {config.value:22s} done ({cells[config].duration_ns / 1e9:.2f}s)")

    base = cells[Config.VANILLA].duration_ns
    table = Table(
        f"NPB {app} (4-vCPU VM, 2 vCPUs/pCPU consolidation)",
        ["configuration", "time (s)", "normalized", "VM wait (s)", "vIPI/s/vCPU"],
    )
    for config in ALL_CONFIGS:
        cell = cells[config]
        table.add_row(
            config.value,
            cell.duration_ns / 1e9,
            cell.duration_ns / base,
            cell.wait_ns / 1e9,
            f"{cell.ipi_rate_per_vcpu:.0f}",
        )
    print()
    print(table.render())

    vscale = cells[Config.VSCALE]
    if vscale.vcpu_trace:
        print("\nvScale active-vCPU trace (time, online):")
        for t, n in vscale.vcpu_trace[:20]:
            print(f"  {t / 1e9:6.3f}s -> {n}")


if __name__ == "__main__":
    main()
