#!/usr/bin/env python3
"""Application awareness (the paper's future-work interface) in action.

Two fork-join applications process the same total work in a 4-vCPU VM
consolidated with photo-slideshow desktops (the paper's evaluation
environment), both running under vScale:

* the *oblivious* app launches a fixed team of 4 spin-waiting threads,
  like an OpenMP program with ``OMP_WAIT_POLICY=ACTIVE``;
* the *adaptive* app asks the :class:`repro.core.advisor.ComputeAdvisor`
  before each phase and sizes its team to the VM's current extendability,
  so it never runs more busy-waiting threads than it has pCPUs behind
  its vCPUs.

Usage::

    python examples/adaptive_application.py
"""

import numpy as np

from repro.core.advisor import AdaptiveTeam, ComputeAdvisor
from repro.experiments.setups import Config, ScenarioBuilder
from repro.units import MS, SEC
from repro.workloads.base import AppHarness, phase_compute
from repro.workloads.synthetic import ForkJoinSpec, fork_join

PHASES = 30
PHASE_WORK_NS = 200 * MS  # total work per phase, split across the team


def build(seed: int):
    scenario = (
        ScenarioBuilder(seed=seed, pcpus=4)
        .with_worker_vm(4)
        .with_config(Config.VSCALE)
        .build()
    )
    scenario.start()
    scenario.run(2 * SEC)  # let the desktops ramp up
    return scenario


def run_oblivious(seed: int) -> float:
    scenario = build(seed)
    worker = scenario.worker_kernel
    rng = np.random.default_rng(seed)
    harness = AppHarness(worker, "fixed")
    spec = ForkJoinSpec(
        threads=4,
        iterations=PHASES,
        phase_ns=PHASE_WORK_NS // 4,
        imbalance=0.3,
        spin_budget_ns=10**12,  # OMP_WAIT_POLICY=ACTIVE
    )
    harness.launch(fork_join(worker, rng, spec))
    while not harness.done:
        scenario.run(scenario.machine.sim.now + 100 * MS)
    return harness.duration_ns / 1e9


def run_adaptive(seed: int) -> tuple[float, list]:
    scenario = build(seed)
    worker = scenario.worker_kernel
    rng = np.random.default_rng(seed)
    advisor = ComputeAdvisor(worker, scenario.daemon)
    team = AdaptiveTeam(worker, advisor)
    harness = AppHarness(worker, "adaptive")

    def phase_work(phase, rank, width):
        def fragment():
            yield phase_compute(rng, PHASE_WORK_NS // width, 0.3)

        return fragment()

    team.run_phases(harness, phase_work, phases=PHASES)
    while not harness.done:
        scenario.run(scenario.machine.sim.now + 100 * MS)
    return harness.duration_ns / 1e9, team.width_log


def main() -> None:
    oblivious = run_oblivious(seed=17)
    adaptive, widths = run_adaptive(seed=17)
    print(f"fixed 4-thread team (ACTIVE spin): {oblivious:6.2f}s")
    print(
        f"advisor-sized team               : {adaptive:6.2f}s "
        f"({(1 - adaptive / oblivious) * 100:+.0f}%)"
    )
    print("\nper-phase widths the adaptive team chose:")
    print("  " + " ".join(str(w) for _, w in widths))


if __name__ == "__main__":
    main()
