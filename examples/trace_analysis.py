#!/usr/bin/env python3
"""Trace one freeze/unfreeze cycle through the whole stack.

Runs a busy 4-vCPU VM with the xentrace-style tracer recording the
scheduler, interrupt, guest and vScale categories, performs one balancer
freeze and one unfreeze, and prints:

* the vScale protocol events in order (mark -> IPI -> migrations -> park);
* a /proc/interrupts snapshot showing the frozen vCPU quiescent;
* summary statistics over the raw trace.

Usage::

    python examples/trace_analysis.py
"""

from repro.core.balancer import VScaleBalancer
from repro.guest import procfs
from repro.guest.actions import Compute
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.sim.trace import Tracer
from repro.units import MS, SEC


def busy(total_ns):
    yield Compute(total_ns)


def main() -> None:
    tracer = Tracer(["sched", "irq", "guest", "vscale"], capacity=200_000)
    machine = Machine(HostConfig(pcpus=4), seed=8, tracer=tracer)
    domain = machine.create_domain("vm", vcpus=4)
    kernel = GuestKernel(domain)
    for index in range(6):
        kernel.spawn(busy(20 * SEC), f"crunch{index}")
    machine.start()
    machine.run(until=300 * MS)

    balancer = VScaleBalancer(kernel)
    freeze_at = machine.sim.now
    balancer.freeze(3)
    machine.run(until=machine.sim.now + 200 * MS)
    balancer.unfreeze(3)
    machine.run(until=machine.sim.now + 200 * MS)

    print("=== vScale protocol events (from the trace)")
    for record in tracer.select(category="vscale", since_ns=freeze_at):
        print(f"  {record}")
    print()
    print("=== thread migrations triggered by the cycle")
    for record in tracer.select(category="guest", event="migrate", since_ns=freeze_at):
        print(f"  {record}")
    print()
    print("=== /proc/interrupts after the cycle")
    print(procfs.proc_interrupts(kernel))
    print()
    print("=== /proc/stat (run steal idle frozen, ms)")
    print(procfs.proc_stat(kernel))
    print()
    print("=== trace volume by category")
    for category in ("sched", "irq", "guest", "vscale"):
        print(f"  {category:7s} {tracer.count(category=category):6d} events")
    if tracer.dropped:
        print(f"  (dropped {tracer.dropped} events at capacity)")


if __name__ == "__main__":
    main()
