#!/usr/bin/env python3
"""Quickstart: watch vScale adapt a VM's vCPUs to its real CPU availability.

Builds a 4-pCPU host with two VMs:

* ``worker`` — a 4-vCPU VM running four CPU-hungry threads, managed by the
  full vScale stack (hypervisor extension + channel + daemon + balancer);
* ``rival``  — a 4-vCPU VM that alternates between saturating the pool and
  going idle.

While the rival is busy the worker's fair share is two pCPUs, so the
daemon freezes two vCPUs; when the rival idles, the released slack flows
to the worker and the daemon brings them back.  Run it::

    python examples/quickstart.py
"""

from repro.core.daemon import VScaleDaemon
from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.units import MS, SEC


def busy_forever():
    """A thread that always wants CPU."""
    while True:
        yield Compute(10 * MS)


def on_off(kernel, busy_ns, idle_ns):
    """A thread alternating between a busy phase and sleep."""
    cycle = 0
    while True:
        yield Compute(busy_ns)
        timer = SpinFlag(f"rest{cycle}")
        kernel.start_timer(idle_ns, timer)
        yield BlockOn(timer)
        cycle += 1


def main() -> None:
    machine = Machine(HostConfig(pcpus=4), seed=42)
    worker_domain = machine.create_domain("worker", vcpus=4, weight=256)
    rival_domain = machine.create_domain("rival", vcpus=4, weight=256)
    worker = GuestKernel(worker_domain)
    rival = GuestKernel(rival_domain)

    for index in range(4):
        worker.spawn(busy_forever(), f"crunch{index}")
    for index in range(4):
        rival.spawn(on_off(rival, busy_ns=2 * SEC, idle_ns=2 * SEC), f"wave{index}")

    machine.install_vscale()
    daemon = VScaleDaemon(worker)
    daemon.install()
    machine.start()

    print("time    worker-online  worker-extendability  rival-busy?")
    for step in range(16):
        machine.run(until=(step + 1) * 500 * MS)
        ext = worker_domain.extendability_ns
        ext_pcpus = ext / machine.config.vscale_period_ns if ext else float("nan")
        rival_running = any(
            v.state.value == "running" for v in rival_domain.vcpus
        )
        print(
            f"{machine.sim.now / 1e9:5.1f}s        {worker.online_vcpus}"
            f"              {ext_pcpus:4.2f} pCPUs          {rival_running}"
        )

    print()
    print(f"daemon decisions: {daemon.decisions}, reconfigurations: {daemon.reconfigurations}")
    print("vCPU-count trace (time, online):")
    for t, n in daemon.vcpu_trace():
        print(f"  {t / 1e9:6.3f}s -> {n}")
    now = machine.sim.now
    wait = worker_domain.total_wait_ns(now) / 1e9
    run = worker_domain.total_run_ns(now) / 1e9
    print(f"\nworker CPU time: {run:.2f}s, waiting time: {wait:.2f}s")


if __name__ == "__main__":
    main()
