"""Setup shim for environments whose setuptools lacks PEP 660 support.

``pip install -e .`` on this toolchain requires the ``wheel`` package; the
legacy ``python setup.py develop`` path works everywhere.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
