"""Benchmark for Figure 14: Apache under httperf — reply rate, connection
time and response time vs. request rate, four configurations."""

from benchmarks.conftest import work_scale
from repro.experiments import fig14
from repro.experiments.setups import Config
from repro.units import SEC


def test_fig14_apache(bench_once):
    duration = max(1, round(3 * work_scale())) * SEC
    result = bench_once(fig14.run, None, None, duration)
    print()
    print(result.render())

    # (a) Reply rate: linear at low load for everyone...
    for config in (Config.VANILLA, Config.VSCALE):
        for rate in (1000, 3000):
            assert result.reply_rate(config, rate) >= rate * 0.93, (config, rate)
    # ... and vScale sustains a peak at/above vanilla's, near the point
    # that saturates the 1GbE link (~7K/s for 16KB replies).
    vanilla_peak = result.peak_reply_rate(Config.VANILLA)
    vscale_peak = result.peak_reply_rate(Config.VSCALE)
    # vScale sustains a peak near the paper's 6.6K/s.  (Our vanilla's
    # collapse is compressed — see EXPERIMENTS.md — so we only require
    # vScale to be competitive on raw peak while clearly winning on the
    # latency panels below.)
    assert vscale_peak >= vanilla_peak * 0.90
    assert vscale_peak >= 6000
    # vScale+pvlock is the best overall (paper: 6.9K/s, close to optimal).
    best_peak = result.peak_reply_rate(Config.VSCALE_PVLOCK)
    assert best_peak >= vscale_peak * 0.95

    # (b) Connection time: vanilla's interrupt delays blow it up under
    # load; vScale keeps it flat (paper: lowest in all group tests).
    assert result.mean_connection_ms(Config.VSCALE, 9000) < result.mean_connection_ms(
        Config.VANILLA, 9000
    )
    assert result.mean_connection_ms(Config.VSCALE, 9000) < 2.0
    assert result.mean_connection_ms(Config.VANILLA, 9000) > 2.0

    # (c) Response time: vScale at or below vanilla at high load.
    assert (
        result.mean_response_ms(Config.VSCALE, 9000)
        <= result.mean_response_ms(Config.VANILLA, 9000) * 1.1
    )
    # Past overload everyone drops requests (open-loop client).
    assert result.points[(Config.VANILLA, 10000)].drops > 0
