"""Generality benchmark: vScale on two different hypervisor schedulers.

The paper argues Algorithm 1 "is generic" and can integrate with other
proportional-share schedulers, including virtual-runtime based ones.  This
bench runs the same consolidated NPB experiment on both the Xen-style
credit scheduler and the virtual-runtime (Credit2-class) scheduler and
checks that vScale's mechanism delivers on both substrates.
"""

from dataclasses import replace

from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE

from benchmarks.conftest import work_scale


def run_cell(scheduler: str, config: Config, app_name: str, seed: int = 3):
    builder = (
        ScenarioBuilder(seed=seed, scheduler=scheduler)
        .with_worker_vm(4)
        .with_config(config)
    )
    scenario = builder.build()
    scenario.start()
    scenario.run(2 * SEC)
    seeds = SeedSequenceFactory(seed)
    profile = NPB_PROFILES[app_name]
    scale = work_scale()
    if scale != 1.0:
        profile = replace(profile, iterations=max(2, round(profile.iterations * scale)))
    domain = scenario.worker_domain
    machine = scenario.machine
    wait0 = domain.total_wait_ns(machine.sim.now)
    app = NPBApp(
        scenario.worker_kernel,
        profile,
        SPINCOUNT_ACTIVE,
        seeds.generator("npb"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    app.launch()
    duration = run_until_done(scenario, app)
    wait = domain.total_wait_ns(machine.sim.now) - wait0
    return duration, wait


def test_vscale_generalizes_across_schedulers(bench_once):
    def run():
        results = {}
        for scheduler in ("credit", "vrt"):
            for config in (Config.VANILLA, Config.VSCALE):
                results[(scheduler, config)] = run_cell(scheduler, config, "cg")
        return results

    results = bench_once(run)
    table = Table(
        "vScale on two proportional-share schedulers (NPB cg, heavy spin)",
        ["scheduler", "config", "duration (s)", "VM wait (s)"],
    )
    for (scheduler, config), (duration, wait) in results.items():
        table.add_row(scheduler, config.value, duration / 1e9, wait / 1e9)
    print()
    print(table.render())

    for scheduler in ("credit", "vrt"):
        vanilla_d, vanilla_w = results[(scheduler, Config.VANILLA)]
        vscale_d, vscale_w = results[(scheduler, Config.VSCALE)]
        # The mechanism generalizes: on both substrates vScale slashes the
        # VM's scheduling-queue waiting time.
        assert vscale_w < vanilla_w * 0.35, scheduler
    # The *runtime* benefit depends on how much delay the substrate
    # inflicts: the credit scheduler's 30ms slices amplify stragglers, so
    # vScale wins outright there; the virtual-runtime scheduler already
    # interleaves finely (less straggling to save), so vScale only has to
    # stay in the same ballpark.
    credit_vanilla, _ = results[("credit", Config.VANILLA)]
    credit_vscale, _ = results[("credit", Config.VSCALE)]
    assert credit_vscale <= credit_vanilla * 1.05
    vrt_vanilla, _ = results[("vrt", Config.VANILLA)]
    vrt_vscale, _ = results[("vrt", Config.VSCALE)]
    assert vrt_vscale <= vrt_vanilla * 1.4
