"""Benchmark for Figure 7: NPB-OMP normalized execution time, 8-vCPU VM.

Same matrix as Figure 6 on an 8-vCPU worker (with 4 background desktops
keeping the 2 vCPUs/pCPU consolidation).  To bound runtime the bench runs
the heavy-spin panel over the full suite and the other two panels over a
representative subset.
"""

import statistics

from benchmarks.conftest import work_scale
from repro.experiments import fig6_7
from repro.experiments.setups import ALL_CONFIGS, Config
from repro.workloads.openmp import SPINCOUNT_ACTIVE, SPINCOUNT_DEFAULT

SUBSET = ["bt", "cg", "ep", "lu", "ua"]


def test_fig7_npb_8vcpu(bench_once):
    def run():
        full = fig6_7.run(
            vcpus=8,
            spincounts=(SPINCOUNT_ACTIVE,),
            configs=[Config.VANILLA, Config.VSCALE],
            work_scale=work_scale(),
        )
        partial = fig6_7.run(
            vcpus=8,
            apps=SUBSET,
            spincounts=(SPINCOUNT_DEFAULT,),
            configs=[Config.VANILLA, Config.VSCALE],
            work_scale=work_scale(),
        )
        full.cells.update(partial.cells)
        return full

    result = bench_once(run)
    print()
    print(result.render())

    heavy = [
        result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE)
        for app in fig6_7.SYNC_HEAVY
    ]
    assert statistics.mean(heavy) < 0.8
    for app in fig6_7.INSENSITIVE:
        norm = result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE)
        assert 0.65 <= norm <= 1.3, (app, norm)
