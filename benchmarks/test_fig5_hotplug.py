"""Benchmark for Figure 5: CPU hotplug latency CDFs across kernels."""

from repro.core.balancer import BalancerCosts
from repro.experiments import fig5
from repro.metrics.ascii import cdf_plot


def test_fig5_hotplug_latency_cdfs(bench_once):
    result = bench_once(fig5.run, 100)
    print()
    print(result.render())
    for version in ("v2.6.32", "v3.14.15"):
        points = [(ns / 1e6, f) for ns, f in result.cdf(version, "remove")]
        print()
        print(cdf_plot(f"unhotplug latency CDF, {version} (ms)", points))
    # Removal: always milliseconds, with heavy tails — over 100ms on the
    # older kernels, tens of ms even on the newest.
    for version, reservoir in result.remove.items():
        assert reservoir.min() >= 1e6
        assert reservoir.max() >= 20e6
    assert result.remove["v2.6.32"].max() >= 80e6
    # Addition: 350-500us at best on 3.14.15, tens of ms elsewhere.
    assert 300e3 <= result.add["v3.14.15"].min() <= 600e3
    for version in ("v2.6.32", "v3.2.60", "v4.2"):
        assert result.add[version].percentile(0.5) >= 5e6
    # vScale's freeze is 100x to 100,000x faster than any hotplug op.
    vscale_ns = BalancerCosts().total_ns
    for version in result.remove:
        ratio = result.remove[version].percentile(0.5) / vscale_ns
        assert 100 <= ratio <= 100_000
