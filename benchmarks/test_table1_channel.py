"""Benchmark for Table 1: vScale channel read overhead."""

from repro.experiments import table1


def test_table1_channel_read_overhead(bench_once):
    result = bench_once(table1.run, 1_000_000)
    print()
    print(result.render())
    # Paper: 0.69us syscall, +0.22us hypercall = 0.91us total.
    assert 0.6 <= result.syscall_us <= 0.8
    assert 0.18 <= result.hypercall_us <= 0.26
    assert 0.8 <= result.total_us <= 1.0
