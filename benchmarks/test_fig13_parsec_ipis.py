"""Benchmark for Figure 13: PARSEC per-vCPU IPI rates (vanilla runs).

The IPI profile explains Figure 11: communication-driven applications are
the ones vScale helps.  The paper's signature numbers: dedup ~940
IPIs/s/vCPU (mm semaphore pressure), streamcluster ~183 (hand-rolled
barrier), and near-zero for the well-partitioned codes.
"""

from benchmarks.conftest import work_scale
from repro.experiments import fig11_13
from repro.experiments.setups import Config
from repro.metrics.report import Table
from repro.workloads.parsec import PARSEC_PROFILES


def test_fig13_parsec_ipi_rates(bench_once):
    result = bench_once(
        fig11_13.run, 4, None, [Config.VANILLA], 3, work_scale()
    )
    table = Table(
        "Figure 13: vIPIs per second per vCPU (PARSEC, vanilla)",
        ["app", "vIPI/s/vCPU"],
    )
    rates = {app: result.ipi_rate(app) for app in PARSEC_PROFILES}
    for app, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        table.add_row(app, f"{rate:.0f}")
    print()
    print(table.render())

    # dedup dominates the profile by a wide margin.
    assert rates["dedup"] == max(rates.values())
    assert rates["dedup"] > 300
    # streamcluster's barrier traffic is clearly visible.
    assert rates["streamcluster"] > 50
    # Well-partitioned / sync-free codes barely communicate.
    for app in ("blackscholes", "raytrace", "swaptions", "freqmine"):
        assert rates[app] < 60, (app, rates[app])
    # Ordering: communication-driven group above the quiet group.
    quiet_max = max(rates[a] for a in ("blackscholes", "raytrace", "swaptions"))
    assert rates["dedup"] > quiet_max * 5
