"""Benchmark for Figure 10: NPB virtual-IPI rates per spin policy."""

from benchmarks.conftest import work_scale
from repro.experiments import fig10
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.openmp import (
    SPINCOUNT_ACTIVE,
    SPINCOUNT_DEFAULT,
    SPINCOUNT_PASSIVE,
)

SPINCOUNTS = (SPINCOUNT_ACTIVE, SPINCOUNT_DEFAULT, SPINCOUNT_PASSIVE)


def test_fig10_npb_ipi_rates(bench_once):
    result = bench_once(fig10.run, None, SPINCOUNTS, 4, 3, work_scale())
    print()
    print(result.render())
    # Heavy spinning needs no wake-ups: IPI rates stay low everywhere.
    for app in NPB_PROFILES:
        assert result.rate(app, SPINCOUNT_ACTIVE) < 120, app
    # The futex-reliant apps light up at GOMP_SPINCOUNT=0 (paper: mg, sp
    # and ua reach hundreds to ~1000/s/vCPU).
    for app in ("mg", "sp", "ua", "cg"):
        passive = result.rate(app, SPINCOUNT_PASSIVE)
        active = result.rate(app, SPINCOUNT_ACTIVE)
        assert passive > 100, (app, passive)
        assert passive > active * 3, app
    # ep barely synchronizes under any policy.
    assert result.rate("ep", SPINCOUNT_PASSIVE) < 60
