"""Benchmark for Figure 4: dom0/libxl monitoring cost."""

from repro.experiments import fig4
from repro.hypervisor.dom0 import Dom0Load


def test_fig4_libxl_read_costs(bench_once):
    result = bench_once(fig4.run, 10_000)
    print()
    print(result.render())
    # Shape: linear growth with #VMs, inflated by dom0 I/O load.
    for load in Dom0Load:
        series = result.points[load]
        assert series[1]["avg_ns"] < series[20]["avg_ns"] < series[50]["avg_ns"]
    assert (
        result.avg_ms(Dom0Load.IDLE, 50)
        < result.avg_ms(Dom0Load.DISK_IO, 50)
        < result.avg_ms(Dom0Load.NET_IO, 50)
    )
    # Paper anchors: >6ms average at 50 VMs under network I/O, with the
    # maximum an order of magnitude above the idle case's per-VM walk.
    assert result.avg_ms(Dom0Load.NET_IO, 50) > 6.0
    assert result.max_ms(Dom0Load.NET_IO, 50) > 12.0
    # One-VM idle read ~0.5ms: already ~500x the vScale channel's ~1us.
    assert 0.3 < result.points[Dom0Load.IDLE][1]["avg_ns"] / 1e6 < 1.0
