"""Benchmark for Figure 6: NPB-OMP normalized execution time, 4-vCPU VM.

Three panels (GOMP_SPINCOUNT = 30B / 300K / 0) x four configurations over
the ten NPB applications.  Shape assertions follow the paper:
synchronization-intensive apps speed up heavily under vScale with active
spinning; ep/ft/is are insensitive; pv-spinlock only matters once spinning
moves into the kernel (smaller spin counts).
"""

import statistics

from benchmarks.conftest import work_scale
from repro.experiments import fig6_7
from repro.experiments.setups import Config
from repro.workloads.openmp import (
    SPINCOUNT_ACTIVE,
    SPINCOUNT_DEFAULT,
    SPINCOUNT_PASSIVE,
)


def test_fig6_npb_4vcpu(bench_once):
    result = bench_once(fig6_7.run, 4, None, fig6_7.SPINCOUNTS, None, 3, work_scale())
    print()
    print(result.render())
    from repro.metrics.ascii import hbar_chart
    from repro.workloads.npb import NPB_PROFILES

    rows = [
        (app, result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE))
        for app in NPB_PROFILES
    ]
    print()
    print(
        hbar_chart(
            "vScale normalized time, GOMP_SPINCOUNT=30B (1.0 = vanilla)",
            rows,
            max_value=1.2,
            unit="x",
        )
    )

    # Panel (a), heavy spinning: clear wins on the sync-heavy apps.  The
    # vanilla baseline is chaotic (straggler amplification swings its
    # runtime ~2x across seeds), so the robust assertions are the group
    # ordering and a modest absolute bound, not a single-seed magnitude.
    heavy = [
        result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE)
        for app in fig6_7.SYNC_HEAVY
    ]
    insensitive = [
        result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE)
        for app in fig6_7.INSENSITIVE
    ]
    assert statistics.mean(heavy) < 0.88
    assert min(heavy) < 0.8  # at least one strong winner
    assert statistics.mean(heavy) < statistics.mean(insensitive) - 0.08

    # Insensitive apps barely move at any policy.
    for app in fig6_7.INSENSITIVE:
        for spincount in fig6_7.SPINCOUNTS:
            norm = result.normalized(app, spincount, Config.VSCALE)
            assert 0.7 <= norm <= 1.25, (app, spincount, norm)

    # pv-spinlock alone is nearly irrelevant under pure user-level
    # spinning (the spinning never enters the kernel).
    pv_heavy = [
        result.normalized(app, SPINCOUNT_ACTIVE, Config.PVLOCK)
        for app in fig6_7.SYNC_HEAVY
    ]
    assert statistics.mean(pv_heavy) > statistics.mean(heavy)

    # vScale+pvlock is never much worse than vScale alone.
    for app in fig6_7.SYNC_HEAVY:
        both = result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE_PVLOCK)
        alone = result.normalized(app, SPINCOUNT_ACTIVE, Config.VSCALE)
        assert both <= alone * 1.35

    # Panel (c), passive waiting: effects compress towards 1.0 (our
    # simulation slightly over-charges thread packing here; the paper
    # still shows small vScale wins — see EXPERIMENTS.md).
    for app in fig6_7.SYNC_HEAVY:
        norm = result.normalized(app, SPINCOUNT_PASSIVE, Config.VSCALE)
        assert 0.6 <= norm <= 1.4, (app, norm)
