"""Benchmark for Figure 8: the active-vCPU trace of bt under vScale."""

from benchmarks.conftest import work_scale
from repro.experiments import fig8
from repro.metrics.ascii import step_trace


def test_fig8_active_vcpu_traces(bench_once):
    def run():
        return fig8.run(vcpus=4, work_scale=work_scale()), fig8.run(
            vcpus=8, work_scale=work_scale()
        )

    result4, result8 = bench_once(run)
    print()
    print(result4.render())
    print(result8.render())
    for result in (result4, result8):
        points = [(t / 1e9, n) for t, n in result.trace]
        print()
        print(
            step_trace(
                f"active vCPUs over time (bt, {result.vcpus}-vCPU VM, seconds)",
                points,
                levels=range(1, result.vcpus + 1),
            )
        )
    # The VM adapts: the trace records actual changes, oscillating within
    # [1, provisioned] and touching at least two distinct levels.
    for result, provisioned in ((result4, 4), (result8, 8)):
        assert result.trace, "no scaling activity recorded"
        levels = result.levels()
        assert all(1 <= n <= provisioned for n in levels)
        assert len(levels) >= 2
    # The 8-vCPU VM explores higher counts than the 4-vCPU VM can.
    assert max(result8.levels()) > max(result4.levels())
