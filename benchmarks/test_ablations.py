"""Design-choice ablation benchmarks (DESIGN.md section 5).

Not in the paper — these isolate vScale's individual decisions:
policy (consumption-aware vs. weight-only), mechanism (microsecond freeze
vs. Linux hotplug), extendability rounding, and daemon period.
"""

from repro.experiments import ablations
from repro.metrics.report import Table


def _print(points, title):
    table = Table(title, ["variant", "duration (s)", "VM wait (s)", "reconfigs"])
    for point in points:
        table.add_row(
            point.label,
            point.duration_ns / 1e9,
            point.wait_ns / 1e9,
            point.reconfigurations,
        )
    print()
    print(table.render())


def test_mechanism_ablation(bench_once):
    """Same policy, different mechanism: the balancer's microsecond cost
    must beat both no-scaling and hotplug-based scaling."""
    points = bench_once(ablations.run_mechanism_ablation)
    _print(points, "Ablation: reconfiguration mechanism (cg, heavy spin)")
    fixed, hotplug, vscale = points
    assert vscale.duration_ns < fixed.duration_ns
    assert vscale.wait_ns < fixed.wait_ns * 0.3
    # Hotplug pays stop_machine stalls and reacts late; it must not beat
    # the balancer.
    assert vscale.duration_ns <= hotplug.duration_ns * 1.05


def test_policy_ablation(bench_once):
    """Consumption-aware extendability vs. VCPU-Bal's weight-only target."""
    points = bench_once(ablations.run_policy_ablation)
    _print(points, "Ablation: scaling policy (cg, heavy spin)")
    vscale, vcpubal = points
    # With this weight configuration both policies land on similar
    # targets; the decentralized, consumption-aware daemon must not lose
    # to the centralized weight-only manager, whose per-decision cost
    # (libxl sweep + hotplug) is orders of magnitude higher.
    assert vscale.duration_ns <= vcpubal.duration_ns * 1.15


def test_rounding_ablation(bench_once):
    """ceil vs floor vs conservative rounding of the vCPU target."""
    points = bench_once(ablations.run_rounding_ablation)
    _print(points, "Ablation: extendability rounding (ua, heavy spin)")
    by_label = {p.label: p for p in points}
    # For busy-waiting workloads the extra partially-backed vCPU of pure
    # ceil dilutes every sibling; conservative must not lose to it.
    assert (
        by_label["round=conservative"].duration_ns
        <= by_label["round=ceil"].duration_ns * 1.1
    )


def test_period_ablation(bench_once):
    """Daemon polling period: 10ms tracks the bursts; 1s misses them."""
    points = bench_once(ablations.run_period_ablation)
    _print(points, "Ablation: daemon polling period (cg, heavy spin)")
    by_label = {p.label: p for p in points}
    fast = by_label["period=10ms"]
    slow = by_label["period=1000ms"]
    assert fast.reconfigurations >= slow.reconfigurations
    assert fast.duration_ns <= slow.duration_ns * 1.15
