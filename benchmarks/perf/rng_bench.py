"""RNG-path microbenchmarks: the per-sample cost the experiments pay."""

from __future__ import annotations

from repro.faults.plan import FaultConfig, FaultPlan
from repro.faults.injector import FaultInjector
from repro.sim.rng import SeedSequenceFactory, jittered


def fault_decisions(calls: int = 100_000) -> int:
    """The injector's hot path: one probability draw per decision site.

    Exercises whatever lookup/draw strategy ``FaultInjector`` uses —
    per-call ``generator(f"faults.{site}")`` before the overhaul, cached
    buffered streams after it.
    """
    plan = FaultPlan(
        seed=7,
        config=FaultConfig(ipi_drop_rate=0.01, ipi_delay_rate=0.02,
                           channel_fail_rate=0.01, channel_stale_rate=0.02),
    )
    injector = FaultInjector(plan)
    for _ in range(calls // 2):
        injector.channel_fault()
        injector.freeze_fault()
    return calls


def cost_jitter(calls: int = 100_000) -> int:
    """``jittered()`` cost sampling, as done on every channel read."""
    seeds = SeedSequenceFactory(11)
    rng = (
        seeds.stream("bench.jitter", "normal")
        if hasattr(seeds, "stream")
        else seeds.generator("bench.jitter")
    )
    total = 0
    for _ in range(calls):
        total += jittered(rng, 1200, 0.06)
    return calls
