"""Per-object memory footprint of the hot simulation classes.

Verifies the ``__slots__`` work: reports heap bytes per instance
(including referenced sub-objects a constructor allocates), measured with
``tracemalloc`` over a large population.  Not a timing benchmark — the
harness stores the numbers in ``BENCH_sim.json`` for trend tracking.
"""

from __future__ import annotations

import gc
import tracemalloc


def _bytes_per(make, count: int = 20_000) -> float:
    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    objects = [make(i) for i in range(count)]
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del objects
    gc.collect()
    return (after - before) / count


def object_sizes(count: int = 20_000) -> dict[str, float]:
    from repro.guest.runqueue import RunQueue
    from repro.guest.threads import Thread
    from repro.hypervisor.domain import VCPU
    from repro.hypervisor.irq import IRQ, IRQClass
    from repro.sim.engine import Simulator

    def make_thread(i: int) -> Thread:
        return Thread(None, (x for x in ()), f"t{i}")

    sim = Simulator()

    def make_event(i: int):
        return sim.schedule(i + 1, _bytes_per)

    return {
        "thread_bytes": _bytes_per(make_thread, count),
        "runqueue_bytes": _bytes_per(lambda i: RunQueue(i), count),
        "vcpu_bytes": _bytes_per(lambda i: VCPU(None, i), count),
        "irq_bytes": _bytes_per(lambda i: IRQ(IRQClass.RESCHED_IPI, i), count),
        "scheduled_event_bytes": _bytes_per(make_event, count),
    }
