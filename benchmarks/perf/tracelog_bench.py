"""Tracing overhead: the fig6 cell with a binary trace streaming to disk.

Two entry points:

* :func:`fig6_traced_cell` — the traced cell alone, timed by the suite
  harness like any other bench, so its absolute cost is tracked commit
  over commit in BENCH_sim.json.
* :func:`trace_overhead` — the gate.  Runs traced/untraced *pairs*
  back-to-back and takes the best of each, so machine noise (frequency
  scaling, co-tenants) cancels instead of masquerading as tracing cost.
  CI fails when the ratio exceeds ``--max-trace-overhead`` (10%).

The trace goes to a single temp file that is *reused* across runs and
deleted only at process exit: the writer truncates it on open, and
creating/unlinking a file per run would charge filesystem metadata cost
(tens of milliseconds on overlay filesystems) to the tracing column.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import time

_bench_path: str | None = None


def _trace_path() -> str:
    """A reusable temp trace path, removed at interpreter exit."""
    global _bench_path
    if _bench_path is None:
        fd, path = tempfile.mkstemp(suffix=".rtl", prefix="bench-")
        os.close(fd)
        _bench_path = path
        atexit.register(_cleanup)
    return _bench_path


def _cleanup() -> None:
    global _bench_path
    if _bench_path is not None:
        try:
            os.unlink(_bench_path)
        except OSError:
            pass
        _bench_path = None


def _run_cell(scale: float):
    from repro.experiments.npb_common import run_cell
    from repro.experiments.setups import Config
    from repro.workloads.openmp import SPINCOUNT_ACTIVE

    return run_cell(
        "cg", 4, SPINCOUNT_ACTIVE, Config.VSCALE, seed=3, work_scale=scale
    )


def _run_traced(scale: float):
    from repro.tracelog.capture import capture_to

    with capture_to(_trace_path()):
        return _run_cell(scale)


def fig6_traced_cell(quick: bool = False) -> float:
    """The e2e fig6 cell under an active REPRO_TRACE-equivalent capture."""
    cell = _run_traced(0.1 if quick else 0.2)
    return float(cell.duration_ns)


def trace_overhead(quick: bool = False, pairs: int = 12) -> dict:
    """Tracing overhead from interleaved traced/untraced pairs.

    Machine noise (co-tenants, frequency scaling) is additive, so the
    minimum over repeated runs converges on the true cost of each
    variant; interleaving the variants keeps slow drift from loading
    one side only.  Returns ``{"untraced_s", "traced_s", "overhead"}``
    where ``overhead = min(traced) / min(untraced) - 1``.

    The gate runs a *bigger* cell than the tracked-seconds bench: a
    miniaturized cell keeps full scheduling activity over a shrunken
    workload, so its event-per-millisecond density (and therefore the
    overhead ratio) overstates what full experiment cells pay.
    """
    scale = 0.5 if quick else 1.0
    _run_cell(scale)  # warm-up: imports, allocator, caches
    _run_traced(scale)
    base = traced = float("inf")
    for _ in range(pairs):
        start = time.perf_counter()
        _run_cell(scale)
        base = min(base, time.perf_counter() - start)
        start = time.perf_counter()
        _run_traced(scale)
        traced = min(traced, time.perf_counter() - start)
    return {
        "untraced_s": round(base, 6),
        "traced_s": round(traced, 6),
        "overhead": round(traced / base - 1.0, 4),
    }
