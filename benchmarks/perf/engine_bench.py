"""Engine-throughput microbenchmarks.

Each function drives the discrete-event core through one access pattern the
experiments exercise, and returns the number of *items* processed so the
harness (``scripts/perf_bench.py``) can report throughput.  They use only
the public ``Simulator`` API (``schedule``/``cancel``/``run``/``peek_time``/
``pending_count``), so the same file times any engine revision — including
pre-overhaul trees, which is how the "before" column of ``BENCH_sim.json``
is produced.
"""

from __future__ import annotations

from repro.sim.engine import Simulator


def _noop() -> None:
    pass


def tick_chains(events: int = 200_000, chains: int = 32) -> int:
    """Concurrent self-rescheduling timers — the guest-tick pattern.

    ``chains`` parallel 1 ms-ish periods with co-prime strides, so the
    queue always holds ``chains`` events and insertions interleave.
    """
    sim = Simulator()
    remaining = [events]

    def tick(period: int) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(period, tick, period)

    for chain in range(chains):
        sim.schedule(1, tick, 1_000_000 + 7 * chain)
    sim.run()
    return events


def deep_queue(events: int = 30_000) -> int:
    """Bulk-schedule a deep queue of scattered timers, then drain it."""
    sim = Simulator()
    state = 0x2545F4914F6CDD1D
    for _ in range(events):
        # xorshift: cheap, deterministic, engine-independent delays.
        state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 7
        state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
        sim.schedule(state % 2_000_000_000, _noop)
    sim.run()
    return events


def cancel_churn(events: int = 40_000) -> int:
    """Schedule timers and cancel most of them — the rearm pattern.

    Guest tick rearms and slice timers cancel far more events than they
    fire; this stresses tombstone handling and compaction.
    """
    sim = Simulator()
    pending = []
    for round_index in range(4):
        for i in range(events // 4):
            pending.append(sim.schedule(10_000_000 + i * 1_000, _noop))
        # Cancel 75% of what we just scheduled, scattered.
        for i, event in enumerate(pending):
            if i % 4 != 0:
                event.cancel()
        pending.clear()
        sim.run(until=sim.now + 5_000_000)
    sim.run()
    return events


def peek_monitor(events: int = 20_000, chains: int = 8) -> int:
    """Tick chains with a ``peek_time``/``pending_count`` probe per event.

    The idle-detection paths ask the engine "when is the next event?"
    constantly; before the overhaul ``peek_time`` sorted the whole queue.
    """
    sim = Simulator()
    remaining = [events]
    # Keep a standing population so peeks have something to look at.
    for i in range(512):
        sim.schedule(3_000_000_000 + i * 1_000_000, _noop)

    def tick(period: int) -> None:
        sim.peek_time()
        sim.pending_count()
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(period, tick, period)

    for chain in range(chains):
        sim.schedule(1, tick, 1_000_000 + 13 * chain)
    sim.run(until=3_000_000_000 - 1)
    return events
