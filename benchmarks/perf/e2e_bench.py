"""End-to-end experiment cells, sized for wall-clock benchmarking.

Each function runs one representative cell of a major experiment grid,
single-process (no executor, no cache), and returns a scalar digest so
the harness can sanity-log that the run did real work.  ``quick`` halves
the simulated scale for the CI smoke lane.
"""

from __future__ import annotations


def fig6_npb_cell(quick: bool = False) -> float:
    """One fig6 NPB cell: 8-thread CG on a 4-vCPU VM under vScale."""
    from repro.experiments.npb_common import run_cell
    from repro.experiments.setups import Config
    from repro.workloads.openmp import SPINCOUNT_ACTIVE

    scale = 0.1 if quick else 0.2
    cell = run_cell("cg", 4, SPINCOUNT_ACTIVE, Config.VSCALE, seed=3, work_scale=scale)
    return float(cell.duration_ns)


def faults_cell(quick: bool = False) -> float:
    """One fault-matrix cell: CG under vScale with 5% fault rates."""
    from repro.experiments import faults

    scale = 0.05 if quick else 0.1
    cell = faults.run_matrix_cell("cg", "vscale", 0.05, seed=3, work_scale=scale)
    return float(cell.duration_ns)


def decentralized_50vm(quick: bool = False) -> float:
    """The 50-VM self-scaling host: every VM runs its own daemon."""
    from repro.experiments import decentralization
    from repro.units import SEC

    vms = 20 if quick else 50
    duration = SEC if quick else 2 * SEC
    result = decentralization.run(
        vms=vms, pcpus=16, vcpus_per_vm=2, duration_ns=duration, seed=5
    )
    return result.worst_share_error


def fig4_dom0_sweep(quick: bool = False) -> float:
    """The fig4 dom0 cost model: libxl sweeps over 50 VMs under net I/O."""
    from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
    from repro.sim.rng import SeedSequenceFactory

    iterations = 500 if quick else 2000
    toolstack = Dom0Toolstack(
        SeedSequenceFactory(4).generator("libxl"), load=Dom0Load.NET_IO
    )
    return toolstack.measure(50, iterations)["avg_ns"]
