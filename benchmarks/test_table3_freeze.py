"""Benchmark for Table 3: the freeze-operation cost breakdown."""

import pytest

from repro.experiments import table3


def test_table3_freeze_cost_breakdown(bench_once):
    result = bench_once(table3.run, 200)
    print()
    print(result.render())
    # Master-side cumulative cost: 2.10us in the paper.
    assert result.breakdown[-1][2] == pytest.approx(2.10, abs=0.1)
    assert result.live_master_us == pytest.approx(2.10, rel=0.1)
    # The whole freeze — IPI, thread migration, parking — stays at the
    # microsecond scale (hotplug needs milliseconds to 100+ ms).
    assert result.live_freeze_latency_us < 100
    # Per-thread migration ~1us (paper: 0.9-1.1us).
    assert 0.8 <= result.migration_cost_us <= 1.2
