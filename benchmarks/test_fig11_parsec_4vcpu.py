"""Benchmark for Figure 11: PARSEC normalized execution time, 4-vCPU VM."""

import statistics

from benchmarks.conftest import work_scale
from repro.experiments import fig11_13
from repro.experiments.setups import Config


def test_fig11_parsec_4vcpu(bench_once):
    result = bench_once(fig11_13.run, 4, None, None, 3, work_scale())
    print()
    print(result.render())

    # Communication-driven apps benefit; the gains are diverse but the
    # group as a whole must come out ahead of vanilla.
    comm = [result.normalized(app, Config.VSCALE) for app in fig11_13.COMM_DRIVEN]
    assert statistics.mean(comm) < 1.0

    # dedup — the paper's standout IPI producer — at least holds even
    # while converting its inter-vCPU wake-ups into local ones (the
    # paper's 22% gain compresses here; see EXPERIMENTS.md).
    assert result.normalized("dedup", Config.VSCALE) <= 1.02

    # Marginal apps stay within a loose band under every configuration
    # (freqmine — OpenMP — can overshoot towards a win in our simulator).
    for app in fig11_13.MARGINAL:
        for config in (Config.VSCALE, Config.PVLOCK, Config.VSCALE_PVLOCK):
            norm = result.normalized(app, config)
            assert 0.5 <= norm <= 1.3, (app, config.value, norm)

    # IPI profile (Figure 13 inputs): dedup far ahead of everyone.
    dedup_rate = result.ipi_rate("dedup")
    assert dedup_rate > 300
    assert dedup_rate > result.ipi_rate("streamcluster")
    assert result.ipi_rate("swaptions") < 20
