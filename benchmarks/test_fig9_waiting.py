"""Benchmark for Figure 9: VM waiting-time reduction under vScale."""

from benchmarks.conftest import work_scale
from repro.experiments import fig9


def test_fig9_waiting_time_reduction(bench_once):
    result = bench_once(
        fig9.run, None, 4, 30_000_000_000, True, 3, work_scale()
    )
    print()
    print(result.render())
    # Paper: >90% reduction across all NPB applications, with or without
    # pv-spinlock.
    for app in result.plain:
        assert result.reduction(app) > 0.9, (app, result.reduction(app))
    for app in result.pvlock:
        assert result.reduction(app, with_pvlock=True) > 0.9, app
