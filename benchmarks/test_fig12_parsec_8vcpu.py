"""Benchmark for Figure 12: PARSEC normalized execution time, 8-vCPU VM.

Runs vanilla vs. vScale over the full suite (the pvlock variants add
little information at this size and double the cost)."""

import statistics

from benchmarks.conftest import work_scale
from repro.experiments import fig11_13
from repro.experiments.setups import Config


def test_fig12_parsec_8vcpu(bench_once):
    result = bench_once(
        fig11_13.run, 8, None, [Config.VANILLA, Config.VSCALE], 3, work_scale()
    )
    print()
    print(result.render())
    comm = [result.normalized(app, Config.VSCALE) for app in fig11_13.COMM_DRIVEN]
    assert statistics.mean(comm) < 1.05
    for app in fig11_13.MARGINAL:
        norm = result.normalized(app, Config.VSCALE)
        assert 0.55 <= norm <= 1.4, (app, norm)
