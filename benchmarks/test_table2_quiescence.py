"""Benchmark for Table 2: interrupt quiescence of a frozen vCPU."""

import pytest

from repro.experiments import table2


def test_table2_frozen_vcpu_quiescence(bench_once):
    result = bench_once(table2.run)
    print()
    print(result.render())
    # Active vCPUs tick at the guest's 1000 HZ.
    for rate in result.timer_before:
        assert rate == pytest.approx(1000, abs=40)
    for rate in result.timer_after[:3]:
        assert rate == pytest.approx(1000, abs=40)
    # The frozen vCPU is fully quiescent without disabling interrupts.
    assert result.timer_after[3] == 0
    assert result.ipi_after[3] == 0
    # Reschedule IPIs keep flowing among the survivors.
    assert sum(result.ipi_before) > 10
    assert sum(result.ipi_after[:3]) > 10
