"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports and asserts the qualitative shape
(who wins, roughly by how much, where crossovers fall).

``REPRO_BENCH_SCALE`` (default 1.0) scales the simulated work so the full
suite can be smoke-tested quickly, e.g.::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest


def work_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
