"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports and asserts the qualitative shape
(who wins, roughly by how much, where crossovers fall).

``REPRO_BENCH_SCALE`` (default 1.0) scales the simulated work so the full
suite can be smoke-tested quickly, e.g.::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only

The experiment modules fan their grids out through ``repro.parallel``;
the suite inherits that, so:

``REPRO_JOBS``
    worker processes per grid (default: CPU count).
``REPRO_CACHE=1`` / ``REPRO_CACHE_DIR``
    memoize finished cells on disk; a re-run of the suite then replays
    cached cells instead of re-simulating them.  Results are bit-for-bit
    identical either way (the simulator is seeded and deterministic;
    ``tests/experiments/test_determinism.py`` enforces it), so the
    assertions are unaffected.

The session prints the executor's telemetry summary (cache hits/misses,
executed seconds) at the end of the run.
"""

from __future__ import annotations

import os

import pytest


def work_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Report the shared executor's cache/timing counters for the run."""
    from repro.parallel import get_default_executor

    telemetry = get_default_executor().telemetry
    if telemetry.records:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        line = telemetry.summary()
        if reporter is not None:
            reporter.write_line(line)
        else:  # pragma: no cover - fallback when run without a terminal
            print(line)
