"""Seed-variance benchmark: the honest error bar on the headline result.

Runs the synchronization-heavy cg cell under vanilla and vScale across
three seeds (the paper averages three runs) and asserts the robust claims:
vScale wins on every seed, and its own runtime is stable while vanilla's
swings — adaptation removes the chaos, not just the mean.
"""

import statistics

from benchmarks.conftest import work_scale
from repro.experiments import variance


def test_cg_reduction_across_seeds(bench_once):
    result = bench_once(
        variance.run, "cg", 30_000_000_000, (3, 4, 5), 4, work_scale()
    )
    print()
    print(result.render())

    # vScale wins on every seed.
    assert result.always_wins
    assert result.mean_reduction > 0.2

    # The vScale runtimes are far more stable than the vanilla ones: the
    # daemon shields the app from the background's chaos.
    vanillas = [v for v, _ in result.durations.values()]
    vscales = [s for _, s in result.durations.values()]
    vanilla_rel_spread = (max(vanillas) - min(vanillas)) / statistics.mean(vanillas)
    vscale_rel_spread = (max(vscales) - min(vscales)) / statistics.mean(vscales)
    assert vscale_rel_spread < vanilla_rel_spread
    assert vscale_rel_spread < 0.25
