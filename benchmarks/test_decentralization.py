"""Decentralization benchmark: many self-scaling VMs, no dom0 involved.

Backs the paper's scalability principle (SS3.1): per-VM daemons polling a
microsecond channel scale where a centralized dom0/libxl manager cannot —
its sweep cost grows with the number of VMs (Figure 4) while each vScale
VM pays a constant ~1us per decision.
"""

from repro.experiments import decentralization


def test_many_self_scaling_vms(bench_once):
    result = bench_once(decentralization.run, 8)
    print()
    print(result.render())

    # Every VM's daemon acted on its own (no central coordinator).
    assert all(count >= 1 for count in result.reconfigurations.values())

    # Consumption lands near each VM's entitlement: nobody is starved.
    errors = [
        abs(consumed - entitled) / entitled
        for consumed, entitled in result.shares.values()
    ]
    assert max(errors) < 0.40
    assert sum(errors) / len(errors) < 0.25

    # The whole point: decentralized monitoring is orders of magnitude
    # cheaper than the same decision rate through dom0/libxl sweeps.
    assert result.monitoring_speedup > 30
