"""Seeded randomness plumbing.

Every stochastic component (workload phase jitter, cost-model noise, arrival
processes) draws from its own :class:`numpy.random.Generator`, derived from a
single experiment seed through named streams.  Naming the streams — rather
than handing out generators in creation order — means adding a new component
does not perturb the random numbers seen by existing ones, which keeps
recorded experiment outputs stable across refactors.

Buffered streams
----------------
Hot paths that draw one sample at a time (cost jitter on every channel read,
fault-injection coin flips, workload phase lengths) pay numpy's per-call
overhead for a single double.  :class:`BufferedStream` prefetches a block of
*standard* variates and hands them out one by one.  This is bit-identical to
unbuffered code because numpy's ``Generator`` consumes the underlying
bitstream identically for ``n`` scalar draws and one size-``n`` block draw
(a property the test suite pins down), and because scaling is exact:
``normal(loc, scale) == loc + scale * standard_normal()`` and
``exponential(scale) == scale * standard_exponential()`` bit-for-bit.

The one rule: a buffered stream serves a single distribution *kind*.
Interleaving kinds on one generator would consume the bitstream in a
different order than sequential code, so the factory enforces the kind at
:meth:`SeedSequenceFactory.stream` time and refuses to hand out a raw
generator for a name that is already buffered (and vice versa).
"""

from __future__ import annotations

import zlib

import numpy as np

#: How many variates a buffered stream prefetches per refill.
_DEFAULT_BLOCK = 512


class BufferedStream:
    """Single-kind, block-buffered draws from one named random stream.

    Mirrors the ``numpy.random.Generator`` call signatures for its kind
    (``normal(loc, scale, size=None)``, ``exponential(scale, size=None)``,
    ``random(size=None)``), so it is a drop-in replacement at call sites.
    """

    __slots__ = ("name", "kind", "_rng", "_block", "_buf", "_len", "_pos")

    _KINDS = ("random", "normal", "exponential")

    def __init__(
        self,
        name: str,
        kind: str,
        rng: np.random.Generator,
        block: int = _DEFAULT_BLOCK,
    ):
        if kind not in self._KINDS:
            raise ValueError(f"unknown stream kind {kind!r}; expected {self._KINDS}")
        if block < 1:
            raise ValueError("block size must be positive")
        self.name = name
        self.kind = kind
        self._rng = rng
        self._block = block
        self._buf = None
        self._len = 0
        self._pos = 0

    def _draw(self, n: int) -> np.ndarray:
        rng = self._rng
        if self.kind == "normal":
            return rng.standard_normal(n)
        if self.kind == "exponential":
            return rng.standard_exponential(n)
        return rng.random(n)

    def _next(self) -> float:
        pos = self._pos
        if pos >= self._len:
            # tolist() converts to Python floats — the same IEEE doubles,
            # but scalar arithmetic on them runs at interpreter speed
            # instead of paying numpy's np.float64 boxing per operation.
            self._buf = self._draw(self._block).tolist()
            self._len = self._block
            pos = 0
        self._pos = pos + 1
        return self._buf[pos]

    def _take(self, n: int) -> np.ndarray:
        """The next ``n`` variates, consuming the stream sequentially."""
        avail = self._len - self._pos
        if n <= avail:
            out = np.asarray(self._buf[self._pos : self._pos + n])
            self._pos += n
            return out
        head = self._buf[self._pos : self._len] if avail else []
        self._pos = self._len = 0
        self._buf = None
        tail = self._draw(n - avail)
        if not head:
            return tail
        return np.concatenate([np.asarray(head), tail])

    def _require(self, kind: str) -> None:
        if self.kind != kind:
            raise RuntimeError(
                f"stream {self.name!r} buffers {self.kind!r} variates; "
                f"drawing {kind!r} from it would desynchronize the bitstream"
            )

    # -- numpy.random.Generator-compatible surface ----------------------
    def random(self, size: int | None = None):
        self._require("random")
        if size is None:
            return self._next()
        return self._take(size).copy()

    def normal(self, loc: float = 0.0, scale: float = 1.0, size: int | None = None):
        self._require("normal")
        if size is None:
            return loc + scale * self._next()
        return self.normal_batch(loc, scale, size)

    def exponential(self, scale: float = 1.0, size: int | None = None):
        self._require("exponential")
        if size is None:
            return scale * self._next()
        return self.exponential_batch(scale, size)

    # -- explicit batch draws -------------------------------------------
    def normal_batch(self, loc: float, scale: float, size: int) -> np.ndarray:
        self._require("normal")
        return loc + scale * self._take(size)

    def exponential_batch(self, scale: float, size: int) -> np.ndarray:
        self._require("exponential")
        return scale * self._take(size)

    def state_dict(self) -> dict:
        """JSON-able snapshot of the stream position.

        Captures the underlying bit-generator state plus any prefetched
        variates not yet handed out, so two streams with equal state
        dicts will produce identical future draws.
        """
        return {
            "kind": self.kind,
            "generator": _jsonable(self._rng.bit_generator.state),
            "pending": list(self._buf[self._pos : self._len]) if self._buf else [],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BufferedStream({self.name!r}, kind={self.kind!r})"


def _jsonable(value):
    """Recursively convert numpy scalars inside a state dict to Python."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class SeedSequenceFactory:
    """Derive independent, named random generators from one root seed."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._issued: dict[str, np.random.Generator] = {}
        self._streams: dict[str, BufferedStream] = {}

    def _make_generator(self, name: str) -> np.random.Generator:
        # Hash the name into a stable 32-bit spawn key.  zlib.crc32 is
        # deterministic across processes (unlike hash()).
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        return np.random.Generator(np.random.PCG64(seq))

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream within a factory, so a
        component may re-request its generator instead of storing it.
        """
        if name in self._streams:
            raise RuntimeError(
                f"stream {name!r} is buffered; drawing from the raw generator "
                "would desynchronize it (use stream() instead)"
            )
        generator = self._issued.get(name)
        if generator is None:
            generator = self._make_generator(name)
            self._issued[name] = generator
        return generator

    def stream(
        self, name: str, kind: str, block: int = _DEFAULT_BLOCK
    ) -> BufferedStream:
        """Return the :class:`BufferedStream` for ``name``, creating it once.

        All consumers of ``name`` must agree on the ``kind``; mixing kinds
        (or mixing buffered and raw access) raises, because either would
        break bit-identity with unbuffered sequential draws.
        """
        stream = self._streams.get(name)
        if stream is None:
            if name in self._issued:
                raise RuntimeError(
                    f"generator {name!r} was already handed out raw; "
                    "buffering it now would desynchronize existing users"
                )
            stream = BufferedStream(name, kind, self._make_generator(name), block)
            self._streams[name] = stream
        elif stream.kind != kind:
            raise RuntimeError(
                f"stream {name!r} already buffers {stream.kind!r} variates, "
                f"requested {kind!r}"
            )
        return stream

    def state_dict(self) -> dict:
        """JSON-able snapshot of every stream this factory has issued.

        Stream *positions* matter, not just the seed: two factories with
        the same seed but different draw counts diverge on the next draw,
        so checkpoint equality must compare bit-generator states.
        """
        return {
            "seed": self.seed,
            "generators": {
                name: _jsonable(gen.bit_generator.state)
                for name, gen in sorted(self._issued.items())
            },
            "streams": {
                name: stream.state_dict()
                for name, stream in sorted(self._streams.items())
            },
        }

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Create a child factory with an independent root, for sub-systems."""
        key = zlib.crc32(name.encode("utf-8"))
        return SeedSequenceFactory((self.seed * 1_000_003 + key) % 2**63)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(seed={self.seed})"


def jittered(rng, mean_ns: int, rel_sigma: float = 0.05) -> int:
    """Sample a cost around ``mean_ns`` with relative gaussian jitter.

    Used by the cost models (channel reads, balancer steps) so that repeated
    "measurements" show realistic spread instead of a single repeated value.
    The result is clamped to at least 1ns so durations stay positive.
    ``rng`` may be a ``numpy.random.Generator`` or a normal-kind
    :class:`BufferedStream` — the sampled value is bit-identical either way.
    """
    value = rng.normal(mean_ns, mean_ns * rel_sigma)
    return max(1, round(value))


def jittered_sum(rng, costs) -> int:
    """Sum of independently jittered costs, drawn in one coalesced pass.

    ``costs`` is a sequence of ``(mean_ns, rel_sigma)`` pairs.  The hot
    cost models chain several :func:`jittered` samples per operation (a
    channel read is syscall + hypercall; a balancer step is six
    components), and each call pays four interpreter frames — wrapper,
    ``normal``, kind check, buffer step.  This helper walks the buffered
    stream directly, one frame per sample.

    Bit-identical to summing sequential ``jittered`` calls — the same
    variates come off the same stream positions (so checkpoint
    fingerprints of the stream state are unchanged), the per-sample
    scaling uses the same association ``mean + (mean * sigma) * x``, and
    integer summation is exact.
    """
    if isinstance(rng, BufferedStream) and rng.kind == "normal":
        total = 0
        for mean_ns, rel_sigma in costs:
            total += max(1, round(mean_ns + mean_ns * rel_sigma * rng._next()))
        return total
    return sum(jittered(rng, mean_ns, rel_sigma) for mean_ns, rel_sigma in costs)
