"""Seeded randomness plumbing.

Every stochastic component (workload phase jitter, cost-model noise, arrival
processes) draws from its own :class:`numpy.random.Generator`, derived from a
single experiment seed through named streams.  Naming the streams — rather
than handing out generators in creation order — means adding a new component
does not perturb the random numbers seen by existing ones, which keeps
recorded experiment outputs stable across refactors.
"""

from __future__ import annotations

import zlib

import numpy as np


class SeedSequenceFactory:
    """Derive independent, named random generators from one root seed."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._issued: dict[str, np.random.Generator] = {}

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream within a factory, so a
        component may re-request its generator instead of storing it.
        """
        generator = self._issued.get(name)
        if generator is None:
            # Hash the name into a stable 32-bit spawn key.  zlib.crc32 is
            # deterministic across processes (unlike hash()).
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._issued[name] = generator
        return generator

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Create a child factory with an independent root, for sub-systems."""
        key = zlib.crc32(name.encode("utf-8"))
        return SeedSequenceFactory((self.seed * 1_000_003 + key) % 2**63)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(seed={self.seed})"


def jittered(rng: np.random.Generator, mean_ns: int, rel_sigma: float = 0.05) -> int:
    """Sample a cost around ``mean_ns`` with relative gaussian jitter.

    Used by the cost models (channel reads, balancer steps) so that repeated
    "measurements" show realistic spread instead of a single repeated value.
    The result is clamped to at least 1ns so durations stay positive.
    """
    value = rng.normal(mean_ns, mean_ns * rel_sigma)
    return max(1, round(value))
