"""Deterministic discrete-event simulation kernel.

The simulator drives everything else in :mod:`repro`: the hypervisor credit
scheduler, the guest kernels, the workload models and the vScale daemon are
all expressed as events on a single integer-nanosecond clock.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import SeedSequenceFactory
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "SeedSequenceFactory",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
