"""Structured event tracing.

A :class:`Tracer` collects typed, timestamped records from any layer of the
stack (hypervisor context switches, guest migrations, daemon decisions) so
experiments can reconstruct exactly *why* a run behaved the way it did —
the simulation equivalent of ``xentrace`` + ``ftrace``.

Tracing is opt-in and cheap when off: emitters call
:meth:`Tracer.enabled_for` (a set lookup) before building a record.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, NamedTuple


class TraceRecord(NamedTuple):
    """One trace event.

    A NamedTuple rather than a dataclass: captures construct one per
    traced event from the middle of the simulation hot path, and tuple
    construction is several times cheaper than dataclass ``__init__``.
    The ``details`` default is a shared empty dict — records are
    immutable by convention; never mutate ``details`` in place.
    """

    time_ns: int
    category: str
    event: str
    subject: str
    details: dict = {}

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time_ns / 1e6:12.3f}ms] {self.category}/{self.event} {self.subject} {extras}".rstrip()


class Tracer:
    """A category-filtered, bounded trace buffer."""

    #: Categories the stack emits.  "dispatch" (one record per simulator
    #: event dispatch) is the firehose — enabled only on request.
    KNOWN_CATEGORIES = frozenset(
        {"sched", "irq", "guest", "vscale", "workload", "fault", "snapshot", "dispatch"}
    )

    def __init__(
        self,
        categories: Iterable[str] = (),
        capacity: int = 100_000,
        ring: bool = False,
    ):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        unknown = set(categories) - self.KNOWN_CATEGORIES
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self._enabled = set(categories)
        self.capacity = capacity
        #: Ring tracers keep the *newest* records at capacity (displacing the
        #: oldest) instead of dropping new ones — right for post-mortem tails.
        self.ring = ring
        self.records: "deque[TraceRecord] | list[TraceRecord]" = (
            deque(maxlen=capacity) if ring else []
        )
        self.dropped = 0
        #: Optional live sinks, invoked per record (e.g. printing).
        self.sinks: list[Callable[[TraceRecord], None]] = []
        # Streaming mode (see attach_stream): when set, ``self.records``
        # *is* the writer's pending batch and emit triggers ``_stream_drain``
        # instead of paying a per-record sink call.
        self._stream_drain: Callable[[], None] | None = None
        self._stream_batch = 0

    # ------------------------------------------------------------------
    def enable(self, category: str) -> None:
        if category not in self.KNOWN_CATEGORIES:
            raise ValueError(f"unknown trace category {category!r}")
        self._enabled.add(category)

    def disable(self, category: str) -> None:
        self._enabled.discard(category)

    def enabled_for(self, category: str) -> bool:
        return category in self._enabled

    def attach_stream(
        self,
        pending: list,
        drain: Callable[[], None],
        batch: int,
    ) -> None:
        """Adopt ``pending`` as this tracer's record buffer.

        Streaming mode for a disk writer: emit's ordinary append feeds
        the writer's batch directly, so each traced event pays one list
        append plus a length check instead of a per-record sink call.
        Once ``pending`` holds ``batch`` records, ``drain`` is invoked
        to encode and clear them in place — meaning ``self.records``
        only ever holds the *undrained tail*; the full sequence lives
        wherever ``drain`` puts it.
        """
        if batch < 1:
            raise ValueError("stream batch must be positive")
        pending.extend(self.records)
        self.records = pending
        self.ring = False
        # The capacity check runs before drain gets a chance, so it must
        # sit safely above the batch threshold or records would be
        # silently dropped instead of drained.
        self.capacity = max(self.capacity, 4 * batch)
        self._stream_drain = drain
        self._stream_batch = batch

    # ------------------------------------------------------------------
    def emit(
        self,
        time_ns: int,
        category: str,
        event: str,
        subject: str,
        **details,
    ) -> None:
        """Record an event (no-op when the category is disabled)."""
        if category not in self._enabled:
            return
        # Hot path: raw tuple.__new__ skips the generated NamedTuple
        # __new__ (argument re-binding and defaults) — the 5-tuple here
        # matches the field order by construction.
        record = tuple.__new__(
            TraceRecord, (time_ns, category, event, subject, details)
        )
        records = self.records
        if len(records) >= self.capacity:
            self.dropped += 1
            if not self.ring:
                return
        records.append(record)
        if self._stream_drain is not None and len(records) >= self._stream_batch:
            self._stream_drain()
        for sink in self.sinks:
            sink(record)

    # ------------------------------------------------------------------
    def select(
        self,
        category: str | None = None,
        event: str | None = None,
        subject: str | None = None,
        since_ns: int = 0,
    ) -> Iterator[TraceRecord]:
        """Filtered iteration over the recorded events."""
        for record in self.records:
            if record.time_ns < since_ns:
                continue
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            if subject is not None and record.subject != subject:
                continue
            yield record

    def count(self, **kwargs) -> int:
        return sum(1 for _ in self.select(**kwargs))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


#: A tracer with everything off — the default wired into Machine, so
#: emit sites can call unconditionally.
NULL_TRACER = Tracer()
