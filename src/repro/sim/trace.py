"""Structured event tracing.

A :class:`Tracer` collects typed, timestamped records from any layer of the
stack (hypervisor context switches, guest migrations, daemon decisions) so
experiments can reconstruct exactly *why* a run behaved the way it did —
the simulation equivalent of ``xentrace`` + ``ftrace``.

Tracing is opt-in and cheap when off: emitters call
:meth:`Tracer.enabled_for` (a set lookup) before building a record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time_ns: int
    category: str
    event: str
    subject: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time_ns / 1e6:12.3f}ms] {self.category}/{self.event} {self.subject} {extras}".rstrip()


class Tracer:
    """A category-filtered, bounded trace buffer."""

    #: Categories the stack emits.
    KNOWN_CATEGORIES = frozenset(
        {"sched", "irq", "guest", "vscale", "workload"}
    )

    def __init__(
        self,
        categories: Iterable[str] = (),
        capacity: int = 100_000,
        ring: bool = False,
    ):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        unknown = set(categories) - self.KNOWN_CATEGORIES
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self._enabled = set(categories)
        self.capacity = capacity
        #: Ring tracers keep the *newest* records at capacity (displacing the
        #: oldest) instead of dropping new ones — right for post-mortem tails.
        self.ring = ring
        self.records: "deque[TraceRecord] | list[TraceRecord]" = (
            deque(maxlen=capacity) if ring else []
        )
        self.dropped = 0
        #: Optional live sinks, invoked per record (e.g. printing).
        self.sinks: list[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------
    def enable(self, category: str) -> None:
        if category not in self.KNOWN_CATEGORIES:
            raise ValueError(f"unknown trace category {category!r}")
        self._enabled.add(category)

    def disable(self, category: str) -> None:
        self._enabled.discard(category)

    def enabled_for(self, category: str) -> bool:
        return category in self._enabled

    # ------------------------------------------------------------------
    def emit(
        self,
        time_ns: int,
        category: str,
        event: str,
        subject: str,
        **details,
    ) -> None:
        """Record an event (no-op when the category is disabled)."""
        if category not in self._enabled:
            return
        record = TraceRecord(time_ns, category, event, subject, details)
        if len(self.records) >= self.capacity:
            self.dropped += 1
            if not self.ring:
                return
        self.records.append(record)
        for sink in self.sinks:
            sink(record)

    # ------------------------------------------------------------------
    def select(
        self,
        category: str | None = None,
        event: str | None = None,
        subject: str | None = None,
        since_ns: int = 0,
    ) -> Iterator[TraceRecord]:
        """Filtered iteration over the recorded events."""
        for record in self.records:
            if record.time_ns < since_ns:
                continue
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            if subject is not None and record.subject != subject:
                continue
            yield record

    def count(self, **kwargs) -> int:
        return sum(1 for _ in self.select(**kwargs))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


#: A tracer with everything off — the default wired into Machine, so
#: emit sites can call unconditionally.
NULL_TRACER = Tracer()
