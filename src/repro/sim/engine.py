"""The discrete-event simulation engine.

Design notes
------------
* Time is an integer nanosecond counter (see :mod:`repro.units`).  Events
  scheduled for the same instant fire in insertion order, which makes the
  whole stack deterministic for a fixed seed.
* Events are cancellable.  Cancellation is lazy: the queue entry stays where
  it is but is skipped when popped.  This is the standard "tombstone" scheme
  and keeps ``cancel`` O(1).  When tombstones come to dominate the queue the
  engine compacts them away in one O(n) pass, so a long-running simulation
  that arms-and-cancels timers (the guest tick chains do this constantly)
  never accumulates unbounded garbage.
* Two interchangeable queue engines implement the same total order
  ``(time, seq)``:

  ``wheel`` (default)
      A hierarchical timer wheel: a small sorted heap for the current ~1 ms
      granule, 256 unsorted buckets covering the next ~268 ms, and an
      overflow heap for far-future timers.  Most of the simulation's churn
      (ticks, quanta, IPIs) lands in the near window where insertion is an
      O(1) list append instead of an O(log n) heap sift, and heap entries
      are plain ``(time, seq, event)`` tuples so comparisons run in C.

  ``heap``
      The reference engine: one binary heap.  Kept for differential testing
      — both engines must produce bit-identical event orderings (seq is
      unique, so ``(time, seq)`` is a total order and any correct priority
      queue agrees).

* ``peek_time`` and ``pending_count`` are O(1) amortized: the queue keeps a
  live-event counter, and peeking only pays for the tombstones it discards
  (work the next pop would have done anyway).
* There is intentionally no coroutine/process layer here.  The hypervisor and
  guest schedulers are state machines with explicit preemption bookkeeping;
  callbacks map onto that far more directly than generator processes would.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable

#: log2 of the wheel granule: 2**20 ns ~= 1.05 ms, matching the guest tick.
_GRANULE_BITS = 20
#: Number of near-future buckets; window = 256 granules ~= 268 ms.
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Compaction triggers when tombstones exceed this floor *and* outnumber
#: live entries; the floor keeps tiny queues from compacting constantly.
_COMPACT_FLOOR = 128


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Application code treats this as opaque apart from :meth:`cancel` and the
    :attr:`time` attribute.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_owner")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        owner: "_HeapQueue | _WheelQueue | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled events pinned in the queue do
        # not keep large object graphs (guest kernels, threads) alive.
        self.fn = _cancelled_fn
        self.args = ()
        owner = self._owner
        if owner is not None:
            owner.note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is still queued and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state}>"


def _cancelled_fn(*_args: Any) -> None:  # pragma: no cover - never called
    raise AssertionError("cancelled event fired")


class _HeapQueue:
    """Reference engine: a single binary heap of ``(time, seq, event)``."""

    __slots__ = ("_heap", "live", "_tombstones")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self.live = 0
        self._tombstones = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self.live += 1

    def note_cancel(self) -> None:
        self.live -= 1
        self._tombstones += 1
        if self._tombstones > _COMPACT_FLOOR and self._tombstones > self.live:
            self.compact()

    def compact(self) -> None:
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0

    def peek(self) -> Event | None:
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event.cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return event
        return None

    def pop_next(self, until: int | None) -> Event | None:
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                self._tombstones -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(heap)
            self.live -= 1
            return event
        return None

    def iter_live(self):
        """Yield live events in arbitrary order, without mutating the queue.

        Snapshot support: unlike :meth:`peek`/:meth:`pop_next` this never
        discards tombstones, so calling it leaves the queue byte-identical.
        """
        for entry in self._heap:
            if not entry[2].cancelled:
                yield entry[2]


class _WheelQueue:
    """Timer-wheel engine: near-future buckets in front of an overflow heap.

    Invariants:

    * ``_cur`` is the granule the window currently points at; it only moves
      forward, and only ever to the next *occupied* granule, so each wheel
      slot holds entries for exactly one granule at a time.
    * ``_cur_heap`` holds every entry with granule <= ``_cur`` (sorted);
      slot ``g & MASK`` holds granule ``g`` for g in (cur, cur + SLOTS];
      ``_far`` holds everything beyond the window at insertion time.
    * ``_wheel_count`` counts entries (live or tombstoned) parked in wheel
      buckets, so an empty wheel short-circuits the slot scan.
    """

    __slots__ = (
        "_cur",
        "_cur_heap",
        "_wheel",
        "_wheel_count",
        "_far",
        "live",
        "_tombstones",
    )

    def __init__(self) -> None:
        self._cur = 0
        self._cur_heap: list[tuple[int, int, Event]] = []
        self._wheel: list[list[tuple[int, int, Event]]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        self._wheel_count = 0
        self._far: list[tuple[int, int, Event]] = []
        self.live = 0
        self._tombstones = 0

    def push(self, event: Event) -> None:
        self.live += 1
        granule = event.time >> _GRANULE_BITS
        entry = (event.time, event.seq, event)
        offset = granule - self._cur
        if offset <= 0:
            heapq.heappush(self._cur_heap, entry)
        elif offset <= _WHEEL_SLOTS:
            self._wheel[granule & _WHEEL_MASK].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._far, entry)

    def note_cancel(self) -> None:
        self.live -= 1
        self._tombstones += 1
        if self._tombstones > _COMPACT_FLOOR and self._tombstones > self.live:
            self.compact()

    def compact(self) -> None:
        self._cur_heap = [e for e in self._cur_heap if not e[2].cancelled]
        heapq.heapify(self._cur_heap)
        self._far = [e for e in self._far if not e[2].cancelled]
        heapq.heapify(self._far)
        count = 0
        for bucket in self._wheel:
            if bucket:
                bucket[:] = [e for e in bucket if not e[2].cancelled]
                count += len(bucket)
        self._wheel_count = count
        self._tombstones = 0

    def peek(self) -> Event | None:
        while True:
            heap = self._cur_heap
            while heap:
                event = heap[0][2]
                if event.cancelled:
                    heapq.heappop(heap)
                    self._tombstones -= 1
                    continue
                return event
            if not self._advance():
                return None

    def pop_next(self, until: int | None) -> Event | None:
        heappop = heapq.heappop
        while True:
            heap = self._cur_heap
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    self._tombstones -= 1
                    continue
                if until is not None and entry[0] > until:
                    return None
                heappop(heap)
                self.live -= 1
                return event
            if not self._advance():
                return None

    def iter_live(self):
        """Yield live events in arbitrary order, without mutating the queue.

        Snapshot support: iterates the current-granule heap, every wheel
        bucket, and the overflow heap as plain lists — no pops, so the
        queue (including tombstone placement) is left byte-identical.
        """
        for entry in self._cur_heap:
            if not entry[2].cancelled:
                yield entry[2]
        for bucket in self._wheel:
            for entry in bucket:
                if not entry[2].cancelled:
                    yield entry[2]
        for entry in self._far:
            if not entry[2].cancelled:
                yield entry[2]

    def _advance(self) -> bool:
        """Slide the window to the next occupied granule.

        Called with an empty current-granule heap; drains that granule's
        wheel bucket (and any overflow entries that now fall on it) into the
        current heap.  Returns False when the whole queue has drained.
        """
        wheel_granule = None
        if self._wheel_count:
            cur = self._cur
            wheel = self._wheel
            for dist in range(1, _WHEEL_SLOTS + 1):
                if wheel[(cur + dist) & _WHEEL_MASK]:
                    wheel_granule = cur + dist
                    break
        far = self._far
        while far and far[0][2].cancelled:
            heapq.heappop(far)
            self._tombstones -= 1
        far_granule = (far[0][0] >> _GRANULE_BITS) if far else None
        if wheel_granule is None:
            if far_granule is None:
                return False
            granule = far_granule
        elif far_granule is None or wheel_granule <= far_granule:
            granule = wheel_granule
        else:
            granule = far_granule
        self._cur = granule
        heap = self._cur_heap
        bucket = self._wheel[granule & _WHEEL_MASK]
        if bucket:
            self._wheel_count -= len(bucket)
            for entry in bucket:
                if entry[2].cancelled:
                    self._tombstones -= 1
                else:
                    heap.append(entry)
            bucket.clear()
        # Overflow entries whose granule has come into view fire now too;
        # ones further out stay put and are compared by granule next time.
        while far and (far[0][0] >> _GRANULE_BITS) == granule:
            entry = heapq.heappop(far)
            if entry[2].cancelled:
                self._tombstones -= 1
            else:
                heap.append(entry)
        heapq.heapify(heap)
        return True


# "macro" runs on the wheel queue but additionally advertises itself to
# clients (via ``Simulator.macro``) as permitting macro-stepping: consumers
# such as the guest kernel may then elide provably-quiescent events and
# advance their effects in closed form.  The engine itself is unchanged —
# quiescence detection lives with the state it reasons about.
_ENGINES = {"wheel": _WheelQueue, "heap": _HeapQueue, "macro": _WheelQueue}


class Simulator:
    """A single-clock discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, fired.append, "a")
    >>> _ = sim.schedule(50, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    100
    """

    def __init__(self, engine: str | None = None) -> None:
        if engine is None:
            # All engines produce identical event orderings, so the choice
            # is a pure performance knob; the env override lets the perf
            # harness A/B them without threading a parameter everywhere.
            engine = os.environ.get("REPRO_SIM_ENGINE", "wheel")
        if engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
            )
        self.now: int = 0
        self.engine = engine
        #: Macro-stepping opt-in: event producers that can prove a stretch
        #: of their own events quiescent (no observable effect beyond
        #: counter bumps) may skip scheduling them and fold the effects in
        #: arithmetically.  See ``GuestKernel._macro_horizon``.
        self.macro = engine == "macro"
        self._queue = _ENGINES[engine]()
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Optional hook invoked as ``dispatch_check(sim, event)`` right
        #: before each event fires (installed by repro.sanitize).
        self.dispatch_check: Callable[["Simulator", Event], None] | None = None
        #: Optional hook invoked as ``dispatch_trace(sim, event)`` right
        #: before each event fires (installed by repro.tracelog when the
        #: "dispatch" category is requested).  Separate from
        #: ``dispatch_check`` so tracing and sanitizing compose.
        self.dispatch_trace: Callable[["Simulator", Event], None] | None = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        # schedule_at's body, inlined: this is the hottest call in the
        # simulator (one per tick, quantum, IPI, ...).
        event = Event(int(self.now + delay), self._seq, fn, args, self._queue)
        self._seq += 1
        self._queue.push(event)
        return event

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(int(time), self._seq, fn, args, self._queue)
        self._seq += 1
        self._queue.push(event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if no event fires there, so repeated ``run(until=...)`` calls observe
        a monotonically advancing clock.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        self._stopped = False
        try:
            pop_next = self._queue.pop_next
            check = self.dispatch_check
            trace = self.dispatch_trace
            while not self._stopped:
                event = pop_next(until)
                if event is None:
                    break
                if check is not None:
                    check(self, event)
                if trace is not None:
                    trace(self, event)
                self.now = event.time
                event.cancelled = True  # mark as fired
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        event = self._queue.pop_next(None)
        if event is None:
            return False
        if self.dispatch_check is not None:
            self.dispatch_check(self, event)
        if self.dispatch_trace is not None:
            self.dispatch_trace(self, event)
        self.now = event.time
        event.cancelled = True
        event.fn(*event.args)
        return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._queue.live

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is empty."""
        event = self._queue.peek()
        return None if event is None else event.time

    def snapshot_events(self) -> list[tuple[int, int, str]]:
        """The live event queue as sorted ``(time, seq, callback)`` rows.

        Callbacks are identified by qualified name — enough to fingerprint
        the queue for restore-equivalence checks (two runs whose queues
        hold the same callbacks at the same ``(time, seq)`` positions are
        in the same scheduling state).  Read-only: the queue is untouched.
        """
        rows = []
        for event in self._queue.iter_live():
            fn = event.fn
            module = getattr(fn, "__module__", "") or ""
            qualname = getattr(fn, "__qualname__", None) or type(fn).__name__
            rows.append((event.time, event.seq, f"{module}.{qualname}"))
        rows.sort()
        return rows
