"""The discrete-event simulation engine.

Design notes
------------
* Time is an integer nanosecond counter (see :mod:`repro.units`).  Events
  scheduled for the same instant fire in insertion order, which makes the
  whole stack deterministic for a fixed seed.
* Events are cancellable.  Cancellation is lazy: the heap entry stays in the
  queue but is skipped when popped.  This is the standard "tombstone" scheme
  and keeps ``cancel`` O(1).
* There is intentionally no coroutine/process layer here.  The hypervisor and
  guest schedulers are state machines with explicit preemption bookkeeping;
  callbacks map onto that far more directly than generator processes would.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Application code treats this as opaque apart from :meth:`cancel` and the
    :attr:`time` attribute.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        # Drop references eagerly so cancelled events pinned in the heap do
        # not keep large object graphs (guest kernels, threads) alive.
        self.fn = _cancelled_fn
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event is still queued and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state}>"


def _cancelled_fn(*_args: Any) -> None:  # pragma: no cover - never called
    raise AssertionError("cancelled event fired")


class Simulator:
    """A single-clock discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, fired.append, "a")
    >>> _ = sim.schedule(50, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    100
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(int(time), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if no event fires there, so repeated ``run(until=...)`` calls observe
        a monotonically advancing clock.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        self._stopped = False
        try:
            queue = self._queue
            while queue:
                if self._stopped:
                    break
                event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                self.now = event.time
                event.cancelled = True  # mark as fired
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.cancelled = True
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is empty."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None
