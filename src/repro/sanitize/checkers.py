"""The invariant checkers and the :class:`Sanitizer` that hosts them.

Each checker verifies one invariant the paper states but the simulation
otherwise only maintains implicitly.  Checkers are grouped by the layer
whose edge invokes them:

===================  ==============================================  =======================================
checker              invariant                                       hook site
===================  ==============================================  =======================================
event_monotonic      dispatched events never move time backwards     ``Simulator.run`` / ``Simulator.step``
                     and tombstoned events never fire
credit_frozen_burn   a FROZEN vCPU never burns CPU time              every scheduler's charge path
                     (Algorithm 2 / paper §4.3)                      (``Scheduler.charge_domain`` /
                                                                     ``CreditScheduler._burn``)
credit_conservation  one accounting period grants exactly            ``CreditScheduler._acct`` (credit
                     ``P x acct_ns`` of credit; frozen vCPUs get     scheduler only — other schedulers
                     none; balances stay inside the clamp            have no accounting period)
runqueue_state       queued vCPUs are RUNNABLE, appear on exactly    ``CreditScheduler._acct``,
                     one queue, and pCPU.current back-pointers       ``QueueScheduler._tick`` (via each
                     agree — via ``Scheduler.runqueues_view()``      scheduler's ``runqueues_view()``)
vcpu_transition      vCPU state transitions follow the legal         ``VCPU.set_state``
                     machine; entering FROZEN requires a drained
                     guest runqueue and a set freeze-mask bit
freeze_mask_power    ``cpu_freeze_mask`` <-> scheduling-group power  ``CreditScheduler._acct``,
                     <-> hypervisor FROZEN states agree              ``VScaleBalancer`` post-op
freeze_migration     after the reschedule IPI completes, no          ``GuestKernel._finish_freeze_migration``
                     migratable thread is left enqueued on the
                     freezing vCPU and no event channel binds to it
thread_placement     wakeups/forks never place an unpinned thread    ``GuestKernel.wake_thread`` / ``spawn``
                     on a frozen vCPU
extendability        Algorithm 1 conserves CPU share across          ``VScaleExtension.recompute``
                     releasers and competitors, splits slack by
                     weight, and publishes ``n_i = ceil(s_ext/t)``
===================  ==============================================  =======================================

All checks are read-only: a sanitized run that does not violate an
invariant is bit-for-bit identical to an unsanitized one.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.hypervisor.domain import VCPUState
from repro.sanitize.errors import InvariantViolation
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.extendability import ExtendabilityResult, VMUsage
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread
    from repro.hypervisor.schedulers.base import Scheduler
    from repro.hypervisor.schedulers.credit import CreditScheduler
    from repro.hypervisor.domain import Domain, VCPU
    from repro.hypervisor.machine import Machine
    from repro.sim.engine import Event, Simulator

#: Legal vCPU state transitions (see VCPUState's docstring): FROZEN can
#: only be left through BLOCKED (an explicit unfreeze), and nothing runs
#: without first being RUNNABLE.
_ALLOWED_TRANSITIONS: dict[VCPUState, frozenset[VCPUState]] = {
    VCPUState.RUNNING: frozenset({VCPUState.RUNNABLE, VCPUState.BLOCKED, VCPUState.FROZEN}),
    VCPUState.RUNNABLE: frozenset({VCPUState.RUNNING, VCPUState.BLOCKED, VCPUState.FROZEN}),
    VCPUState.BLOCKED: frozenset({VCPUState.RUNNABLE, VCPUState.FROZEN}),
    VCPUState.FROZEN: frozenset({VCPUState.BLOCKED}),
}

#: Relative tolerance for float-accumulated credit/share sums.
_REL_TOL = 1e-9
#: Absolute slop (ns) for quantities that went through round().
_ROUND_SLOP = 2.0


def _guest_kernel(domain: "Domain") -> "GuestKernel | None":
    """The domain's guest when it is a full kernel (has a freeze mask)."""
    guest = domain.guest
    if guest is not None and hasattr(guest, "cpu_freeze_mask"):
        return guest  # type: ignore[return-value]
    return None


class Sanitizer:
    """Per-:class:`Machine` invariant-checking harness.

    Installed either explicitly (``machine.install_sanitizer()``) or by
    setting ``REPRO_SANITIZE=1`` in the environment, which makes every
    Machine constructed anywhere (including experiment worker processes)
    self-install one.  Each hook site in the stack checks
    ``machine.sanitizer is not None`` first, so the disabled cost is one
    attribute load per edge.
    """

    #: Trace records carried by an InvariantViolation for post-mortem.
    TAIL = 40

    def __init__(self, machine: "Machine", tail: int = TAIL):
        if tail < 1:
            raise ValueError("tail must be positive")
        self.machine = machine
        self.tail = tail
        #: Checks performed, per checker name (insertion-ordered).
        self.stats: dict[str, int] = {}
        self.violations = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "Sanitizer":
        machine = self.machine
        if machine.sanitizer is not None and machine.sanitizer is not self:
            raise RuntimeError("machine already has a sanitizer installed")
        machine.sanitizer = self
        machine.sim.dispatch_check = self.check_dispatch
        if machine.tracer is NULL_TRACER:
            # Keep a rolling tail of everything so violations carry context
            # even when the caller did not ask for tracing.
            machine.tracer = Tracer(
                Tracer.KNOWN_CATEGORIES, capacity=max(4 * self.tail, 256), ring=True
            )
        return self

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def fail(self, checker: str, message: str, **context) -> None:
        """Raise an :class:`InvariantViolation` with the trace tail."""
        self.violations += 1
        records = list(self.machine.tracer.records)
        raise InvariantViolation(
            checker,
            message,
            time_ns=self.machine.sim.now,
            context=context,
            trace_tail=records[-self.tail:],
        )

    def _count(self, checker: str) -> None:
        self.stats[checker] = self.stats.get(checker, 0) + 1

    # ------------------------------------------------------------------
    # sim/engine: event-dispatch edge
    # ------------------------------------------------------------------
    def check_dispatch(self, sim: "Simulator", event: "Event") -> None:
        """Events fire in nondecreasing time order and are never tombstones."""
        self._count("event_monotonic")
        if event.cancelled:
            self.fail(
                "event_monotonic",
                "tombstoned (cancelled) event reached dispatch",
                event=repr(event),
            )
        if event.time < sim.now:
            self.fail(
                "event_monotonic",
                "event dispatch would move simulation time backwards",
                event_time=event.time,
                now=sim.now,
            )

    # ------------------------------------------------------------------
    # hypervisor/credit: burn + accounting edges
    # ------------------------------------------------------------------
    def check_burn(self, vcpu: "VCPU", elapsed: int) -> None:
        """Credit accounting must skip frozen vCPUs (Algorithm 2 step 3)."""
        self._count("credit_frozen_burn")
        if vcpu.state is VCPUState.FROZEN:
            self.fail(
                "credit_frozen_burn",
                f"{vcpu.name} burned {elapsed}ns of credit while FROZEN",
                vcpu=vcpu.name,
                elapsed_ns=elapsed,
                credits=vcpu.credits,
            )
        if elapsed < 0:
            self.fail(
                "credit_frozen_burn",
                f"{vcpu.name} burned a negative interval",
                vcpu=vcpu.name,
                elapsed_ns=elapsed,
            )

    def check_acct(
        self,
        scheduler: "CreditScheduler",
        active_domains: Sequence["Domain"],
        before: dict["VCPU", float],
    ) -> None:
        """One accounting period conserves credit and skips frozen vCPUs.

        ``before`` maps each active vCPU to its pre-distribution balance.
        Expected balances are re-derived here from the host config and the
        domains' weights (the paper's formula), not from the scheduler's
        loop, so a skipped domain, a grant to a frozen vCPU or a wrong
        weight mode shows up as a mismatch.
        """
        self._count("credit_conservation")
        config = scheduler.config
        acct = config.acct_ns
        pool_credit = config.pcpus * acct
        if config.per_vm_weight:
            weights = {d: d.weight for d in active_domains}
        else:
            weights = {d: d.weight * len(d.active_vcpus()) for d in active_domains}
        total_weight = sum(weights.values())
        for domain in active_domains:
            share = pool_credit * weights[domain] / total_weight
            active = domain.active_vcpus()
            per_vcpu = share / len(active)
            for vcpu in active:
                expected = min(acct, max(-acct, before[vcpu] + per_vcpu))
                if abs(vcpu.credits - expected) > _REL_TOL * acct:
                    self.fail(
                        "credit_conservation",
                        f"{vcpu.name} did not receive its weight-proportional credit",
                        vcpu=vcpu.name,
                        credits=vcpu.credits,
                        expected=expected,
                        per_vcpu_ns=per_vcpu,
                    )
            if domain.window_consumed_ns != 0:
                self.fail(
                    "credit_conservation",
                    f"{domain.name}'s consumption window was not reset by accounting",
                    domain=domain.name,
                    window_consumed_ns=domain.window_consumed_ns,
                )
        for domain in scheduler.machine.domains:
            for vcpu in domain.vcpus:
                # Freezing zeroes the balance and then burns the final
                # running slice, so a frozen vCPU may carry debt — but a
                # *positive* balance means accounting granted it credit.
                if vcpu.state is VCPUState.FROZEN and vcpu.credits > _REL_TOL * acct:
                    self.fail(
                        "credit_conservation",
                        f"frozen vCPU {vcpu.name} was granted credit",
                        vcpu=vcpu.name,
                        credits=vcpu.credits,
                    )

    def check_runqueues(self, scheduler: "Scheduler") -> None:
        """Runqueue membership is exclusive and states agree with placement.

        Scheduler-agnostic: pCPU <-> vCPU coherence comes from the machine's
        pool, and queue membership from the scheduler's own
        ``runqueues_view()`` — per-pCPU and global-queue schedulers alike.
        """
        self._count("runqueue_state")
        for pcpu in scheduler.machine.pool:
            current = pcpu.current
            if current is not None:
                if current.state is not VCPUState.RUNNING:
                    self.fail(
                        "runqueue_state",
                        f"{pcpu.name} runs {current.name} which is {current.state.value}",
                        pcpu=pcpu.name,
                        vcpu=current.name,
                    )
                if current.pcpu is not pcpu:
                    self.fail(
                        "runqueue_state",
                        f"{current.name}.pcpu does not point back at {pcpu.name}",
                        pcpu=pcpu.name,
                        vcpu=current.name,
                    )
        seen: dict["VCPU", str] = {}
        for label, queue in scheduler.runqueues_view():
            for vcpu in queue:
                if vcpu in seen:
                    self.fail(
                        "runqueue_state",
                        f"{vcpu.name} is on two runqueues",
                        vcpu=vcpu.name,
                        queues=f"{seen[vcpu]} and {label}",
                    )
                seen[vcpu] = label
                if vcpu.state is not VCPUState.RUNNABLE:
                    self.fail(
                        "runqueue_state",
                        f"{vcpu.name} is queued on {label} while {vcpu.state.value}",
                        vcpu=vcpu.name,
                        pcpu=label,
                    )

    def check_enqueue(self, vcpu: "VCPU") -> None:
        """Only RUNNABLE vCPUs may enter a hypervisor runqueue."""
        self._count("runqueue_state")
        if vcpu.state is not VCPUState.RUNNABLE:
            self.fail(
                "runqueue_state",
                f"{vcpu.name} enqueued while {vcpu.state.value}",
                vcpu=vcpu.name,
            )

    # ------------------------------------------------------------------
    # hypervisor/domain: state-transition edge
    # ------------------------------------------------------------------
    def check_vcpu_transition(self, vcpu: "VCPU", new_state: VCPUState) -> None:
        self._count("vcpu_transition")
        old = vcpu.state
        if new_state not in _ALLOWED_TRANSITIONS[old]:
            self.fail(
                "vcpu_transition",
                f"illegal vCPU transition {old.value} -> {new_state.value}",
                vcpu=vcpu.name,
            )
        if new_state is VCPUState.FROZEN:
            kernel = _guest_kernel(vcpu.domain)
            # The drained-runqueue guarantee belongs to Algorithm 2's
            # guest-side sequence; the mask bit is how we know the guest
            # initiated this freeze (tests may freeze a vCPU directly at
            # the hypervisor, where no guest contract applies).
            if kernel is not None and vcpu.index in kernel.cpu_freeze_mask:
                rq = kernel.runqueues[vcpu.index]
                if rq.current is not None or rq.ready:
                    self.fail(
                        "vcpu_transition",
                        f"{vcpu.name} froze with threads still on its runqueue",
                        vcpu=vcpu.name,
                        current=rq.current.name if rq.current else None,
                        ready=[t.name for t in rq.ready],
                    )

    # ------------------------------------------------------------------
    # guest/kernel: freeze mask, migration and placement edges
    # ------------------------------------------------------------------
    def check_freeze_mask(self, kernel: "GuestKernel") -> None:
        """``cpu_freeze_mask`` <-> group power <-> FROZEN states agree."""
        self._count("freeze_mask_power")
        n = len(kernel.runqueues)
        mask = kernel.cpu_freeze_mask
        for index in sorted(mask):
            if not 0 <= index < n:
                self.fail(
                    "freeze_mask_power",
                    f"cpu_freeze_mask holds out-of-range vCPU index {index}",
                    mask=sorted(mask),
                    vcpus=n,
                )
        if 0 in mask:
            self.fail(
                "freeze_mask_power",
                "the master vCPU (vCPU0) is in cpu_freeze_mask",
                mask=sorted(mask),
            )
        power = kernel.online_vcpus
        if power != n - len(mask):
            self.fail(
                "freeze_mask_power",
                "scheduling-group power disagrees with the freeze mask",
                power=power,
                vcpus=n,
                mask=sorted(mask),
            )
        for index in sorted(mask):
            rq = kernel.runqueues[index]
            if any(t.migratable and not t.done for t in rq.ready):
                vcpu = kernel.domain.vcpus[index]
                # A masked vCPU mid-eviction is fine; one that already
                # completed its freeze must not be holding migratable work.
                if vcpu.state is VCPUState.FROZEN:
                    self.fail(
                        "freeze_mask_power",
                        f"frozen vCPU {index} holds migratable ready threads",
                        vcpu_index=index,
                        threads=[t.name for t in rq.ready if t.migratable],
                    )

    def check_freeze_migration(self, kernel: "GuestKernel", index: int) -> None:
        """After the reschedule IPI's eviction completes, vCPU ``index``
        holds no migratable work and no event-channel binding."""
        self._count("freeze_migration")
        rq = kernel.runqueues[index]
        leftovers = [t.name for t in rq.ready if t.migratable and not t.done]
        if leftovers:
            self.fail(
                "freeze_migration",
                f"migratable threads left on freezing vCPU {index}",
                vcpu_index=index,
                threads=leftovers,
            )
        if rq.current is not None and rq.current.migratable:
            self.fail(
                "freeze_migration",
                f"freezing vCPU {index} still runs a migratable thread",
                vcpu_index=index,
                thread=rq.current.name,
            )
        bound = [c.name for c in kernel.domain.event_channels if c.bound_vcpu == index]
        if bound:
            self.fail(
                "freeze_migration",
                f"event channels still bound to freezing vCPU {index}",
                vcpu_index=index,
                channels=bound,
            )

    def check_thread_placement(
        self, kernel: "GuestKernel", thread: "Thread", target: int
    ) -> None:
        """Wake/fork placement never lands unpinned work on a frozen vCPU."""
        self._count("thread_placement")
        if thread.pinned_to is None and target in kernel.cpu_freeze_mask:
            self.fail(
                "thread_placement",
                f"{thread.name} placed on frozen vCPU {target}",
                thread=thread.name,
                target=target,
                mask=sorted(kernel.cpu_freeze_mask),
            )
        if thread.vcpu_index != target:
            self.fail(
                "thread_placement",
                f"{thread.name} enqueued on rq{thread.vcpu_index}, not its target {target}",
                thread=thread.name,
                target=target,
            )

    # ------------------------------------------------------------------
    # core/extendability: Algorithm 1's published results
    # ------------------------------------------------------------------
    def check_extendability(
        self,
        usages: Sequence["VMUsage"],
        results: dict[str, "ExtendabilityResult"],
        pool_pcpus: int,
        period_ns: int,
        tolerance: float,
    ) -> None:
        """Property-check one Algorithm-1 round from its inputs and outputs.

        Verified without re-running the algorithm: fair shares sum to the
        pool's capacity, releasers keep exactly their (cap-clamped) fair
        share, competitors split the released slack proportionally to
        weight, the total share is conserved, and the published optimal
        vCPU count agrees with ``n_i = ceil(s_ext / t)``.  The conservation
        and proportionality checks are skipped for VMs whose reservation or
        cap clamps bind, since clamping intentionally breaks them.
        """
        self._count("extendability")
        capacity = pool_pcpus * period_ns
        total_weight = sum(u.weight for u in usages)
        fair_sum = sum(r.fair_share_ns for r in results.values())
        if abs(fair_sum - capacity) > _ROUND_SLOP * max(1, len(usages)):
            self.fail(
                "extendability",
                "fair shares do not sum to the pool capacity",
                fair_sum_ns=fair_sum,
                capacity_ns=capacity,
            )
        slack = 0.0
        unclamped = []
        slack_ratios: list[tuple[str, float]] = []
        for usage in usages:
            result = results[usage.name]
            n = result.optimal_vcpus
            limit = min(pool_pcpus, usage.max_vcpus or pool_pcpus)
            # The published extendability went through round(); accept the
            # ceil() of any value within that half-ns of rounding slack.
            acceptable = [
                max(1, min(limit, math.ceil((result.extendability_ns + delta) / period_ns - 1e-9)))
                for delta in (-1.0, 0.0, 1.0)
            ]
            if n not in acceptable:
                self.fail(
                    "extendability",
                    f"{usage.name}: published n_i disagrees with ceil(s_ext/t)",
                    optimal_vcpus=n,
                    expected=acceptable[1],
                    extendability_ns=result.extendability_ns,
                )
            if not 1 <= n <= pool_pcpus:
                self.fail(
                    "extendability",
                    f"{usage.name}: optimal vCPU count outside [1, P]",
                    optimal_vcpus=n,
                    pool_pcpus=pool_pcpus,
                )
            fair = usage.weight / total_weight * capacity
            effective_fair = fair
            if usage.cap is not None:
                effective_fair = min(effective_fair, usage.cap * period_ns)
            clamped = (
                usage.reservation * period_ns > effective_fair
                or result.extendability_ns >= capacity - _ROUND_SLOP
            )
            if not result.is_competitor:
                slack += effective_fair - usage.consumed_ns
                if not clamped and abs(result.extendability_ns - effective_fair) > _ROUND_SLOP:
                    self.fail(
                        "extendability",
                        f"releaser {usage.name} was not pinned to its fair share",
                        extendability_ns=result.extendability_ns,
                        effective_fair_ns=effective_fair,
                    )
            elif not clamped and usage.cap is None:
                unclamped.append((usage, result, fair))
                slack_ratios.append(
                    (usage.name, (result.extendability_ns - fair) / usage.weight)
                )
        # Conservation: every ns a releaser gave up reappears in competitor
        # extendability (when no clamp swallowed it).
        if unclamped and len(unclamped) == sum(r.is_competitor for r in results.values()):
            absorbed = sum(res.extendability_ns - fair for _, res, fair in unclamped)
            if abs(absorbed - slack) > _ROUND_SLOP * max(1, len(usages)) + _REL_TOL * capacity:
                self.fail(
                    "extendability",
                    "released slack was not conserved across competitors",
                    released_ns=slack,
                    absorbed_ns=absorbed,
                )
        if len(slack_ratios) > 1:
            ratios = [ratio for _, ratio in slack_ratios]
            if max(ratios) - min(ratios) > _ROUND_SLOP + _REL_TOL * capacity:
                self.fail(
                    "extendability",
                    "slack split is not weight-proportional across competitors",
                    per_weight_slack={name: ratio for name, ratio in slack_ratios},
                )

    # ------------------------------------------------------------------
    # core/balancer: post-operation agreement
    # ------------------------------------------------------------------
    def check_balancer_op(self, kernel: "GuestKernel", index: int, freeze: bool) -> None:
        """After sys_freezecpu/sys_unfreezecpu, mask and hypervisor agree."""
        self._count("freeze_mask_power")
        vcpu = kernel.domain.vcpus[index]
        if freeze:
            if index not in kernel.cpu_freeze_mask:
                self.fail(
                    "freeze_mask_power",
                    f"freeze({index}) returned with the mask bit clear",
                    vcpu=vcpu.name,
                )
            if not vcpu.freeze_pending and vcpu.state is not VCPUState.FROZEN:
                self.fail(
                    "freeze_mask_power",
                    f"freeze({index}) did not mark the vCPU at the hypervisor",
                    vcpu=vcpu.name,
                    state=vcpu.state.value,
                )
        else:
            if index in kernel.cpu_freeze_mask:
                self.fail(
                    "freeze_mask_power",
                    f"unfreeze({index}) left the mask bit set",
                    vcpu=vcpu.name,
                )
            if vcpu.freeze_pending or vcpu.state is VCPUState.FROZEN:
                self.fail(
                    "freeze_mask_power",
                    f"unfreeze({index}) left the vCPU frozen at the hypervisor",
                    vcpu=vcpu.name,
                    state=vcpu.state.value,
                )
        self.check_freeze_mask(kernel)

    # ------------------------------------------------------------------
    # Machine-wide sweep (used from the accounting edge)
    # ------------------------------------------------------------------
    def check_machine(self, domains: Iterable["Domain"]) -> None:
        """Guest-side consistency for every kernel-backed domain."""
        for domain in domains:
            kernel = _guest_kernel(domain)
            if kernel is not None:
                self.check_freeze_mask(kernel)
