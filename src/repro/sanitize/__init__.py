"""Opt-in cross-layer invariant checking for the simulation stack.

Enable with ``REPRO_SANITIZE=1`` (every :class:`~repro.hypervisor.machine.
Machine` then self-installs a :class:`Sanitizer`) or explicitly via
``machine.install_sanitizer()``.  Violations raise a structured
:class:`InvariantViolation` carrying the last trace records for post-mortem.

See DESIGN.md §10 for the architecture and the checker catalog.
"""

from __future__ import annotations

import os

from repro.sanitize.checkers import Sanitizer
from repro.sanitize.errors import InvariantViolation

__all__ = ["InvariantViolation", "Sanitizer", "enabled"]


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for auto-installed sanitizers."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
