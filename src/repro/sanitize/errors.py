"""Structured invariant-violation errors.

An :class:`InvariantViolation` is raised by the sanitizer the moment a
cross-layer invariant breaks, carrying enough context for a post-mortem
without re-running the simulation: which checker fired, what it observed,
the simulation time, and the tail of the machine's trace buffer (the last
events the stack executed before the violation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import TraceRecord


class InvariantViolation(RuntimeError):
    """A paper-level invariant was violated at runtime.

    Attributes
    ----------
    checker:
        Name of the checker that fired (see ``Sanitizer.CHECKERS``).
    message:
        Human-readable statement of the broken invariant.
    time_ns:
        Simulation time of the violation (None when no clock applies).
    context:
        Checker-specific observations (expected/actual values, subjects).
    trace_tail:
        The most recent trace records before the violation, oldest first.
    """

    def __init__(
        self,
        checker: str,
        message: str,
        time_ns: int | None = None,
        context: dict | None = None,
        trace_tail: Sequence["TraceRecord"] = (),
    ):
        self.checker = checker
        self.message = message
        self.time_ns = time_ns
        self.context = dict(context or {})
        self.trace_tail = list(trace_tail)
        super().__init__(self._format())

    def _format(self) -> str:
        lines = [f"[{self.checker}] {self.message}"]
        if self.time_ns is not None:
            lines[0] += f" (t={self.time_ns}ns)"
        for key, value in self.context.items():
            lines.append(f"  {key} = {value!r}")
        if self.trace_tail:
            lines.append(f"  last {len(self.trace_tail)} trace records:")
            for record in self.trace_tail:
                lines.append(f"    {record}")
        return "\n".join(lines)
