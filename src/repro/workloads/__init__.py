"""Workload models: the applications the paper evaluates.

Each workload is a set of thread behaviours (generators over the action DSL
in :mod:`repro.guest.actions`) plus a harness that tracks completion and
collects application-level metrics:

* :mod:`repro.workloads.openmp` — the GCC-OpenMP runtime model
  (GOMP_SPINCOUNT semantics) and fork-join parallel regions;
* :mod:`repro.workloads.npb` — profiles of the 10 NAS Parallel Benchmarks;
* :mod:`repro.workloads.parsec` — profiles of the 13 PARSEC applications;
* :mod:`repro.workloads.apache` — the Apache/httperf open-loop web serving
  experiment;
* :mod:`repro.workloads.desktop` — the "photo-slideshow" interactive
  background VMs that generate fluctuating load;
* :mod:`repro.workloads.kernel_build` — the parallel-compile workload used
  for the interrupt-quiescence experiment (Table 2).
"""

from repro.workloads.base import AppHarness, phase_compute
from repro.workloads.openmp import OpenMPRuntime, spincount_to_budget_ns
from repro.workloads.npb import NPB_PROFILES, NPBApp, NPBProfile
from repro.workloads.parsec import PARSEC_PROFILES, ParsecApp, ParsecProfile
from repro.workloads.apache import ApacheServer, ApacheConfig, HttperfClient, HttperfResult
from repro.workloads.desktop import PhotoSlideshow
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.synthetic import ForkJoinSpec, LoadMix, cpu_hog, fork_join, on_off, poisson_worker

__all__ = [
    "AppHarness",
    "phase_compute",
    "OpenMPRuntime",
    "spincount_to_budget_ns",
    "NPB_PROFILES",
    "NPBApp",
    "NPBProfile",
    "PARSEC_PROFILES",
    "ParsecApp",
    "ParsecProfile",
    "ApacheServer",
    "ApacheConfig",
    "HttperfClient",
    "HttperfResult",
    "PhotoSlideshow",
    "KernelBuild",
    "ForkJoinSpec",
    "LoadMix",
    "cpu_hog",
    "fork_join",
    "on_off",
    "poisson_worker",
]
