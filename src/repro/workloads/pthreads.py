"""Pthread-style building blocks for the PARSEC models.

PARSEC applications synchronize in sleep-then-wakeup style: mutexes,
condition variables, and structures composed from them.  This module
provides the two composites the profiles need:

* :class:`MutexCondBarrier` — the hand-rolled barrier streamcluster builds
  above a mutex and a condition variable (every crossing costs a broadcast
  and therefore cross-vCPU reschedule IPIs);
* :class:`BoundedQueue` — the producer/consumer stage queue of pipeline
  applications (dedup, ferret), with blocking put/get.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.guest.sync import CondVar, GuestMutex, KernelSpinLock, SyncGen

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


class MutexCondBarrier:
    """pthread_barrier semantics from a mutex + condition variable."""

    def __init__(
        self,
        kernel: "GuestKernel",
        parties: int,
        name: str = "mcbarrier",
        kernel_lock: KernelSpinLock | None = None,
    ):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.kernel = kernel
        self.parties = parties
        self.mutex = GuestMutex(kernel, f"{name}.m", kernel_lock=kernel_lock)
        self.cond = CondVar(kernel, f"{name}.c")
        self.arrived = 0
        self.generation = 0

    def wait(self, thread: "Thread") -> SyncGen:
        yield from self.mutex.lock(thread)
        generation = self.generation
        self.arrived += 1
        if self.arrived == self.parties:
            self.arrived = 0
            self.generation += 1
            yield from self.cond.broadcast()
            yield from self.mutex.unlock(thread)
            return
        while self.generation == generation:
            yield from self.cond.wait(self.mutex, thread)
        yield from self.mutex.unlock(thread)


class BoundedQueue:
    """A blocking bounded FIFO (pipeline stage queue)."""

    def __init__(
        self,
        kernel: "GuestKernel",
        capacity: int,
        name: str = "queue",
        kernel_lock: KernelSpinLock | None = None,
    ):
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.items: list[object] = []
        self.mutex = GuestMutex(kernel, f"{name}.m", kernel_lock=kernel_lock)
        self.not_empty = CondVar(kernel, f"{name}.ne")
        self.not_full = CondVar(kernel, f"{name}.nf")
        self.closed = False

    def put(self, thread: "Thread", item: object) -> SyncGen:
        yield from self.mutex.lock(thread)
        while len(self.items) >= self.capacity:
            yield from self.not_full.wait(self.mutex, thread)
        self.items.append(item)
        yield from self.not_empty.signal()
        yield from self.mutex.unlock(thread)

    def get(self, thread: "Thread") -> SyncGen:
        """Yields actions; the received item (or None if closed+empty) is
        left in ``thread.send_value``-style by returning it via StopIteration
        value — consume with ``item = yield from queue.get(thread)``."""
        yield from self.mutex.lock(thread)
        while not self.items and not self.closed:
            yield from self.not_empty.wait(self.mutex, thread)
        item = self.items.pop(0) if self.items else None
        yield from self.not_full.signal()
        yield from self.mutex.unlock(thread)
        return item

    def close(self, thread: "Thread") -> SyncGen:
        """Mark end-of-stream and release all blocked consumers."""
        yield from self.mutex.lock(thread)
        self.closed = True
        yield from self.not_empty.broadcast()
        yield from self.mutex.unlock(thread)
