"""Common workload scaffolding: completion tracking and phase helpers."""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

import numpy as np

from repro.guest.actions import Compute
from repro.guest.threads import Thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


class AppHarness:
    """Launches a multithreaded application and tracks its makespan.

    Thread behaviours are produced by factories so the harness can stamp
    each with the thread's rank.  The application is *done* when every
    launched thread has exited; :attr:`duration_ns` is then the makespan.
    """

    def __init__(self, kernel: "GuestKernel", name: str):
        self.kernel = kernel
        self.name = name
        self.threads: list[Thread] = []
        self.started_at: int | None = None
        self.finished_at: int | None = None
        self._remaining = 0
        kernel.exit_listeners.append(self._on_exit)

    def launch(self, factories: list[Callable[[Thread], object]]) -> list[Thread]:
        """Spawn one thread per factory.

        Each factory is called with the just-created ``Thread`` and must
        return its behaviour generator.  (The two-step dance lets
        behaviours reference their own thread for lock ownership.)
        """
        if self.threads:
            raise RuntimeError(f"app {self.name} already launched")
        self.started_at = self.kernel.sim.now
        for rank, factory in enumerate(factories):
            placeholder: list = []

            def deferred(placeholder=placeholder):
                # The generator body runs lazily, after spawn() assigned
                # the thread; yield from the factory-produced behaviour.
                yield from placeholder[0]

            thread = self.kernel.spawn(deferred(), name=f"{self.name}.t{rank}")
            placeholder.append(factory(thread))
            self.threads.append(thread)
        self._remaining = len(self.threads)
        return self.threads

    def _on_exit(self, thread: Thread) -> None:
        if thread in self.threads and self.finished_at is None:
            self._remaining -= 1
            if self._remaining == 0:
                self.finished_at = self.kernel.sim.now

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def duration_ns(self) -> int:
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError(f"app {self.name} has not finished")
        return self.finished_at - self.started_at


def phase_compute(
    rng: np.random.Generator, mean_ns: int, imbalance: float
) -> Compute:
    """A compute phase with multiplicative imbalance across threads.

    ``imbalance`` is the coefficient of variation of the phase length: the
    straggler effect that makes barrier-based programs sensitive to
    scheduling delays grows with it.
    """
    if imbalance <= 0:
        return Compute(mean_ns)
    sample = rng.normal(mean_ns, mean_ns * imbalance)
    return Compute(max(1000, round(sample)))
