"""A parallel-build workload (the paper's Table 2 driver).

Table 2 freezes one vCPU of a 4-vCPU VM running a kernel build and checks
that the frozen vCPU becomes fully quiescent — no timer interrupts (thanks
to dynamic ticks) and no reschedule IPIs (threads were migrated away).

The model: a make-style coordinator dispatches compile jobs to a pool of
worker threads over a blocking queue.  The per-job completion/dispatch
wake-ups generate the low-rate cross-vCPU IPI traffic (~20/s/vCPU) the
paper observes, and the workers keep every online vCPU busy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.guest.actions import BlockOn, WaitQueue
from repro.units import MS
from repro.workloads.base import phase_compute

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


class KernelBuild:
    """make -jN over a simulated source tree."""

    def __init__(
        self,
        kernel: "GuestKernel",
        rng: np.random.Generator,
        jobs: int | None = None,
        total_files: int = 100_000,
        compile_ns: int = 45 * MS,
        compile_cv: float = 0.5,
    ):
        self.kernel = kernel
        self.rng = rng
        self.jobs = jobs if jobs is not None else kernel.online_vcpus
        self.total_files = total_files
        self.compile_ns = compile_ns
        self.compile_cv = compile_cv
        self.compiled = 0
        self._pending: list[int] = []
        self._work_ready = WaitQueue("make.work")
        self._work_ready.kernel = kernel
        self._job_done = WaitQueue("make.done")
        self._job_done.kernel = kernel
        self._outstanding = 0

    def install(self) -> None:
        placeholder: list = []

        def deferred(ph):
            def gen():
                yield from ph[0]

            return gen()

        coordinator = self.kernel.spawn(deferred(placeholder), name="make")
        placeholder.append(self._coordinator(coordinator))
        for index in range(self.jobs):
            ph: list = []
            worker = self.kernel.spawn(deferred(ph), name=f"cc.{index}")
            ph.append(self._worker(worker))

    def _coordinator(self, thread):
        """Dispatch up to `jobs` files at a time, then refill on completion."""
        next_file = 0
        while next_file < self.total_files:
            while self._outstanding < self.jobs and next_file < self.total_files:
                self._pending.append(next_file)
                next_file += 1
                self._outstanding += 1
                self._work_ready.fire_one()
            yield BlockOn(self._job_done)

    def _worker(self, thread):
        while True:
            if not self._pending:
                yield BlockOn(self._work_ready)
                continue
            self._pending.pop(0)
            yield phase_compute(self.rng, self.compile_ns, self.compile_cv)
            self.compiled += 1
            self._outstanding -= 1
            self._job_done.fire_one()
