"""The GCC-OpenMP runtime model: GOMP_SPINCOUNT and fork-join regions.

GCC's libgomp decides how a thread waits at synchronization points through
``OMP_WAIT_POLICY`` / ``GOMP_SPINCOUNT``:

* ``ACTIVE``   -> spin count 30 billion (spin effectively forever);
* unset        -> spin count 300 000 (hybrid: spin briefly, then futex);
* ``PASSIVE``  -> spin count 0 (block immediately, wake via futex/IPI).

Each spin iteration is a load + compare + ``cpu_relax()``; we charge
:data:`SPIN_ITER_NS` per iteration when converting a count to an on-CPU
spin budget.  The runtime launches one worker per *online* vCPU (libgomp
reads ``cpu_online_mask`` at startup), runs a sequence of work-shared
phases separated by team barriers, and joins.
"""

from __future__ import annotations

from typing import Callable, Iterable, TYPE_CHECKING

import numpy as np

from repro.guest.sync import KernelSpinLock, OpenMPBarrier
from repro.guest.threads import Thread
from repro.workloads.base import AppHarness, phase_compute

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel

#: Cost of one spin-loop iteration (load + test + cpu_relax), nanoseconds.
SPIN_ITER_NS = 1.0

#: The three GOMP_SPINCOUNT values the paper evaluates.
SPINCOUNT_ACTIVE = 30_000_000_000
SPINCOUNT_DEFAULT = 300_000
SPINCOUNT_PASSIVE = 0

#: Cap so "30 billion" becomes "longer than any run" without overflowing
#: schedules (1000 s of on-CPU spinning).
_MAX_BUDGET_NS = 10**12


def spincount_to_budget_ns(spincount: int) -> int:
    """Convert a GOMP_SPINCOUNT to an on-CPU spin budget in nanoseconds."""
    if spincount < 0:
        raise ValueError("spin count cannot be negative")
    return min(_MAX_BUDGET_NS, round(spincount * SPIN_ITER_NS))


class OpenMPRuntime:
    """A libgomp-like runtime bound to one guest kernel.

    Parameters
    ----------
    kernel:
        The hosting guest kernel.
    spincount:
        GOMP_SPINCOUNT; see module docstring.
    rng:
        Source of phase-imbalance randomness.
    kernel_lock:
        Optional shared futex-bucket lock, exercised by the blocking
        fallback path (this is where pv-spinlocks matter).
    """

    def __init__(
        self,
        kernel: "GuestKernel",
        spincount: int,
        rng: np.random.Generator,
        kernel_lock: KernelSpinLock | None = None,
        team_size: int | None = None,
    ):
        self.kernel = kernel
        self.spincount = spincount
        self.spin_budget_ns = spincount_to_budget_ns(spincount)
        self.rng = rng
        self.kernel_lock = kernel_lock
        #: libgomp sizes the team from cpu_online_mask at startup; an
        #: explicit ``team_size`` models OMP_NUM_THREADS (the experiments
        #: pin it to the provisioned vCPU count so all configurations run
        #: the same program).
        self.team_size = team_size if team_size is not None else kernel.online_vcpus
        self._barrier_seq = 0

    def new_barrier(self, name: str | None = None) -> OpenMPBarrier:
        self._barrier_seq += 1
        return OpenMPBarrier(
            self.kernel,
            parties=self.team_size,
            spin_budget_ns=self.spin_budget_ns,
            name=name or f"gomp.b{self._barrier_seq}",
            kernel_lock=self.kernel_lock,
        )

    def parallel_region(
        self,
        harness: AppHarness,
        phases: Iterable[tuple[int, float]],
        per_thread_extra: Callable[[Thread, int, OpenMPBarrier], object] | None = None,
    ) -> list[Thread]:
        """Launch a fork-join region: each phase is (mean_ns, imbalance).

        Every thread computes its (randomly imbalanced) share of each phase
        and then waits on the team barrier.  ``per_thread_extra`` may inject
        additional behaviour after each phase (e.g. lu's pipeline spin).
        """
        phase_list = list(phases)
        barriers = [self.new_barrier() for _ in phase_list]

        def make_factory(rank: int):
            def factory(thread: Thread):
                return self._worker(thread, rank, phase_list, barriers, per_thread_extra)

            return factory

        return harness.launch([make_factory(r) for r in range(self.team_size)])

    def _worker(self, thread, rank, phase_list, barriers, per_thread_extra):
        for index, (mean_ns, imbalance) in enumerate(phase_list):
            yield phase_compute(self.rng, mean_ns, imbalance)
            if per_thread_extra is not None:
                extra = per_thread_extra(thread, index, barriers[index])
                if extra is not None:
                    yield from extra
            yield from barriers[index].wait(thread)
