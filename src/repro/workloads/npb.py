"""Parametric models of the NPB-OMP 3.3 applications.

We model each of the ten benchmarks as an OpenMP fork-join program with an
application-specific synchronization granularity: iterations of
(imbalanced compute phase -> team barrier), with ``lu`` additionally
running its *own* busy-wait relay (the paper found lu implements ad-hoc
pipeline synchronization outside OpenMP's control, which is why it improves
>60% under vScale regardless of the waiting policy).

The profile parameters are calibrated qualitatively against the paper:

* synchronization-intensive apps (``lu``, ``ua``, ``cg``, ``sp``, ``bt``,
  ``mg``) have frequent barriers and visible imbalance — these are the ones
  vScale accelerates heavily;
* ``ep``/``ft``/``is``/``dc`` are coarse-grained and barely affected.

These are behavioural models, not ports: the computation itself is opaque
``Compute`` time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.guest.actions import SpinFlag, SpinWait
from repro.guest.sync import KernelSpinLock
from repro.units import MS
from repro.workloads.base import AppHarness
from repro.workloads.openmp import OpenMPRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass(frozen=True)
class NPBProfile:
    """Shape parameters of one benchmark."""

    name: str
    #: Number of barrier-separated iterations.
    iterations: int
    #: Mean per-thread compute per iteration, ns.
    phase_ns: int
    #: Coefficient of variation of the compute phase across threads.
    imbalance: float
    #: lu-style ad-hoc busy-wait relay between ranks, outside OpenMP.
    custom_spin: bool = False
    #: Team barrier frequency: one barrier every this many iterations.
    #: lu's pipelined SSOR sweeps only hit a full barrier per sweep; the
    #: intra-sweep synchronization is the rank-to-rank relay.
    barrier_every: int = 1

    @property
    def serial_work_ns(self) -> int:
        """Per-thread useful work, ignoring synchronization."""
        return self.iterations * self.phase_ns

    def with_class(self, problem_class: str) -> "NPBProfile":
        """Scale the profile to an NPB problem class.

        NPB problem classes grow the data set, which grows the per-phase
        compute while the synchronization *structure* (iteration and
        barrier counts) stays fixed — exactly how the real suite behaves.
        The registered profiles correspond to class W (the scale the
        benchmarks run at); S is smaller, A/B/C grow by the suite's usual
        ~4x per class.
        """
        factors = {"S": 0.25, "W": 1.0, "A": 4.0, "B": 16.0, "C": 64.0}
        if problem_class not in factors:
            raise ValueError(
                f"unknown NPB class {problem_class!r}; choose from {sorted(factors)}"
            )
        from dataclasses import replace

        return replace(
            self, phase_ns=max(1000, round(self.phase_ns * factors[problem_class]))
        )


#: Calibrated profiles.  Total per-thread work is ~0.4-0.8 s so a full
#: Figure 6 sweep stays tractable; relative granularity mirrors the suite.
NPB_PROFILES: dict[str, NPBProfile] = {
    "bt": NPBProfile("bt", iterations=300, phase_ns=5 * MS, imbalance=0.25),
    "cg": NPBProfile("cg", iterations=600, phase_ns=2 * MS, imbalance=0.30),
    "dc": NPBProfile("dc", iterations=75, phase_ns=18 * MS, imbalance=0.12),
    "ep": NPBProfile("ep", iterations=6, phase_ns=220 * MS, imbalance=0.03),
    "ft": NPBProfile("ft", iterations=36, phase_ns=36 * MS, imbalance=0.08),
    "is": NPBProfile("is", iterations=48, phase_ns=26 * MS, imbalance=0.08),
    "lu": NPBProfile(
        "lu",
        iterations=450,
        phase_ns=2500_000,
        imbalance=0.25,
        custom_spin=True,
        barrier_every=10,
    ),
    "mg": NPBProfile("mg", iterations=480, phase_ns=2500_000, imbalance=0.25),
    "sp": NPBProfile("sp", iterations=420, phase_ns=3 * MS, imbalance=0.30),
    "ua": NPBProfile("ua", iterations=900, phase_ns=1300_000, imbalance=0.35),
}


class NPBApp:
    """One NPB run on a guest: build the team, run, report the makespan."""

    def __init__(
        self,
        kernel: "GuestKernel",
        profile: NPBProfile,
        spincount: int,
        rng: np.random.Generator,
        kernel_lock: KernelSpinLock | None = None,
        nthreads: int | None = None,
    ):
        self.kernel = kernel
        self.profile = profile
        self.rng = rng
        if nthreads is None:
            nthreads = len(kernel.domain.vcpus)
        self.runtime = OpenMPRuntime(
            kernel,
            spincount=spincount,
            rng=rng,
            kernel_lock=kernel_lock,
            team_size=nthreads,
        )
        self.harness = AppHarness(kernel, profile.name)
        # lu's relay flags: one chain per iteration, built lazily.
        self._relay_flags: dict[int, list[SpinFlag]] = {}

    def launch(self) -> None:
        profile = self.profile
        if profile.custom_spin or profile.barrier_every > 1:
            self._launch_pipelined()
            return
        phases = [(profile.phase_ns, profile.imbalance)] * profile.iterations
        self.runtime.parallel_region(self.harness, phases)

    def _launch_pipelined(self) -> None:
        """lu-style: rank-to-rank busy-wait relay, sparse team barriers."""
        profile = self.profile
        sweeps = max(1, profile.iterations // profile.barrier_every)
        barriers = [self.runtime.new_barrier(f"lu.sweep{s}") for s in range(sweeps)]

        def make_factory(rank: int):
            def factory(thread):
                return self._pipelined_worker(thread, rank, barriers)

            return factory

        self.harness.launch(
            [make_factory(r) for r in range(self.runtime.team_size)]
        )

    def _pipelined_worker(self, thread, rank: int, barriers):
        from repro.workloads.base import phase_compute

        profile = self.profile
        for iteration in range(profile.iterations):
            yield phase_compute(self.rng, profile.phase_ns, profile.imbalance)
            if profile.custom_spin:
                chain = self._chain(iteration)
                if rank > 0:
                    fired = yield SpinWait(chain[rank - 1], 10**12)
                    if not fired:
                        raise RuntimeError("lu relay spin timed out")
                chain[rank].fire_all()
            if (iteration + 1) % profile.barrier_every == 0:
                sweep = iteration // profile.barrier_every
                if sweep < len(barriers):
                    yield from barriers[sweep].wait(thread)

    # ------------------------------------------------------------------
    # lu's ad-hoc wavefront relay: rank r busy-waits (unboundedly — this
    # spin is hand-rolled, not under GOMP_SPINCOUNT) until rank r-1 passes
    # the baton, then passes its own.
    # ------------------------------------------------------------------
    def _chain(self, iteration: int) -> list[SpinFlag]:
        chain = self._relay_flags.get(iteration)
        if chain is None:
            chain = [
                SpinFlag(f"lu.relay.i{iteration}.r{r}")
                for r in range(self.runtime.team_size)
            ]
            for flag in chain:
                flag.kernel = self.kernel
            # Chains stay allocated for the whole run: the pipeline skew
            # between ranks is unbounded under stalls, and latched flags
            # let late arrivals fall straight through.
            self._relay_flags[iteration] = chain
        return chain

    def _relay(self, thread, iteration: int, _barrier):
        chain = self._chain(iteration)
        rank = int(thread.name.rsplit(".t", 1)[1])
        if rank > 0:
            fired = yield SpinWait(chain[rank - 1], 10**12)
            if not fired:
                raise RuntimeError("lu relay spin timed out")
        chain[rank].fire_all()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.harness.done

    @property
    def duration_ns(self) -> int:
        return self.harness.duration_ns
