"""Composable synthetic workload primitives.

The paper's benchmark suites are modelled in :mod:`repro.workloads.npb`
and friends; this module exposes the underlying building blocks as a small
library so users (and the test suite's stress scenarios) can assemble
their own guests without touching the action DSL directly:

* :func:`cpu_hog` — sustained compute (an HPC tenant);
* :func:`on_off` — square-wave load (batch jobs, cron spikes);
* :func:`poisson_worker` — Poisson-arriving jobs on one thread (an
  interactive tenant);
* :func:`fork_join` — a barrier-synchronized team over a work list;
* :class:`LoadMix` — installs a named mixture of the above on a guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.guest.sync import OpenMPBarrier
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


def cpu_hog(total_ns: int, chunk_ns: int = 10 * MS):
    """Burn ``total_ns`` of CPU in chunks (preemption-friendly)."""
    if total_ns <= 0 or chunk_ns <= 0:
        raise ValueError("durations must be positive")
    remaining = total_ns
    while remaining > 0:
        slice_ns = min(chunk_ns, remaining)
        remaining -= slice_ns
        yield Compute(slice_ns)


def on_off(kernel: "GuestKernel", busy_ns: int, idle_ns: int, cycles: int | None = None):
    """Square-wave load: ``busy_ns`` of compute, ``idle_ns`` asleep."""
    if busy_ns <= 0 or idle_ns <= 0:
        raise ValueError("phases must be positive")
    count = 0
    while cycles is None or count < cycles:
        yield Compute(busy_ns)
        timer = SpinFlag(f"onoff.{count}")
        kernel.start_timer(idle_ns, timer)
        yield BlockOn(timer)
        count += 1


def poisson_worker(
    kernel: "GuestKernel",
    rng: np.random.Generator,
    rate_per_s: float,
    service_ns: int,
    jobs: int,
):
    """``jobs`` Poisson-arriving units of ``service_ns`` work each."""
    if rate_per_s <= 0 or service_ns <= 0 or jobs <= 0:
        raise ValueError("rate, service time and job count must be positive")
    for index in range(jobs):
        gap = rng.exponential(1e9 / rate_per_s)
        timer = SpinFlag(f"poisson.{index}")
        kernel.start_timer(max(1, round(gap)), timer)
        yield BlockOn(timer)
        yield Compute(service_ns)


@dataclass(frozen=True)
class ForkJoinSpec:
    """Shape of a fork-join team built by :func:`fork_join`."""

    threads: int
    iterations: int
    phase_ns: int
    imbalance: float = 0.2
    spin_budget_ns: int = 300_000


def fork_join(kernel: "GuestKernel", rng: np.random.Generator, spec: ForkJoinSpec):
    """Return per-rank behaviour factories for a barrier-synced team."""
    from repro.workloads.base import phase_compute

    if spec.threads < 1 or spec.iterations < 1:
        raise ValueError("need at least one thread and one iteration")
    barrier = OpenMPBarrier(
        kernel, parties=spec.threads, spin_budget_ns=spec.spin_budget_ns,
        name="synthetic.fj",
    )

    def make(rank: int):
        def factory(thread: "Thread"):
            def behaviour():
                for _ in range(spec.iterations):
                    yield phase_compute(rng, spec.phase_ns, spec.imbalance)
                    yield from barrier.wait(thread)

            return behaviour()

        return factory

    return [make(rank) for rank in range(spec.threads)]


class LoadMix:
    """Install a reproducible mixture of synthetic load on one guest."""

    def __init__(self, kernel: "GuestKernel", rng: np.random.Generator):
        self.kernel = kernel
        self.rng = rng
        self.installed: list[str] = []

    def _spawn(self, behaviour, name: str, **kwargs) -> "Thread":
        thread = self.kernel.spawn(behaviour, name, **kwargs)
        self.installed.append(name)
        return thread

    def add_hogs(self, count: int, total_ns: int) -> "LoadMix":
        for index in range(count):
            self._spawn(cpu_hog(total_ns), f"hog{index}")
        return self

    def add_on_off(self, count: int, busy_ns: int, idle_ns: int) -> "LoadMix":
        for index in range(count):
            self._spawn(on_off(self.kernel, busy_ns, idle_ns), f"wave{index}")
        return self

    def add_poisson(self, rate_per_s: float, service_ns: int, jobs: int) -> "LoadMix":
        self._spawn(
            poisson_worker(self.kernel, self.rng, rate_per_s, service_ns, jobs),
            "poisson",
        )
        return self

    def add_fork_join(self, spec: ForkJoinSpec) -> "LoadMix":
        from repro.workloads.base import AppHarness

        harness = AppHarness(self.kernel, "synthetic.fj")
        harness.launch(fork_join(self.kernel, self.rng, spec))
        self.installed.extend(t.name for t in harness.threads)
        return self
