"""Parametric models of the PARSEC 3.0 applications.

PARSEC programs are pthread-based (sleep-then-wakeup synchronization);
``freqmine`` is the one OpenMP member.  We model four structural families
and assign each application calibrated parameters:

``barrier``
    Iterative data-parallel codes that cross a hand-rolled
    mutex+condvar barrier every (short) stage — streamcluster is the
    canonical case (the paper measures ~183 IPIs/s/vCPU).
``pipeline``
    Producer/consumer stages over bounded queues; dedup additionally
    hammers a shared address-space semaphore, producing the paper's
    standout 940 IPIs/s/vCPU.
``locks``
    Frame-oriented codes (bodytrack, fluidanimate, x264, facesim, vips,
    canneal) that mix per-frame compute with mutex-protected shared state
    and a per-frame condvar barrier.
``compute``
    Coarse codes with negligible synchronization (blackscholes between
    sweeps, raytrace, swaptions with none at all).

``freqmine`` reuses the OpenMP runtime at the default 300 K spin count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.guest.sync import GuestMutex, KernelSpinLock, Semaphore
from repro.units import MS, US
from repro.workloads.base import AppHarness, phase_compute
from repro.workloads.openmp import OpenMPRuntime, SPINCOUNT_DEFAULT
from repro.workloads.pthreads import BoundedQueue, MutexCondBarrier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


@dataclass(frozen=True)
class ParsecProfile:
    """Shape parameters of one PARSEC application."""

    name: str
    kind: str  # barrier | pipeline | locks | compute | openmp
    iterations: int
    phase_ns: int
    imbalance: float
    #: Mutex critical sections per phase per thread (locks kind).
    cs_per_phase: int = 0
    #: Hold time of each critical section.
    cs_hold_ns: int = 3 * US
    #: Pipeline: items processed per worker (pipeline kind).
    items: int = 0
    #: Pipeline: shared-semaphore operations per item (dedup's mmap_sem).
    sem_ops_per_item: int = 0
    #: Fraction of each iteration that is a serial section executed by
    #: rank 0 while the team waits (streamcluster's pmedian bookkeeping,
    #: bodytrack's per-frame model update).  Serial sections make the app
    #: latency-bound: the barrier crossings around them cost cross-vCPU
    #: wake-ups in vanilla but stay local when vScale packs the team.
    serial_frac: float = 0.0

    def with_input(self, input_size: str) -> "ParsecProfile":
        """Scale the profile to a PARSEC input size.

        PARSEC's sim inputs grow the number of work units (frames, items,
        options) rather than the per-unit cost; the registered profiles
        correspond to ``simmedium``.
        """
        factors = {
            "simsmall": 0.25,
            "simmedium": 1.0,
            "simlarge": 4.0,
            "native": 16.0,
        }
        if input_size not in factors:
            raise ValueError(
                f"unknown PARSEC input {input_size!r}; choose from {sorted(factors)}"
            )
        from dataclasses import replace

        factor = factors[input_size]
        if self.kind == "pipeline":
            return replace(self, items=max(4, round(self.items * factor)))
        return replace(self, iterations=max(1, round(self.iterations * factor)))


PARSEC_PROFILES: dict[str, ParsecProfile] = {
    "blackscholes": ParsecProfile("blackscholes", "compute", 8, 90 * MS, 0.05),
    "bodytrack": ParsecProfile(
        "bodytrack", "locks", 360, 1400 * US, 0.40, cs_per_phase=6, serial_frac=0.30
    ),
    "canneal": ParsecProfile(
        "canneal", "locks", 90, 8 * MS, 0.12, cs_per_phase=2, serial_frac=0.20
    ),
    "dedup": ParsecProfile(
        "dedup", "pipeline", 0, 700 * US, 0.45, items=2500, sem_ops_per_item=6
    ),
    "facesim": ParsecProfile(
        "facesim", "locks", 200, 3 * MS, 0.25, cs_per_phase=3, serial_frac=0.25
    ),
    "ferret": ParsecProfile(
        "ferret", "pipeline", 0, 4 * MS, 0.15, items=400, sem_ops_per_item=0
    ),
    "fluidanimate": ParsecProfile(
        "fluidanimate", "locks", 240, 2200 * US, 0.25, cs_per_phase=4, serial_frac=0.25
    ),
    "freqmine": ParsecProfile("freqmine", "openmp", 60, 11 * MS, 0.10),
    "raytrace": ParsecProfile("raytrace", "compute", 10, 60 * MS, 0.08),
    "streamcluster": ParsecProfile(
        "streamcluster", "barrier", 400, 1100 * US, 0.40, serial_frac=0.35
    ),
    "swaptions": ParsecProfile("swaptions", "compute", 1, 640 * MS, 0.04),
    "vips": ParsecProfile(
        "vips", "locks", 350, 1300 * US, 0.35, cs_per_phase=5, serial_frac=0.35
    ),
    "x264": ParsecProfile(
        "x264", "locks", 220, 2 * MS, 0.30, cs_per_phase=3, serial_frac=0.20
    ),
}


class ParsecApp:
    """One PARSEC run on a guest."""

    def __init__(
        self,
        kernel: "GuestKernel",
        profile: ParsecProfile,
        rng: np.random.Generator,
        kernel_lock: KernelSpinLock | None = None,
        nthreads: int | None = None,
    ):
        self.kernel = kernel
        self.profile = profile
        self.rng = rng
        self.kernel_lock = kernel_lock
        self.harness = AppHarness(kernel, profile.name)
        self.nthreads = (
            nthreads if nthreads is not None else len(kernel.domain.vcpus)
        )

    def launch(self) -> None:
        kind = self.profile.kind
        if kind == "barrier":
            self._launch_barrier()
        elif kind == "pipeline":
            self._launch_pipeline()
        elif kind == "locks":
            self._launch_locks()
        elif kind == "compute":
            self._launch_compute()
        elif kind == "openmp":
            self._launch_openmp()
        else:  # pragma: no cover - profiles are fixed above
            raise ValueError(f"unknown kind {kind!r}")

    # ------------------------------------------------------------------
    def _launch_barrier(self) -> None:
        profile = self.profile
        barrier = MutexCondBarrier(
            self.kernel, self.nthreads, f"{profile.name}.bar", self.kernel_lock
        )

        def make_factory(rank: int):
            def factory(thread: "Thread"):
                return self._barrier_worker(thread, rank, barrier)

            return factory

        self.harness.launch([make_factory(r) for r in range(self.nthreads)])

    def _barrier_worker(self, thread, rank, barrier):
        profile = self.profile
        parallel_ns = round(profile.phase_ns * (1.0 - profile.serial_frac))
        serial_ns = round(profile.phase_ns * profile.serial_frac * self.nthreads)
        for _ in range(profile.iterations):
            yield phase_compute(self.rng, parallel_ns, profile.imbalance)
            yield from barrier.wait(thread)
            if serial_ns:
                if rank == 0:
                    yield phase_compute(self.rng, serial_ns, 0.1)
                yield from barrier.wait(thread)

    # ------------------------------------------------------------------
    def _launch_pipeline(self) -> None:
        """One producer stage, N-1 worker consumers, a shared semaphore."""
        profile = self.profile
        queue = BoundedQueue(
            self.kernel, capacity=8, name=f"{profile.name}.q", kernel_lock=self.kernel_lock
        )
        shared_sem = Semaphore(
            self.kernel, count=1, name=f"{profile.name}.mmap_sem", kernel_lock=self.kernel_lock
        )
        consumers = max(1, self.nthreads - 1)

        def producer_factory(thread: "Thread"):
            return self._pipeline_producer(thread, queue, consumers)

        def consumer_factory(thread: "Thread"):
            return self._pipeline_consumer(thread, queue, shared_sem)

        self.harness.launch([producer_factory] + [consumer_factory] * consumers)

    def _pipeline_producer(self, thread, queue, consumers):
        profile = self.profile
        # Chunking/read stage: cheap per item relative to workers.
        per_item = max(20 * US, profile.phase_ns // 4)
        for index in range(profile.items):
            yield phase_compute(self.rng, per_item, profile.imbalance)
            yield from queue.put(thread, index)
        yield from queue.close(thread)

    def _pipeline_consumer(self, thread, queue, shared_sem):
        profile = self.profile
        while True:
            item = yield from queue.get(thread)
            if item is None:
                return
            for _ in range(profile.sem_ops_per_item):
                yield from shared_sem.down(thread)
                yield phase_compute(self.rng, 15 * US, 0.3)
                yield from shared_sem.up(thread)
            yield phase_compute(self.rng, profile.phase_ns, profile.imbalance)

    # ------------------------------------------------------------------
    def _launch_locks(self) -> None:
        profile = self.profile
        shared = GuestMutex(self.kernel, f"{profile.name}.state", kernel_lock=self.kernel_lock)
        frame_barrier = MutexCondBarrier(
            self.kernel, self.nthreads, f"{profile.name}.frame", self.kernel_lock
        )

        def make_factory(rank: int):
            def factory(thread: "Thread"):
                return self._locks_worker(thread, rank, shared, frame_barrier)

            return factory

        self.harness.launch([make_factory(r) for r in range(self.nthreads)])

    def _locks_worker(self, thread, rank, shared, frame_barrier):
        profile = self.profile
        parallel_ns = round(profile.phase_ns * (1.0 - profile.serial_frac))
        serial_ns = round(profile.phase_ns * profile.serial_frac * self.nthreads)
        for _ in range(profile.iterations):
            slice_ns = parallel_ns // max(1, profile.cs_per_phase)
            for _ in range(profile.cs_per_phase):
                yield phase_compute(self.rng, slice_ns, profile.imbalance)
                yield from shared.lock(thread)
                yield phase_compute(self.rng, profile.cs_hold_ns, 0.2)
                yield from shared.unlock(thread)
            yield from frame_barrier.wait(thread)
            if serial_ns:
                # Per-frame model update on the main thread.
                if rank == 0:
                    yield phase_compute(self.rng, serial_ns, 0.1)
                yield from frame_barrier.wait(thread)

    # ------------------------------------------------------------------
    def _launch_compute(self) -> None:
        profile = self.profile
        barrier = MutexCondBarrier(
            self.kernel, self.nthreads, f"{profile.name}.join", self.kernel_lock
        )

        def factory(thread: "Thread"):
            return self._compute_worker(thread, barrier)

        self.harness.launch([factory] * self.nthreads)

    def _compute_worker(self, thread, barrier):
        profile = self.profile
        for _ in range(profile.iterations):
            yield phase_compute(self.rng, profile.phase_ns, profile.imbalance)
            yield from barrier.wait(thread)

    # ------------------------------------------------------------------
    def _launch_openmp(self) -> None:
        profile = self.profile
        runtime = OpenMPRuntime(
            self.kernel,
            spincount=SPINCOUNT_DEFAULT,
            rng=self.rng,
            kernel_lock=self.kernel_lock,
        )
        phases = [(profile.phase_ns, profile.imbalance)] * profile.iterations
        runtime.parallel_region(self.harness, phases)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.harness.done

    @property
    def duration_ns(self) -> int:
        return self.harness.duration_ns
