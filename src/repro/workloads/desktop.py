"""Interactive "virtual desktop" background VMs.

The paper's experimental trick for generating *fluctuating* co-located
load: each background VM runs a photo-slideshow that periodically opens a
large (2802x1849) JPEG — a few hundred milliseconds of full-core decode,
then idle viewing time.  The spiky consumption constantly changes the
worker VM's CPU extendability, which is exactly the condition vScale is
designed for.

The model: a decode thread that sleeps for a think interval and then burns
a decode burst, plus a lighter render thread woken per slide (so the VM
exercises both of its vCPUs, as a desktop with a compositor would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.guest.actions import BlockOn, Compute, SpinFlag, WaitQueue
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass
class SlideshowConfig:
    """Timing parameters of the slideshow."""

    #: Mean think time between opening two images.
    interval_ns: int = 1200 * MS
    #: Jitter (uniform +-) on the interval so VMs do not synchronize.
    interval_jitter_ns: int = 600 * MS
    #: Mean decode burst (full-core; a 2802x1849 JPEG decode + scale).
    decode_ns: int = 2800 * MS
    #: Decode burst jitter (+- uniform).
    decode_jitter_ns: int = 1000 * MS
    #: Render/composite burst on the second thread, concurrent with the
    #: decode (progressive rendering), per slide.
    render_ns: int = 2600 * MS
    #: Compositor/UI tick period (60 Hz) — interactive desktops wake
    #: constantly even between slides, and each wake BOOST-preempts the
    #: vCPU's home pCPU.  These short asymmetric interruptions are the
    #: "abrupt delays" of the paper's Figure 1.
    ui_tick_ns: int = 16_700_000
    #: CPU burned per UI tick (compositing, cursor, timers).
    ui_work_ns: int = 3 * MS


class PhotoSlideshow:
    """Install the slideshow workload on a (typically 2-vCPU) guest."""

    def __init__(
        self,
        kernel: "GuestKernel",
        rng: np.random.Generator,
        config: SlideshowConfig | None = None,
    ):
        self.kernel = kernel
        self.rng = rng
        self.config = config or SlideshowConfig()
        self.slides_shown = 0
        self._render_queue = WaitQueue("slideshow.render")
        self._render_queue.kernel = kernel
        self._render_pending = 0

    def install(self) -> None:
        kernel = self.kernel
        placeholder_d: list = []
        placeholder_r: list = []
        placeholder_u: list = []

        def deferred(placeholder):
            def gen():
                yield from placeholder[0]

            return gen()

        decode_thread = kernel.spawn(deferred(placeholder_d), name="slideshow.decode")
        placeholder_d.append(self._decoder(decode_thread))
        render_thread = kernel.spawn(deferred(placeholder_r), name="slideshow.render")
        placeholder_r.append(self._renderer(render_thread))
        ui_thread = kernel.spawn(deferred(placeholder_u), name="slideshow.ui")
        placeholder_u.append(self._ui_loop(ui_thread))

    def _ui_loop(self, thread):
        """The 60 Hz compositor tick: short, constant, BOOST-triggering."""
        config = self.config
        kernel = self.kernel
        tick_index = 0
        while True:
            jitter = int(self.rng.uniform(-config.ui_tick_ns // 4, config.ui_tick_ns // 4))
            timer = SpinFlag(f"ui.t{tick_index}")
            kernel.start_timer(max(1, config.ui_tick_ns + jitter), timer)
            yield BlockOn(timer)
            yield Compute(max(100_000, int(self.rng.normal(config.ui_work_ns, config.ui_work_ns * 0.3))))
            tick_index += 1

    def _decoder(self, thread):
        config = self.config
        kernel = self.kernel
        # Random initial phase so co-located desktops are staggered.
        initial = int(self.rng.uniform(0, config.interval_ns))
        timer = SpinFlag("slideshow.phase0")
        kernel.start_timer(max(1, initial), timer)
        yield BlockOn(timer)
        while True:
            decode = config.decode_ns + int(
                self.rng.uniform(-config.decode_jitter_ns, config.decode_jitter_ns)
            )
            # The compositor renders progressively while the decode runs, so
            # a slide change keeps both of the desktop's vCPUs busy.
            self.slides_shown += 1
            self._render_pending += 1
            self._render_queue.fire_one()
            yield Compute(max(1 * MS, decode))
            think = config.interval_ns + int(
                self.rng.uniform(-config.interval_jitter_ns, config.interval_jitter_ns)
            )
            timer = SpinFlag(f"slideshow.s{self.slides_shown}")
            kernel.start_timer(max(1 * MS, think), timer)
            yield BlockOn(timer)

    def _renderer(self, thread):
        config = self.config
        while True:
            if self._render_pending == 0:
                yield BlockOn(self._render_queue)
                continue
            self._render_pending -= 1
            yield Compute(config.render_ns)
