"""The Apache web server + httperf experiment (Figure 14).

The paper serves a 16 KB file over a 1 GbE link from a 4-vCPU VM and drives
it with httperf at constant request rates.  Performance hinges on three
latencies, all shaped by vCPU scheduling:

* **connection time** — a SYN's event-channel interrupt must reach a
  *running* vCPU before the handshake completes;
* **response time** — the worker handling the request must be woken
  (reschedule IPI) and scheduled;
* **reply rate** — wasted spinning on the socket/accept lock plus delayed
  interrupts collapse throughput once the request rate passes what the
  delayed VM can absorb.

The model: an open-loop client posts per-request events to a NIC event
channel; the in-guest handler accepts into a bounded backlog (drops beyond
it) and wakes idle workers; workers dequeue under a kernel spin lock (the
LHP hot spot), do the request compute, and push the reply through a shared
1 Gbps link with per-reply serialization delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.guest.actions import BlockOn, WaitQueue
from repro.guest.sync import KernelSpinLock
from repro.metrics.collectors import Counter, LatencyReservoir
from repro.units import US
from repro.workloads.base import phase_compute

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass
class Request:
    """One HTTP request's lifecycle timestamps (ns)."""

    sent_at: int
    accepted_at: int | None = None
    replied_at: int | None = None


@dataclass
class ApacheConfig:
    """Server and link parameters."""

    workers: int = 16
    #: Listen backlog; SYNs beyond it are dropped (no reply).
    backlog: int = 128
    #: Mean CPU to serve one request: softirq RX + TCP/socket work + httpd
    #: parse + sendfile of the 16 KB body.
    service_ns: int = 300 * US
    #: Service-time coefficient of variation.
    service_cv: float = 0.25
    #: Accept/socket critical section length (kernel spin lock hold) —
    #: where lock-holder preemption bites and pv-spinlock helps.
    sock_lock_ns: int = 15 * US
    #: Reply serialization time on the wire: 16 KB at 1 Gbps.
    reply_wire_ns: int = 131 * US
    #: One-way network latency between client and server.
    rtt_ns: int = 200 * US


@dataclass
class HttperfResult:
    """What the client measures over one run (Figure 14's three panels)."""

    request_rate: float
    duration_ns: int
    sent: int = 0
    replies: int = 0
    drops: int = 0
    connection_time = None
    response_time = None
    #: Wall-clock window over which the replies actually arrived; when the
    #: wire (or a backlog drain) stretches past the offered-load window,
    #: the rate is computed over this instead, as a real client would.
    effective_window_ns: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def reply_rate(self) -> float:
        window = max(self.duration_ns, self.effective_window_ns)
        return self.replies * 1e9 / window


class ApacheServer:
    """The in-guest server: NIC handler + worker pool."""

    def __init__(
        self,
        kernel: "GuestKernel",
        config: ApacheConfig | None = None,
        rng: np.random.Generator | None = None,
        kernel_lock: KernelSpinLock | None = None,
    ):
        self.kernel = kernel
        self.config = config or ApacheConfig()
        self.rng = rng if rng is not None else kernel.machine.seeds.stream(
            f"apache.{kernel.domain.name}", "normal"
        )
        self.sock_lock = kernel_lock or KernelSpinLock(kernel, "apache.socklock")
        self.channel = kernel.domain.new_event_channel("nic-rx", bound_vcpu=0)
        self.channel.handler = self._rx_irq
        self.accept_queue: list[Request] = []
        self.idle_workers = WaitQueue("apache.idle")
        self.idle_workers.kernel = kernel
        #: The shared outbound link: time it is next free.
        self._link_free_at = 0
        self.drops = Counter()
        self.accepted = Counter()
        self.connection_time = LatencyReservoir()
        self.response_time = LatencyReservoir()
        self.replies = Counter()
        self.last_reply_at = 0
        self._stopping = False
        for w in range(self.config.workers):
            self._spawn_worker(w)

    def _spawn_worker(self, index: int) -> None:
        placeholder: list = []

        def deferred():
            yield from placeholder[0]

        thread = self.kernel.spawn(deferred(), name=f"httpd.w{index}")
        placeholder.append(self._worker(thread))

    # ------------------------------------------------------------------
    # NIC receive path (runs in event-channel IRQ context)
    # ------------------------------------------------------------------
    def _rx_irq(self, payload: object) -> None:
        request: Request = payload  # type: ignore[assignment]
        now = self.kernel.sim.now
        if len(self.accept_queue) >= self.config.backlog:
            self.drops.inc()
            return
        request.accepted_at = now
        self.accepted.inc()
        # SYN->SYN/ACK completes once the interrupt is handled: one-way
        # delay out, interrupt delay (already elapsed), one-way back.
        self.connection_time.record(now - request.sent_at + self.config.rtt_ns)
        self.accept_queue.append(request)
        self.idle_workers.fire_one()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker(self, thread):
        config = self.config
        while True:
            if self._stopping:
                return
            if not self.accept_queue:
                yield BlockOn(self.idle_workers)
                continue
            # Dequeue under the socket lock: the kernel-level LHP hot spot.
            yield from self.sock_lock.acquire(thread)
            request = self.accept_queue.pop(0) if self.accept_queue else None
            yield from self.sock_lock.release(thread)
            if request is None:
                continue
            yield phase_compute(self.rng, config.service_ns, config.service_cv)
            self._send_reply(request)

    def _send_reply(self, request: Request) -> None:
        now = self.kernel.sim.now
        start = max(now, self._link_free_at)
        done = start + self.config.reply_wire_ns
        self._link_free_at = done
        request.replied_at = done
        # The reply only counts once its last byte leaves the wire.
        self.kernel.sim.schedule(done - now, self._reply_delivered, request)

    def _reply_delivered(self, request: Request) -> None:
        self.replies.inc()
        assert request.replied_at is not None
        self.last_reply_at = request.replied_at
        self.response_time.record(
            request.replied_at - request.sent_at + self.config.rtt_ns // 2
        )

    def stop(self) -> None:
        """Stop workers at their next dequeue attempt (end of a run)."""
        self._stopping = True
        while self.idle_workers.fire_one() is not None:
            pass


class HttperfClient:
    """An open-loop constant-rate client (httperf --rate)."""

    def __init__(self, server: ApacheServer, rng: np.random.Generator | None = None):
        self.server = server
        self.sim = server.kernel.sim
        self.rng = rng if rng is not None else server.kernel.machine.seeds.generator(
            "httperf"
        )
        self._result: HttperfResult | None = None

    def start(self, rate_per_s: float, duration_ns: int) -> HttperfResult:
        """Schedule the whole arrival process; read results after running."""
        if rate_per_s <= 0:
            raise ValueError("request rate must be positive")
        result = HttperfResult(request_rate=rate_per_s, duration_ns=duration_ns)
        self._result = result
        self._window_start = self.sim.now
        interval = 1e9 / rate_per_s
        t = 0.0
        while t < duration_ns:
            self.sim.schedule(round(t) + self.server.config.rtt_ns // 2, self._send)
            result.sent += 1
            t += interval
        return result

    def _send(self) -> None:
        request = Request(sent_at=self.sim.now - self.server.config.rtt_ns // 2)
        self.server.channel.post(request)

    def collect(self) -> HttperfResult:
        """Finalize measurements after the simulation ran the duration."""
        result = self._result
        if result is None:
            raise RuntimeError("start() was never called")
        server = self.server
        result.replies = server.replies.value
        result.drops = server.drops.value
        result.connection_time = server.connection_time
        result.response_time = server.response_time
        result.effective_window_ns = max(
            result.duration_ns, server.last_reply_at - self._window_start
        )
        return result
