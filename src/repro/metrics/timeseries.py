"""Windowed time-series collection.

Experiments that plot quantities *over time* (Figure 8's active-vCPU
trace, pool-utilization traces, per-second IPI rates) need values bucketed
into fixed windows rather than run-level aggregates.  Two collectors:

* :class:`WindowedRate` — events per window (interrupt rates, wakeups);
* :class:`SteppedSeries` — a piecewise-constant value sampled at change
  points (online vCPU count, queue depth), integrable for time-averages.
"""

from __future__ import annotations

from dataclasses import dataclass


class WindowedRate:
    """Counts events into fixed-size time windows."""

    def __init__(self, window_ns: int, start_ns: int = 0):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = window_ns
        self.start_ns = start_ns
        self._buckets: dict[int, int] = {}

    def record(self, time_ns: int, n: int = 1) -> None:
        if time_ns < self.start_ns:
            raise ValueError("event before series start")
        index = (time_ns - self.start_ns) // self.window_ns
        self._buckets[index] = self._buckets.get(index, 0) + n

    def bucket(self, index: int) -> int:
        return self._buckets.get(index, 0)

    def series(self, until_ns: int | None = None) -> list[tuple[int, float]]:
        """(window start ns, events per second) points, gaps included."""
        if not self._buckets and until_ns is None:
            return []
        last = (
            (until_ns - self.start_ns) // self.window_ns
            if until_ns is not None
            else max(self._buckets)
        )
        per_second = 1e9 / self.window_ns
        return [
            (self.start_ns + i * self.window_ns, self.bucket(i) * per_second)
            for i in range(last + 1)
        ]

    def peak_rate(self) -> float:
        if not self._buckets:
            return 0.0
        return max(self._buckets.values()) * 1e9 / self.window_ns


@dataclass(frozen=True)
class _Step:
    time_ns: int
    value: float


class SteppedSeries:
    """A piecewise-constant series recorded at change points."""

    def __init__(self, initial: float, start_ns: int = 0):
        self._steps: list[_Step] = [_Step(start_ns, initial)]

    def record(self, time_ns: int, value: float) -> None:
        last = self._steps[-1]
        if time_ns < last.time_ns:
            raise ValueError("time going backwards")
        if value == last.value:
            return
        self._steps.append(_Step(time_ns, value))

    def value_at(self, time_ns: int) -> float:
        if time_ns < self._steps[0].time_ns:
            raise ValueError("before series start")
        current = self._steps[0].value
        for step in self._steps:
            if step.time_ns > time_ns:
                break
            current = step.value
        return current

    def time_average(self, until_ns: int) -> float:
        """Time-weighted mean of the series over [start, until]."""
        start = self._steps[0].time_ns
        if until_ns <= start:
            raise ValueError("empty averaging interval")
        total = 0.0
        for i, step in enumerate(self._steps):
            if step.time_ns >= until_ns:
                break
            end = (
                min(self._steps[i + 1].time_ns, until_ns)
                if i + 1 < len(self._steps)
                else until_ns
            )
            if end > step.time_ns:
                total += step.value * (end - step.time_ns)
        return total / (until_ns - start)

    def change_points(self) -> list[tuple[int, float]]:
        return [(s.time_ns, s.value) for s in self._steps]

    def distinct_values(self) -> set[float]:
        return {s.value for s in self._steps}
