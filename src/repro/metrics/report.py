"""Plain-text table/series rendering for the benchmark harness.

The benchmark for each paper table/figure prints the same rows or series the
paper reports; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A fixed-column text table with right-aligned numeric cells."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_render_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.rjust(widths[i]) if _is_numeric(cell) else cell.ljust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False


def format_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """Render an (x, y) series as one line per point, for figure benches."""
    lines = [f"series: {name}"]
    for x, y in points:
        lines.append(f"  {_render_cell(x)} -> {_render_cell(y)}")
    return "\n".join(lines)
