"""Measurement infrastructure: counters, time-in-state accounting, latency
reservoirs and report formatting for the experiment harness."""

from repro.metrics.collectors import (
    Counter,
    LatencyReservoir,
    RateMeter,
    StateTimer,
    summarize,
    Summary,
)
from repro.metrics.ascii import cdf_plot, hbar_chart, step_trace
from repro.metrics.report import Table, format_series
from repro.metrics.timeseries import SteppedSeries, WindowedRate

__all__ = [
    "Counter",
    "LatencyReservoir",
    "RateMeter",
    "StateTimer",
    "Summary",
    "summarize",
    "Table",
    "format_series",
    "SteppedSeries",
    "WindowedRate",
    "cdf_plot",
    "hbar_chart",
    "step_trace",
]
