"""ASCII chart rendering for benchmark output.

The figure benchmarks print the paper's series as rows; these helpers add
terminal-friendly visual shapes — horizontal bar charts for the normalized
execution-time figures, and step plots for CDFs and traces — so a reader
can eyeball the reproduction against the paper's plots without leaving the
terminal.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Glyph used for bar fills.
_BAR = "#"


def hbar_chart(
    title: str,
    rows: Sequence[tuple[str, float]],
    width: int = 48,
    max_value: float | None = None,
    unit: str = "",
) -> str:
    """A labelled horizontal bar chart.

    >>> print(hbar_chart("demo", [("a", 1.0), ("b", 0.5)], width=10))
    demo
    a  ########## 1.00
    b  #####      0.50
    """
    if not rows:
        raise ValueError("no rows to chart")
    if width < 4:
        raise ValueError("width too small")
    peak = max_value if max_value is not None else max(v for _, v in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title]
    for label, value in rows:
        filled = max(0, min(width, round(value / peak * width)))
        bar = (_BAR * filled).ljust(width)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def cdf_plot(
    title: str,
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "",
) -> str:
    """Plot a CDF (or any monotone series) as a dot grid.

    ``points`` are (value, cumulative fraction in [0, 1]) pairs.
    """
    if not points:
        raise ValueError("no points to plot")
    if width < 8 or height < 3:
        raise ValueError("plot area too small")
    xs = [x for x, _ in points]
    lo, hi = min(xs), max(xs)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, fraction in points:
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - fraction) * (height - 1)))
        grid[row][col] = "*"
    lines = [title]
    for index, row in enumerate(grid):
        axis = "1.0" if index == 0 else ("0.0" if index == height - 1 else "   ")
        lines.append(f"{axis} |" + "".join(row))
    lines.append("    +" + "-" * width)
    left = f"{lo:.3g}"
    right = f"{hi:.3g}"
    gap = max(1, width - len(left) - len(right))
    lines.append("     " + left + " " * gap + right + (f"  {x_label}" if x_label else ""))
    return "\n".join(lines)


def step_trace(
    title: str,
    points: Sequence[tuple[float, float]],
    width: int = 64,
    levels: Iterable[float] | None = None,
) -> str:
    """Render a piecewise-constant trace (e.g. Figure 8's active vCPUs).

    ``points`` are (time, value) change points; each level gets one text
    row, marked across the time span it is held.
    """
    if not points:
        raise ValueError("no points to plot")
    times = [t for t, _ in points]
    t_lo, t_hi = min(times), max(times)
    span = (t_hi - t_lo) or 1.0
    values = sorted(set(levels) if levels is not None else {v for _, v in points})
    lines = [title]
    for level in reversed(values):
        row = [" "] * width
        for index, (time, value) in enumerate(points):
            start_col = min(width - 1, int((time - t_lo) / span * (width - 1)))
            end_time = points[index + 1][0] if index + 1 < len(points) else t_hi
            end_col = min(width - 1, int((end_time - t_lo) / span * (width - 1)))
            if value == level:
                for col in range(start_col, max(start_col, end_col) + 1):
                    row[col] = "="
        lines.append(f"{level:>5g} |" + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       {t_lo:.3g}" + " " * max(1, width - 12) + f"{t_hi:.3g}")
    return "\n".join(lines)
