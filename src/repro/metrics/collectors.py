"""Measurement primitives used across the simulation stack.

Each collector is intentionally tiny: the hot paths of the credit scheduler
and guest kernels call into these on every state change, so they only do
arithmetic and defer any statistics to summary time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class StateTimer:
    """Accumulate time spent in named states.

    The hypervisor uses one of these per vCPU to answer "how long was this
    vCPU running / runnable-but-waiting / blocked" — the waiting figure is
    the paper's headline metric (Figure 9).
    """

    __slots__ = ("_state", "_since", "totals")

    def __init__(self, initial_state: str, now: int = 0):
        self._state = initial_state
        self._since = now
        self.totals: dict[str, int] = {}

    @property
    def state(self) -> str:
        return self._state

    def transition(self, new_state: str, now: int) -> None:
        """Close the current state interval and open a new one."""
        elapsed = now - self._since
        if elapsed < 0:
            raise ValueError("StateTimer observed time going backwards")
        self.totals[self._state] = self.totals.get(self._state, 0) + elapsed
        self._state = new_state
        self._since = now

    def flush(self, now: int) -> None:
        """Fold the in-progress interval into the totals (idempotent)."""
        self.transition(self._state, now)

    def total(self, state: str) -> int:
        return self.totals.get(state, 0)


class RateMeter:
    """Count events and report a rate over the observed window."""

    __slots__ = ("count", "start", "_last")

    def __init__(self, start: int = 0):
        self.count = 0
        self.start = start
        self._last = start

    def record(self, now: int, n: int = 1) -> None:
        self.count += n
        self._last = max(self._last, now)

    def per_second(self, now: int | None = None) -> float:
        end = self._last if now is None else now
        window_ns = max(1, end - self.start)
        return self.count * 1e9 / window_ns

    def reset(self, now: int) -> None:
        self.count = 0
        self.start = now
        self._last = now


class LatencyReservoir:
    """Store individual latency samples for percentile reporting.

    The experiments record at most a few hundred thousand samples per run, so
    a plain list plus on-demand sorting is the simplest correct structure.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: list[int] = []

    def record(self, value: int) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, fraction: float) -> int:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self.samples:
            raise ValueError("no samples recorded")
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(self.samples) / len(self.samples)

    def min(self) -> int:
        return min(self.samples)

    def max(self) -> int:
        return max(self.samples)

    def cdf(self) -> list[tuple[int, float]]:
        """Return (value, cumulative_fraction) points for plotting."""
        ordered = sorted(self.samples)
        n = len(ordered)
        return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


@dataclass
class Summary:
    """Five-number-ish summary of a latency reservoir, in nanoseconds."""

    count: int
    mean: float
    minimum: int
    p50: int
    p99: int
    maximum: int
    extras: dict[str, float] = field(default_factory=dict)


def summarize(reservoir: LatencyReservoir) -> Summary:
    """Build a :class:`Summary` from a reservoir with at least one sample."""
    return Summary(
        count=len(reservoir),
        mean=reservoir.mean(),
        minimum=reservoir.min(),
        p50=reservoir.percentile(0.50),
        p99=reservoir.percentile(0.99),
        maximum=reservoir.max(),
    )
