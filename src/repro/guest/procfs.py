"""A /proc-style introspection surface for the guest kernel.

The paper's Table 2 experiment reads ``/proc/interrupts`` inside the guest
to show that a frozen vCPU receives neither timer interrupts nor IPIs.
This module provides the equivalent read-only views over a
:class:`repro.guest.kernel.GuestKernel`, formatted like their Linux
counterparts so the output is immediately recognizable:

* :func:`proc_interrupts` — per-vCPU timer/IPI/event-channel counts;
* :func:`proc_stat` — per-vCPU run/wait/idle time (a /proc/stat analogue
  drawn from the hypervisor's state timers, i.e. steal time included);
* :func:`proc_schedstat` — runqueue depths, migrations and context info;
* :func:`proc_cpuinfo` — online/frozen topology, one stanza per vCPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hypervisor.domain import VCPUState
from repro.metrics.report import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


def proc_interrupts(kernel: "GuestKernel") -> str:
    """Per-vCPU interrupt counts, /proc/interrupts style."""
    kernel.sync_ticks()  # fold coalesced off-CPU ticks into the counters
    n = len(kernel.runqueues)
    table = Table("", ["", *[f"CPU{i}" for i in range(n)], ""])
    table.add_row(
        "LOC:",
        *[int(kernel.timer_interrupts[i]) for i in range(n)],
        "Local timer interrupts",
    )
    table.add_row(
        "RES:",
        *[int(kernel.domain.vcpus[i].ipi_received) for i in range(n)],
        "Rescheduling interrupts",
    )
    evtchn = [
        int(kernel.domain.vcpus[i].irq_delivered)
        - int(kernel.domain.vcpus[i].ipi_received)
        for i in range(n)
    ]
    table.add_row("EVT:", *evtchn, "Event-channel upcalls")
    # Strip the empty title lines the Table helper produces.
    return "\n".join(table.render().splitlines()[2:])


def proc_stat(kernel: "GuestKernel") -> str:
    """Per-vCPU time-in-state, /proc/stat style (values in ms).

    ``steal`` is the hypervisor's runnable-but-not-running time — the
    quantity Figure 9 aggregates per domain.
    """
    now = kernel.sim.now
    lines = ["cpu  state times in ms (run steal idle frozen)"]
    for index, vcpu in enumerate(kernel.domain.vcpus):
        vcpu.timer.flush(now)
        run = vcpu.timer.total(VCPUState.RUNNING.value) // 1_000_000
        steal = vcpu.timer.total(VCPUState.RUNNABLE.value) // 1_000_000
        idle = vcpu.timer.total(VCPUState.BLOCKED.value) // 1_000_000
        frozen = vcpu.timer.total(VCPUState.FROZEN.value) // 1_000_000
        lines.append(f"cpu{index} {run} {steal} {idle} {frozen}")
    return "\n".join(lines)


def proc_schedstat(kernel: "GuestKernel") -> str:
    """Runqueue snapshot, loosely /proc/schedstat shaped."""
    lines = ["cpu  runnable current migrations_in_total"]
    migrations = {i: 0 for i in range(len(kernel.runqueues))}
    for thread in kernel.threads:
        if thread.vcpu_index is not None:
            migrations[thread.vcpu_index] = (
                migrations.get(thread.vcpu_index, 0) + thread.migrations
            )
    for rq in kernel.runqueues:
        current = rq.current.name if rq.current else "-"
        lines.append(
            f"cpu{rq.index} {len(rq.ready)} {current} {migrations.get(rq.index, 0)}"
        )
    return "\n".join(lines)


def proc_cpuinfo(kernel: "GuestKernel") -> str:
    """Topology stanzas: which vCPUs are online, frozen, or pending."""
    stanzas = []
    for index, vcpu in enumerate(kernel.domain.vcpus):
        if index in kernel.cpu_freeze_mask or vcpu.state is VCPUState.FROZEN:
            status = "frozen"
        elif vcpu.freeze_pending:
            status = "freezing"
        else:
            status = "online"
        stanzas.append(f"processor : {index}\nstatus    : {status}")
    return "\n\n".join(stanzas)


def online_mask(kernel: "GuestKernel") -> list[int]:
    """cpu_online_mask as a list of online vCPU indices."""
    return [
        index
        for index in range(len(kernel.runqueues))
        if index not in kernel.cpu_freeze_mask
    ]
