"""Linux CPU hotplug: the heavyweight baseline vScale replaces.

The paper measures add/remove latencies of Linux's CPU hotplug across four
kernel versions (Figure 5): removal ranges from a few milliseconds to over
100 ms, and addition is 350–500 µs at best (3.14.15) but tens of
milliseconds on the other kernels.  We cannot run those kernels, so this
module models hotplug as the sum of its published phases:

* **notifier chains** — every subsystem's CPU_UP/DOWN callbacks, a long
  sequential chain whose cost grew with kernel size;
* **stop_machine()** — the global "halt all CPUs with interrupts disabled"
  rendezvous used on removal, whose cost depends on system size and has a
  heavy tail (it must interrupt-synchronize every online CPU);
* **kthread park/unpark and teardown** — creating/parking the per-CPU
  servants;
* **XenStore/XenBus round trip** — dom0 writes the availability bit and the
  guest's callback reacts, adding milliseconds before the kernel even
  starts.

Per-version parameters are fitted so the sampled CDFs reproduce the
figure's ordering and ranges.  The same model doubles as a *mechanism* for
end-to-end ablations: :class:`HotplugMechanism` performs a (dis)connect
with the sampled latency and, for removals, a stop_machine-style stall of
the whole guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.units import MS, US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass(frozen=True)
class HotplugPhases:
    """Latency parameters (lognormal mean/sigma pairs, ns) per direction."""

    #: (median_ns, sigma) of the notifier-chain + teardown cost on removal.
    down_notifiers: tuple[int, float]
    #: (median_ns, sigma) of stop_machine()'s rendezvous on removal.
    down_stop_machine: tuple[int, float]
    #: (median_ns, sigma) of the bring-up path on addition.
    up_bringup: tuple[int, float]
    #: Fixed floor: XenBus watch + trap overheads, ns.
    bus_floor: int


#: Fitted per-version parameters.  Medians/sigmas chosen so that sampled
#: distributions land in the ranges reported in Figure 5: v3.14.15 has the
#: fast (sub-ms) up path; 2.6.32 is the slowest overall; everything has a
#: multi-10-ms removal tail.
KERNEL_VERSIONS: dict[str, HotplugPhases] = {
    "v2.6.32": HotplugPhases(
        down_notifiers=(30 * MS, 0.55),
        down_stop_machine=(25 * MS, 0.70),
        up_bringup=(40 * MS, 0.45),
        bus_floor=2 * MS,
    ),
    "v3.2.60": HotplugPhases(
        down_notifiers=(18 * MS, 0.50),
        down_stop_machine=(18 * MS, 0.65),
        up_bringup=(22 * MS, 0.45),
        bus_floor=2 * MS,
    ),
    "v3.14.15": HotplugPhases(
        down_notifiers=(8 * MS, 0.50),
        down_stop_machine=(10 * MS, 0.60),
        up_bringup=(260 * US, 0.35),
        bus_floor=280 * US,
    ),
    "v4.2": HotplugPhases(
        down_notifiers=(5 * MS, 0.45),
        down_stop_machine=(7 * MS, 0.60),
        up_bringup=(12 * MS, 0.40),
        bus_floor=1 * MS,
    ),
}


class HotplugModel:
    """Sample hotplug latencies for one kernel version."""

    def __init__(self, version: str, rng: np.random.Generator):
        if version not in KERNEL_VERSIONS:
            raise KeyError(
                f"unknown kernel {version!r}; choose from {sorted(KERNEL_VERSIONS)}"
            )
        self.version = version
        self.phases = KERNEL_VERSIONS[version]
        self.rng = rng

    def _lognormal(self, median_ns: int, sigma: float) -> int:
        return round(float(self.rng.lognormal(np.log(median_ns), sigma)))

    def sample_remove_ns(self) -> int:
        """Latency of taking one CPU offline (unhotplug)."""
        phases = self.phases
        return (
            phases.bus_floor
            + self._lognormal(*phases.down_notifiers)
            + self._lognormal(*phases.down_stop_machine)
        )

    def sample_add_ns(self) -> int:
        """Latency of bringing one CPU online (hotplug)."""
        phases = self.phases
        return phases.bus_floor + self._lognormal(*phases.up_bringup)

    def sample_stall_ns(self) -> int:
        """The stop_machine() portion alone: how long *every* online CPU is
        held with interrupts off during a removal."""
        return self._lognormal(*self.phases.down_stop_machine)


class HotplugMechanism:
    """Use CPU hotplug as the vCPU reconfiguration mechanism (ablation).

    Semantically equivalent to vScale's freeze/unfreeze, but each operation
    takes the sampled hotplug latency, and removal additionally stalls all
    of the guest's vCPUs for the stop_machine window (they keep their pCPUs
    but make no progress — we model the stall as an extra in-guest overhead
    charged to every runqueue).
    """

    def __init__(self, kernel: "GuestKernel", model: HotplugModel):
        self.kernel = kernel
        self.model = model
        self.operations = 0
        self.busy = False

    def remove_vcpu(self, index: int, on_done=None) -> int:
        """Start removing a vCPU; returns the sampled total latency (ns)."""
        if index == 0:
            raise ValueError("vCPU0 cannot be unplugged")
        if self.busy:
            raise RuntimeError("hotplug operation already in flight")
        kernel = self.kernel
        latency = self.model.sample_remove_ns()
        stall = self.model.sample_stall_ns()
        self.busy = True
        self.operations += 1
        # stop_machine: every vCPU burns `stall` doing nothing useful.
        for rq in kernel.runqueues:
            rq.pending_overhead_ns += stall
        kernel.cpu_freeze_mask.add(index)
        kernel.sim.schedule(latency, self._finish_remove, index, on_done)
        return latency

    def _finish_remove(self, index: int, on_done) -> None:
        kernel = self.kernel
        vcpu = kernel.domain.vcpus[index]
        kernel.machine.hyp_mark_freeze(vcpu)
        kernel.run_in_context(
            0,
            lambda: kernel.machine.hyp_send_ipi(
                kernel.domain.vcpus[0], vcpu, _resched_class()
            ),
        )
        kernel.machine.hyp_tickle_vcpu(vcpu)
        self.busy = False
        if on_done is not None:
            on_done()

    def add_vcpu(self, index: int, on_done=None) -> int:
        """Start re-adding a vCPU; returns the sampled total latency (ns)."""
        if self.busy:
            raise RuntimeError("hotplug operation already in flight")
        kernel = self.kernel
        latency = self.model.sample_add_ns()
        self.busy = True
        self.operations += 1
        kernel.sim.schedule(latency, self._finish_add, index, on_done)
        return latency

    def _finish_add(self, index: int, on_done) -> None:
        kernel = self.kernel
        kernel.cpu_freeze_mask.discard(index)
        kernel.machine.hyp_unfreeze_vcpu(kernel.domain.vcpus[index])
        self.busy = False
        if on_done is not None:
            on_done()


def _resched_class():
    from repro.hypervisor.irq import IRQClass

    return IRQClass.RESCHED_IPI


class XenBusCpuDriver:
    """The guest's XenBus CPU driver: watches the availability keys that
    dom0's toolstack writes and reacts by running CPU hotplug.

    This is the control path a dom0-centralized manager (VCPU-Bal, or
    plain ``xl vcpu-set``) must take; its latency — XenStore write, watch
    upcall, then the hotplug operation itself — is the 100x-100,000x
    overhead Figure 5 and Table 3 contrast with vScale's balancer.
    """

    def __init__(self, kernel: "GuestKernel", store, mechanism: HotplugMechanism):
        from repro.hypervisor.xenstore import availability_path

        self.kernel = kernel
        self.store = store
        self.mechanism = mechanism
        self.events: list[tuple[int, int, str]] = []
        self._path_of = {
            index: availability_path(kernel.domain.name, index)
            for index in range(len(kernel.runqueues))
        }
        prefix = f"/local/domain/{kernel.domain.name}/cpu"
        self._token = store.watch(prefix, self._on_change)
        #: Desired states queued while an operation is in flight.
        self._pending: dict[int, str] = {}

    def _index_for(self, path: str) -> int | None:
        for index, known in self._path_of.items():
            if path == known:
                return index
        return None

    def _on_change(self, path: str, value: str) -> None:
        index = self._index_for(path)
        if index is None or index == 0:
            return
        self.events.append((self.kernel.sim.now, index, value))
        self._pending[index] = value
        self._drain()

    def _drain(self) -> None:
        if self.mechanism.busy or not self._pending:
            return
        index, value = next(iter(self._pending.items()))
        del self._pending[index]
        online = index not in self.kernel.cpu_freeze_mask
        if value == "offline" and online:
            self.mechanism.remove_vcpu(index, on_done=self._drain)
        elif value == "online" and not online:
            self.mechanism.add_vcpu(index, on_done=self._drain)
        else:
            self._drain()
