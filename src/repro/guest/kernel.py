"""The guest kernel: thread scheduling, ticks, interrupts, load balancing.

This module implements the guest half of the simulated stack.  It hosts the
state that vScale's balancer (Algorithm 2) manipulates:

* per-vCPU runqueues with push/pull SMP load balancing, all of which
  consult ``cpu_freeze_mask``;
* a 1000 Hz scheduler tick with dynamic ticks (suspended while idle);
* futex-style blocking with cross-vCPU reschedule IPIs;
* the migrate-everything-away path a vCPU executes when it finds its bit
  set in the freeze mask.

Execution model
---------------
Thread behaviours are generators yielding primitive actions (see
:mod:`repro.guest.actions`).  The kernel advances the current thread's
action only while the hosting vCPU is *executing* (scheduled on a pCPU by
the hypervisor).  Preemption at either layer pauses the action's countdown;
spin budgets therefore measure on-CPU time, exactly like a real busy-wait.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.guest.actions import (
    Action,
    BlockOn,
    Compute,
    Exit,
    HypercallYield,
    SpinWait,
    UserSpinLock,
    Waitable,
    YieldCPU,
)
from repro.guest.runqueue import RunQueue
from repro.guest.threads import Behavior, Thread, ThreadKind, ThreadState
from repro.hypervisor.domain import VCPU, VCPUState
from repro.hypervisor.irq import IRQ, IRQClass
from repro.metrics.collectors import Counter
from repro.sim.engine import Event
from repro.units import MS, US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.domain import Domain


@dataclass
class GuestConfig:
    """Tunables of the guest kernel (Linux-flavoured defaults)."""

    #: Scheduler tick period (1000 HZ, as in the paper's guest).
    tick_ns: int = 1 * MS
    #: Fair-scheduler preemption quantum when others are waiting.
    quantum_ns: int = 6 * MS
    #: Guest-level thread context-switch cost.
    ctx_switch_ns: int = 1500
    #: Cost of migrating one thread between runqueues (Table 3: ~1 us).
    migration_cost_ns: int = 1000
    #: Wakeup preemption granularity.
    wakeup_gran_ns: int = 1 * MS
    #: Periodic load balance interval, in ticks.
    lb_interval_ticks: int = 10
    #: Delay for a running spinner to observe a released condition.
    spin_handoff_ns: int = 200
    #: Vruntime credit for waking sleepers (sched_latency analogue).
    sched_latency_ns: int = 6 * MS
    #: Paravirtual spinlocks: kernel-level busy-waiters yield the vCPU
    #: after a bounded spin instead of spinning forever.
    pv_spinlock: bool = False
    #: On-CPU spin budget before a pv-spinlock waiter yields.
    pv_spin_budget_ns: int = 30 * US
    #: Coalesce scheduler ticks while a vCPU is runnable but off-CPU: the
    #: per-tick effects (interrupt counters) are folded in arithmetically
    #: when the vCPU resumes, instead of firing one event per tick.  Pure
    #: performance knob — results are identical either way.
    #: ``REPRO_COALESCE_TICKS=0`` flips the default off, for A/B timing and
    #: the equivalence tests.
    coalesce_ticks: bool = field(
        default_factory=lambda: os.environ.get("REPRO_COALESCE_TICKS", "1") != "0"
    )
    #: Extra bookkeeping for experiments.
    tags: dict = field(default_factory=dict)


class _FreezeMask(set):
    """``cpu_freeze_mask`` that folds coalesced tick chains on every flip.

    While a vCPU's tick chain is virtualized (runnable but off-CPU), the
    chain's fate at each elided tick depends on the freeze condition *at
    that tick's time*.  Folding the chain immediately before any mask
    mutation keeps the condition constant between folds, so evaluating it
    lazily stays exact.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "GuestKernel"):
        super().__init__()
        self._kernel = kernel

    def add(self, index: int) -> None:
        changed = index not in self
        if changed:
            self._kernel._coalesce_fold(index)
        super().add(index)
        if changed:
            self._kernel._macro_refresh()

    def discard(self, index: int) -> None:
        changed = index in self
        if changed:
            self._kernel._coalesce_fold(index)
        super().discard(index)
        if changed:
            self._kernel._macro_refresh()

    def remove(self, index: int) -> None:
        if index in self:
            self._kernel._coalesce_fold(index)
        super().remove(index)
        self._kernel._macro_refresh()

    def update(self, *others) -> None:
        for other in others:
            for index in other:
                self.add(index)


class GuestKernel:
    """The guest OS of one domain.  Implements ``GuestInterface``."""

    def __init__(self, domain: "Domain", config: GuestConfig | None = None):
        self.domain = domain
        self.machine = domain.machine
        self.sim = self.machine.sim
        self.config = config or GuestConfig()
        n = len(domain.vcpus)
        self.runqueues = [RunQueue(i) for i in range(n)]
        #: vScale's cpu_freeze_mask: vCPU indices the balancer froze.  All
        #: runqueue selection and pull balancing consults this.
        self.cpu_freeze_mask: set[int] = _FreezeMask(self)
        #: Set per-vCPU while the hypervisor has it on a pCPU.
        self._executing = [False] * n
        #: In-flight action-completion events, per vCPU.
        self._action_events: list[Event | None] = [None] * n
        #: Action start timestamps (to account partial progress on pause).
        self._action_started: list[int | None] = [None] * n
        #: Tick events, per vCPU (armed while the vCPU has work).
        self._tick_events: list[Event | None] = [None] * n
        #: Coalesced (virtualized) tick chains: due time of the next elided
        #: tick for a runnable-but-off-CPU vCPU, or None.  See _coalesce_fold.
        self._tick_virtual: list[int | None] = [None] * n
        self._coalesce = self.config.coalesce_ticks
        #: Macro-stepping (REPRO_SIM_ENGINE=macro): elide *on-CPU* scheduler
        #: ticks across provably-quiescent regions too.  Implied-off when
        #: tick coalescing is disabled, so REPRO_COALESCE_TICKS=0 A/Bs both.
        self._macro = self._coalesce and bool(getattr(self.sim, "macro", False))
        #: Due time of the next elided on-CPU tick per vCPU with an open
        #: macro region (see _macro_horizon), or None.
        self._macro_due: list[int | None] = [None] * n
        #: vCPUs with an open macro region.
        self._macro_active: set[int] = set()
        self._ticks_seen = [0] * n
        #: vCPU index currently executing kernel code, for IPI attribution.
        self._context: int | None = None
        #: Migration work pending on a freezing vCPU (thread list).
        self._freeze_migration: dict[int, Event] = {}
        #: vCPUs with a deferred wakeup-preemption check queued.
        self._preempt_pending: set[int] = set()
        self.threads: list[Thread] = []
        #: Per-vCPU virtual timer interrupt counters (Table 2).
        self.timer_interrupts = [Counter() for _ in range(n)]
        #: Per-vCPU sent reschedule IPI counters.
        self.ipi_sent = [Counter() for _ in range(n)]
        #: Observers invoked when a thread exits (workload harnesses).
        self.exit_listeners: list[Callable[[Thread], None]] = []
        #: Optional RCU grace-period state (installed by RCUDomain): the
        #: tick of an executing vCPU reports a quiescent state to it.
        self.rcu = None
        self._spawn_rr = 0
        domain.attach_guest(self)
        self._create_percpu_kthreads()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _create_percpu_kthreads(self) -> None:
        """Materialize the non-migratable servants of Figure 3.

        They exist so the freeze path has something it must *not* migrate;
        they stay quiescent (never READY) unless a test pokes them.
        """
        self.percpu_kthreads: list[list[Thread]] = []
        for i in range(len(self.runqueues)):
            servants = []
            for name in ("ksoftirqd", "kworker"):
                thread = Thread(
                    self,
                    behavior=iter(()),
                    name=f"{name}/{i}",
                    kind=ThreadKind.KTHREAD_PERCPU,
                )
                thread.vcpu_index = i
                thread.state = ThreadState.BLOCKED
                servants.append(thread)
            self.percpu_kthreads.append(servants)

    def spawn(
        self,
        behavior: Behavior,
        name: str,
        kind: ThreadKind = ThreadKind.UTHREAD,
        rt: bool = False,
        pinned_to: int | None = None,
    ) -> Thread:
        """Create a thread and place it (fork balance)."""
        thread = Thread(self, behavior, name, kind=kind, rt=rt)
        thread.pinned_to = pinned_to
        self.threads.append(thread)
        target = self._select_rq(thread, reason="fork")
        rq = self.runqueues[target]
        thread.vruntime = max(thread.vruntime, rq.min_vruntime)
        rq.enqueue(thread)
        self._macro_refresh()  # the enqueue changed loads everywhere
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_thread_placement(self, thread, target)
        if self.machine.started:
            self._kick_vcpu(target)
        return thread

    # ------------------------------------------------------------------
    # GuestInterface (hypervisor downcalls)
    # ------------------------------------------------------------------
    def vcpu_started(self, vcpu: VCPU) -> None:
        i = vcpu.index
        self._executing[i] = True
        self._ensure_tick(i)
        self._dispatch(i)

    def vcpu_stopped(self, vcpu: VCPU) -> None:
        i = vcpu.index
        if not self._executing[i]:
            return
        self._pause_current_action(i)
        self._executing[i] = False
        if i in self._macro_active:
            # Open region with no in-flight action (the pause above closed
            # it otherwise): convert straight into an off-CPU virtual chain.
            self._macro_fold(i, self.sim.now)
            self._tick_virtual[i] = self._macro_due[i]
            self._macro_due[i] = None
            self._macro_active.discard(i)
            event = self._tick_events[i]
            if event is not None:
                event.cancel()
                self._tick_events[i] = None
            return
        if self._coalesce:
            # Virtualize the tick chain while the vCPU waits for a pCPU:
            # off-CPU ticks only bump interrupt counters, so they can be
            # folded in arithmetically when the vCPU resumes.
            event = self._tick_events[i]
            if event is not None:
                self._tick_virtual[i] = event.time
                event.cancel()
                self._tick_events[i] = None

    def deliver_irq(self, vcpu: VCPU, irq: IRQ) -> None:
        i = vcpu.index
        previous_context = self._context
        self._context = i
        try:
            if irq.irq_class is IRQClass.RESCHED_IPI:
                if i in self.cpu_freeze_mask and i not in self._freeze_migration:
                    self._start_freeze_migration(i)
                else:
                    self._dispatch(i)
            elif irq.irq_class is IRQClass.EVTCHN:
                channel = irq.channel
                if channel is not None and channel.handler is not None:
                    channel.handler(irq.payload)
                self._dispatch(i)
            elif irq.irq_class is IRQClass.CALL_IPI:
                # smp_call_function: only the shutdown path uses this; the
                # handler itself is a no-op for our workloads.
                self._dispatch(i)
        finally:
            self._context = previous_context

    # ------------------------------------------------------------------
    # Dispatch: elect and advance the current thread of a vCPU
    # ------------------------------------------------------------------
    def _dispatch(self, i: int) -> None:
        """Ensure vCPU ``i`` is doing the right thing right now."""
        if not self._executing[i]:
            return
        if i in self._freeze_migration:
            return  # busy evicting threads; nothing else may run here
        rq = self.runqueues[i]
        if rq.current is not None:
            if self._action_events[i] is None and self._action_started[i] is None:
                self._advance(i)
            else:
                self._maybe_preempt_current(i)
            return
        nxt = rq.pick_next()
        if nxt is None:
            # idle_balance(): try to pull work before parking the vCPU.
            if self.idle_balance(i) is not None:
                nxt = rq.pick_next()
        if nxt is None:
            self._go_idle(i)
            return
        rq.dequeue(nxt)
        rq.current = nxt
        rq.picked_at = self.sim.now
        rq.pending_overhead_ns += self.config.ctx_switch_ns
        nxt.state = ThreadState.RUNNING
        self._macro_refresh_one(i)  # dequeue/current/picked_at are inputs
        self._advance(i)

    def _go_idle(self, i: int) -> None:
        """No runnable threads: dynticks off, park (or finish freezing)."""
        self._cancel_tick(i)
        self._executing[i] = False
        # hyp_block() triggers vcpu_stopped via the scheduler; mark the
        # executing flag first so the stop path does not double-account.
        self.machine.hyp_block(self.domain.vcpus[i])

    def _advance(self, i: int) -> None:
        """Advance the current thread: begin/resume its in-flight action."""
        rq = self.runqueues[i]
        thread = rq.current
        assert thread is not None and self._executing[i]
        if thread.action is None:
            # Thread code (sync primitives, wakes) runs in this vCPU's
            # context: wakes it performs are attributed to vCPU i so
            # cross-vCPU ones ride reschedule IPIs.
            previous_context = self._context
            self._context = i
            try:
                thread.action = thread.behavior.send(thread.send_value)
            except StopIteration:
                self._thread_done(i, thread)
                return
            finally:
                self._context = previous_context
            thread.send_value = None
        action = thread.action
        if isinstance(action, Exit):
            self._thread_done(i, thread)
        elif isinstance(action, YieldCPU):
            thread.action = None
            self._switch_out(i, to_ready=True)
            self._dispatch(i)
        elif isinstance(action, HypercallYield):
            thread.action = None
            self.machine.hyp_yield(self.domain.vcpus[i])
        elif isinstance(action, BlockOn):
            self._ensure_waitable(action.waitable)
            thread.action = None
            if action.waitable.latched:
                self._advance(i)  # already fired: do not sleep
                return
            thread.state = ThreadState.BLOCKED
            action.waitable.add_blocked(thread)
            rq.current = None
            rq.advance_min_vruntime()
            self._macro_refresh_one(i)
            self._dispatch(i)
        elif isinstance(action, Compute):
            self._begin_timed(i, thread, action.remaining_ns, outcome=None)
        elif isinstance(action, SpinWait):
            self._begin_spin(i, thread, action)
        else:
            raise TypeError(f"unknown action {action!r} from {thread.name}")

    def _begin_timed(self, i: int, thread: Thread, duration_ns: int, outcome: object) -> None:
        rq = self.runqueues[i]
        total = rq.pending_overhead_ns + duration_ns
        self._action_started[i] = self.sim.now
        self._action_events[i] = self.sim.schedule(total, self._action_done, i, thread, outcome)

    def _begin_spin(self, i: int, thread: Thread, action: SpinWait) -> None:
        self._ensure_waitable(action.waitable)
        waitable = action.waitable
        if waitable.latched:
            action.fired = True
        if thread not in waitable.spinners:
            waitable.add_spinner(thread)
        # A released user spin lock is grabbed by the first spinner to run.
        if not action.fired and isinstance(waitable, UserSpinLock):
            if waitable.on_spinner_resumed(thread):
                action.fired = True
        if action.fired:
            waitable.remove_spinner(thread)
            self._begin_timed(i, thread, self.config.spin_handoff_ns, outcome=True)
            return
        if action.budget_ns <= 0:
            waitable.remove_spinner(thread)
            self._begin_timed(i, thread, 0, outcome=False)
            return
        self._action_started[i] = self.sim.now
        rq = self.runqueues[i]
        total = rq.pending_overhead_ns + action.budget_ns
        self._action_events[i] = self.sim.schedule(total, self._spin_timeout, i, thread, action)

    def _action_done(self, i: int, thread: Thread, outcome: object) -> None:
        rq = self.runqueues[i]
        assert rq.current is thread
        self._account_progress(i, finished=True)
        thread.action = None
        thread.send_value = outcome
        self._advance(i)

    def _spin_timeout(self, i: int, thread: Thread, action: SpinWait) -> None:
        rq = self.runqueues[i]
        assert rq.current is thread
        self._account_progress(i, finished=True)
        action.waitable.remove_spinner(thread)
        action.budget_ns = 0
        thread.action = None
        thread.send_value = action.fired  # a last-instant fire still wins
        self._advance(i)

    def _thread_done(self, i: int, thread: Thread) -> None:
        rq = self.runqueues[i]
        thread.state = ThreadState.DONE
        thread.action = None
        if rq.current is thread:
            rq.current = None
            rq.advance_min_vruntime()
        self._macro_refresh_one(i)
        for listener in self.exit_listeners:
            listener(thread)
        self._dispatch(i)

    # ------------------------------------------------------------------
    # Pausing and accounting
    # ------------------------------------------------------------------
    def _account_progress(self, i: int, finished: bool) -> None:
        """Fold on-CPU time since action start into the thread's accounting
        and — when pausing — into the action's remaining budget."""
        started = self._action_started[i]
        rq = self.runqueues[i]
        thread = rq.current
        if started is None or thread is None:
            return
        elapsed = self.sim.now - started
        self._action_started[i] = None
        event = self._action_events[i]
        if event is not None:
            event.cancel()
            self._action_events[i] = None
        # Overhead (context switch / migration) burns first.
        overhead_used = min(elapsed, rq.pending_overhead_ns)
        rq.pending_overhead_ns -= overhead_used
        work = elapsed - overhead_used
        thread.exec_ns += elapsed
        thread.vruntime += elapsed
        rq.advance_min_vruntime()
        self._macro_refresh_one(i)  # vruntime is a preemption-lag input
        if finished:
            rq.pending_overhead_ns = 0
            return
        action = thread.action
        if isinstance(action, Compute):
            action.remaining_ns = max(0, action.remaining_ns - work)
        elif isinstance(action, SpinWait):
            action.budget_ns = max(0, action.budget_ns - work)

    def _pause_current_action(self, i: int) -> None:
        self._account_progress(i, finished=False)

    def _switch_out(self, i: int, to_ready: bool) -> None:
        """Move the current thread off the CPU (to ready or nowhere)."""
        rq = self.runqueues[i]
        thread = rq.current
        if thread is None:
            return
        self._pause_current_action(i)
        rq.current = None
        if to_ready:
            thread.state = ThreadState.READY
            rq.enqueue(thread)
        rq.advance_min_vruntime()
        if to_ready:
            self._macro_refresh()  # new steal candidate for siblings
        else:
            self._macro_refresh_one(i)

    # ------------------------------------------------------------------
    # Wakeups and runqueue selection (all consult the freeze mask)
    # ------------------------------------------------------------------
    def wake_thread(self, thread: Thread) -> None:
        """Make a blocked thread runnable (futex wake / IO completion).

        Sends a reschedule IPI when the chosen runqueue belongs to another
        vCPU — the paper's Figure 1(b) delay happens exactly here when that
        vCPU is preempted.
        """
        if thread.state is not ThreadState.BLOCKED:
            return
        target = self._select_rq(thread, reason="wakeup")
        rq = self.runqueues[target]
        floor = rq.min_vruntime - self.config.sched_latency_ns
        thread.vruntime = max(thread.vruntime, floor)
        thread.state = ThreadState.READY
        rq.enqueue(thread)
        self._macro_refresh()  # the enqueue changed loads everywhere
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_thread_placement(self, thread, target)
        waker = self._context
        if waker is not None and waker == target:
            self._maybe_preempt_current(target)
        else:
            self._send_resched_ipi(waker, target)

    def spin_satisfied(self, thread: Thread, waitable: Waitable) -> None:
        """A waitable fired for a spinning thread."""
        action = thread.action
        if not isinstance(action, SpinWait) or action.waitable is not waitable:
            return
        action.fired = True
        waitable.remove_spinner(thread)
        i = thread.vcpu_index
        assert i is not None
        rq = self.runqueues[i]
        if rq.current is thread and self._action_events[i] is not None:
            # Actively spinning right now: observe the release immediately.
            self._account_progress(i, finished=False)
            self._begin_timed(i, thread, self.config.spin_handoff_ns, outcome=True)
        # Otherwise the fired flag is honoured when the thread resumes.

    def thread_is_executing(self, thread: Thread) -> bool:
        i = thread.vcpu_index
        if i is None:
            return False
        return self._executing[i] and self.runqueues[i].current is thread

    def _select_rq(self, thread: Thread, reason: str) -> int:
        """select_task_rq(): pick a runqueue for a waking/forked thread."""
        if thread.pinned_to is not None:
            return thread.pinned_to
        candidates = [
            i for i in range(len(self.runqueues)) if i not in self.cpu_freeze_mask
        ]
        if not candidates:
            raise RuntimeError("all vCPUs frozen — vCPU0 must stay online")
        prev = thread.vcpu_index
        if prev in candidates and self.runqueues[prev].load() == 0:
            return prev
        idle = [i for i in candidates if self.runqueues[i].load() == 0]
        if idle:
            if reason == "fork":
                # Round-robin forks over idle CPUs to spread initial load.
                choice = idle[self._spawn_rr % len(idle)]
                self._spawn_rr += 1
                return choice
            return idle[0]
        return min(candidates, key=lambda i: (self.runqueues[i].load(), i))

    def _maybe_preempt_current(self, i: int) -> None:
        """Request a wakeup-preemption check on vCPU ``i``.

        Deferred through a zero-delay event: the check may be triggered
        from inside a thread's own behaviour (a wake to the local vCPU),
        and switching the current thread out synchronously there would
        corrupt the in-progress generator advance.
        """
        if i in self._preempt_pending:
            return
        self._preempt_pending.add(i)
        self.sim.schedule(0, self._do_preempt_check, i)

    def _do_preempt_check(self, i: int) -> None:
        self._preempt_pending.discard(i)
        if not self._executing[i]:
            return
        rq = self.runqueues[i]
        if rq.current is None:
            self._dispatch(i)
            return
        best = rq.pick_next()
        if best is None:
            return
        current = rq.current
        if current.nonpreemptible:
            return  # preempt_disable(): spinlock section in progress
        should_preempt = (best.rt and not current.rt) or (
            not current.rt
            and best.vruntime + self.config.wakeup_gran_ns < current.vruntime
        )
        if should_preempt:
            self._switch_out(i, to_ready=True)
            self._dispatch(i)

    def _send_resched_ipi(self, waker: int | None, target: int) -> None:
        dst = self.domain.vcpus[target]
        if waker is None:
            # External context (device completion, timer): no guest vCPU is
            # the sender; wake the vCPU directly if it sleeps.
            if dst.state is VCPUState.BLOCKED:
                self.machine.hyp_wake(dst)
            return
        src = self.domain.vcpus[waker]
        self.ipi_sent[waker].inc()
        self.machine.hyp_send_ipi(src, dst, IRQClass.RESCHED_IPI)

    def _kick_vcpu(self, i: int) -> None:
        """After enqueueing work on vCPU i from outside, make sure it runs."""
        vcpu = self.domain.vcpus[i]
        if self._context is not None and self._context != i:
            self._send_resched_ipi(self._context, i)
        elif vcpu.state is VCPUState.BLOCKED:
            self.machine.hyp_wake(vcpu)
        elif self._executing[i]:
            self._maybe_preempt_current(i)

    # ------------------------------------------------------------------
    # Scheduler tick (1000 HZ) and periodic load balancing
    # ------------------------------------------------------------------
    def _ensure_tick(self, i: int) -> None:
        if self._tick_virtual[i] is not None:
            # Materialize the coalesced chain: fold the ticks that elapsed
            # while off-CPU, then re-arm a real event preserving the phase
            # (unless the chain died frozen/idle, in which case a fresh
            # chain starts below — exactly what the real chain would do).
            self._coalesce_fold(i)
            due = self._tick_virtual[i]
            if due is not None:
                self._tick_virtual[i] = None
                self._arm_tick(i, due)
                return
        if self._tick_events[i] is None and i not in self._macro_active:
            self._arm_tick(i, self.sim.now + self.config.tick_ns)

    def _arm_tick(self, i: int, due: int) -> None:
        """Arm the tick chain of vCPU ``i``, next tick due at ``due``.

        In macro mode this is where quiescent regions open: when every tick
        from ``due`` up to (but excluding) some horizon is provably a pure
        counter bump, those ticks are elided and only the horizon tick is
        scheduled as a real event (none at all for an infinite horizon).
        """
        if not self._macro:
            self._tick_events[i] = self.sim.schedule_at(due, self._tick, i)
            return
        horizon = self._macro_horizon(i, due)
        if horizon == due:
            self._tick_events[i] = self.sim.schedule_at(due, self._tick, i)
            return
        self._macro_due[i] = due
        self._macro_active.add(i)
        if horizon is None:
            self._tick_events[i] = None
        else:
            self._tick_events[i] = self.sim.schedule_at(horizon, self._tick, i)

    def _macro_horizon(self, i: int, due: int) -> int | None:
        """First tick time >= ``due`` whose handler could do real work.

        Returns ``due`` itself when no region can open (the very next tick
        is interesting, or the vCPU is ineligible), a later grid time when
        the first interesting tick is further out, or None when *no* future
        tick can matter (infinite horizon — e.g. a lone compute-bound
        thread with empty sibling queues).

        The proof obligation: between region open and the first mutation of
        any input read below, every elided tick's handler reduces to the
        counter bumps `_macro_fold` applies.  All inputs are guarded by
        `_macro_refresh` calls at their mutation sites; time-dependent
        terms (`ran >= ideal`) are solved in closed form on the tick grid.
        """
        vcpu = self.domain.vcpus[i]
        if (
            not self._executing[i]
            or self.rcu is not None
            or vcpu.state is VCPUState.FROZEN
            or i in self.cpu_freeze_mask
            or i in self._freeze_migration
        ):
            return due
        rq = self.runqueues[i]
        current = rq.current
        if current is None:
            return due
        period = self.config.tick_ns
        horizon: int | None = None
        ready = rq.ready
        # (1) Slice preemption (_tick_preemption): fires once the current
        # thread ran for `ideal`; `lagging` is constant between
        # invalidations (vruntimes only change under _account_progress).
        if ready and not (current.rt or current.nonpreemptible):
            ideal = max(
                self.config.quantum_ns // 8,
                self.config.sched_latency_ns // (len(ready) + 1),
            )
            best = rq.pick_next()
            if best is not None and not best.rt and (
                current.vruntime - best.vruntime > ideal
            ):
                return due  # lagging: the real tick handler must decide
            first = rq.picked_at + ideal  # first tick with ran >= ideal
            if first <= due:
                return due
            horizon = due + ((first - due + period - 1) // period) * period
        runqueues = self.runqueues
        if len(runqueues) > 1:
            # One fused sibling scan for terms (2) and (3).  Loads and
            # candidate sets only change at refresh sites.
            my_load = len(ready) + 1
            busy = my_load >= 2
            mask = self.cpu_freeze_mask
            vcpus = self.domain.vcpus
            busiest = None
            busiest_load = -1
            for j, sibling in enumerate(runqueues):
                if j == i:
                    continue
                load = len(sibling.ready) + (1 if sibling.current else 0)
                if load > busiest_load:  # first max, like _busiest_rq
                    busiest = sibling
                    busiest_load = load
                # (3) nohz idle kick: effective on every tick while this
                # queue is overloaded and an idle BLOCKED sibling exists
                # (BLOCKED edges invalidate via vcpu_blocked_edge).
                if (
                    busy
                    and load == 0
                    and j not in mask
                    and vcpus[j].state is VCPUState.BLOCKED
                ):
                    return due
            # (2) Periodic load balance: a no-op unless the imbalance
            # condition holds with stealable threads.
            if busiest_load - my_load >= 2 and busiest.steal_candidates():
                lb = self.config.lb_interval_ticks
                m = (-self._ticks_seen[i]) % lb or lb  # pre-increments
                balance_at = due + (m - 1) * period
                if horizon is None or balance_at < horizon:
                    horizon = balance_at
        return horizon

    def _macro_fold(self, i: int, limit: int) -> None:
        """Fold the elided ticks of an open region with due <= ``limit``."""
        due = self._macro_due[i]
        if due is None or due > limit:
            return
        period = self.config.tick_ns
        ticks = (limit - due) // period + 1
        self.timer_interrupts[i].inc(ticks)
        self._ticks_seen[i] += ticks
        self._macro_due[i] = due + ticks * period

    def _macro_refresh(self) -> None:
        """Re-evaluate every open macro region after a state mutation.

        Call *after* mutating any `_macro_horizon` input.  `_macro_fold`
        is an unconditional counter bump over a fixed grid, so fold order
        relative to the mutation cannot matter; the horizon, however, must
        be recomputed against the post-mutation world.  Unchanged horizons
        keep their scheduled event (the common case — zero queue traffic),
        moved ones re-arm, and a region whose very next tick became
        interesting closes with a real tick at that due time.  A tick
        falling exactly on the mutation instant resolves tick-first — the
        same convention (and the same accepted seq-order caveat) as
        `_coalesce_fold`.
        """
        if not self._macro_active:
            return
        now = self.sim.now
        for i in sorted(self._macro_active):
            self._macro_refresh_region(i, now)

    def _macro_refresh_one(self, i: int) -> None:
        """Re-evaluate vCPU ``i``'s open region after a mutation whose
        horizon effects are confined to that region.

        A mutation may use this (or skip refreshing entirely) when, for
        every *other* open region, it can only lengthen the true horizon
        — a kept-but-stale shorter horizon is safe: the real tick fires
        early, does nothing, and re-arms with the longer region.  Only
        mutations that can *shorten* another region's horizon (enqueues
        raising a load, a vCPU blocking, preempt_enable, unpinning) need
        the global `_macro_refresh`.
        """
        if i in self._macro_active:
            self._macro_refresh_region(i, self.sim.now)

    def _macro_refresh_region(self, i: int, now: int) -> None:
        event = self._tick_events[i]
        # The region's proof covers [due, horizon) — the scheduled
        # horizon tick itself is *interesting* and must fire for real,
        # so a refresh landing exactly on the horizon instant may not
        # fold it away (its handler still runs this instant, after us).
        limit = now if event is None else min(now, event.time - 1)
        self._macro_fold(i, limit)
        due = self._macro_due[i]
        horizon = self._macro_horizon(i, due)
        if horizon == due:
            self._macro_due[i] = None
            self._macro_active.discard(i)
            if event is not None:
                event.cancel()
            self._tick_events[i] = self.sim.schedule_at(due, self._tick, i)
        elif horizon is None:
            if event is not None:
                event.cancel()
                self._tick_events[i] = None
        elif event is None or event.time != horizon:
            if event is not None:
                event.cancel()
            self._tick_events[i] = self.sim.schedule_at(horizon, self._tick, i)

    def _cancel_tick(self, i: int) -> None:
        if i in self._macro_active:
            self._macro_fold(i, self.sim.now)
            self._macro_active.discard(i)
        self._macro_due[i] = None
        self._tick_virtual[i] = None
        event = self._tick_events[i]
        if event is not None:
            event.cancel()
            self._tick_events[i] = None

    def _coalesce_fold(self, i: int) -> None:
        """Bring vCPU ``i``'s virtualized tick chain up to date.

        Replays the ticks that fell due since the chain was virtualized,
        with exactly the effects the real (off-CPU) tick handler has: the
        frozen branch kills the chain without counting, the dynticks branch
        kills it too, and otherwise the tick bumps the interrupt counters
        and re-arms one period later.  Callers must invoke this *before*
        mutating any state the off-CPU tick consults (freeze mask, FROZEN
        transitions), so the condition seen here is the one that held at
        every elided tick time.  A tick falling exactly on the mutation
        instant resolves tick-first, matching the event ordering of a
        chain re-armed a full period earlier.
        """
        due = self._tick_virtual[i]
        now = self.sim.now
        if due is None or due > now:
            return
        vcpu = self.domain.vcpus[i]
        if vcpu.state is VCPUState.FROZEN or i in self.cpu_freeze_mask:
            self._tick_virtual[i] = None
            return
        rq = self.runqueues[i]
        if rq.current is None and not rq.ready:
            self._tick_virtual[i] = None
            return
        period = self.config.tick_ns
        ticks = (now - due) // period + 1
        self.timer_interrupts[i].inc(ticks)
        self._ticks_seen[i] += ticks
        self._tick_virtual[i] = due + ticks * period

    def sync_ticks(self) -> None:
        """Fold every vCPU's coalesced ticks, for mid-run counter readers.

        Macro regions are folded up to now but stay open: reading a
        counter is not a horizon input, so the region conditions still
        hold afterwards.
        """
        now = self.sim.now
        for i in range(len(self.runqueues)):
            self._coalesce_fold(i)
            if i in self._macro_active:
                event = self._tick_events[i]
                # Never pre-count a horizon tick that is about to fire
                # for real this instant (it counts itself in `_tick`).
                limit = now if event is None else min(now, event.time - 1)
                self._macro_fold(i, limit)

    def vcpu_frozen_edge(self, vcpu: VCPU) -> None:
        """Hypervisor hook: ``vcpu`` is about to enter or leave FROZEN."""
        self._coalesce_fold(vcpu.index)

    def vcpu_blocked_edge(self, vcpu: VCPU) -> None:
        """Hypervisor hook: ``vcpu`` just entered or left BLOCKED — an
        input of sibling macro regions (the nohz kick scans for idle
        BLOCKED siblings).  Called *after* the transition, unlike the
        frozen edge, so the horizon recheck sees the new state."""
        self._macro_refresh()

    def _tick(self, i: int) -> None:
        """One virtual timer interrupt on vCPU i.

        Fires while the vCPU has work (running *or* waiting for a pCPU:
        pending timer events are delivered when it runs); dynamic ticks stop
        it entirely while idle or frozen.  Scheduler work happens only when
        the vCPU is actually executing.
        """
        self._tick_events[i] = None
        if i in self._macro_active:
            # This is the horizon tick of an open region: fold the elided
            # ticks strictly before now (this tick counts itself below).
            self._macro_fold(i, self.sim.now - 1)
            self._macro_due[i] = None
            self._macro_active.discard(i)
        vcpu = self.domain.vcpus[i]
        if vcpu.state is VCPUState.FROZEN or i in self.cpu_freeze_mask:
            if (
                self.machine.faults is not None
                and vcpu.state is not VCPUState.FROZEN
                and self._executing[i]
                and i not in self._freeze_migration
            ):
                # Recovery for a lost freeze IPI: the mask says "migrate
                # away" but the kick never arrived.  Like mainline's
                # scheduler noticing !cpu_active(cpu) on its own tick, the
                # timer path starts the eviction — one tick late instead
                # of never.
                previous_context = self._context
                self._context = i
                try:
                    self._start_freeze_migration(i)
                finally:
                    self._context = previous_context
            return  # frozen vCPUs are skipped (clocksource watchdog too)
        rq = self.runqueues[i]
        if rq.current is None and not rq.ready:
            return  # went idle; dynticks
        self.timer_interrupts[i].inc()
        self._ticks_seen[i] += 1
        if self._executing[i]:
            previous_context = self._context
            self._context = i
            try:
                if self.rcu is not None:
                    self.rcu.note_quiescent_state(i)
                self._tick_preemption(i)
                if self._ticks_seen[i] % self.config.lb_interval_ticks == 0:
                    self._periodic_balance(i)
                self._nohz_kick(i)
            finally:
                self._context = previous_context
        self._arm_tick(i, self.sim.now + self.config.tick_ns)

    def _tick_preemption(self, i: int) -> None:
        """CFS-style slice check: with N runnable threads each gets about
        ``sched_latency / N``, floored at quantum/8 — so a busy-spinning
        thread packed with others cannot starve its runqueue."""
        rq = self.runqueues[i]
        current = rq.current
        if current is None:
            self._dispatch(i)
            return
        if current.rt or current.nonpreemptible or not rq.ready:
            return
        nr_running = len(rq.ready) + 1
        ideal = max(self.config.quantum_ns // 8, self.config.sched_latency_ns // nr_running)
        ran = self.sim.now - rq.picked_at
        best = rq.pick_next()
        lagging = best is not None and not best.rt and (
            current.vruntime - best.vruntime > ideal
        )
        if ran >= ideal or (lagging and ran >= self.config.tick_ns):
            self._switch_out(i, to_ready=True)
            self._dispatch(i)

    # ------------------------------------------------------------------
    # Load balancing (idle + periodic pull), freeze-mask aware
    # ------------------------------------------------------------------
    def idle_balance(self, i: int) -> Thread | None:
        """Pull one thread from the busiest runqueue (disabled when frozen)."""
        if i in self.cpu_freeze_mask:
            return None
        busiest = self._busiest_rq(exclude=i)
        if busiest is None or busiest.load() < 2:
            return None
        candidates = busiest.steal_candidates()
        if not candidates:
            return None
        thread = candidates[0]
        self._migrate(thread, busiest.index, i, charge_to=i)
        return thread

    def _periodic_balance(self, i: int) -> None:
        rq = self.runqueues[i]
        busiest = self._busiest_rq(exclude=i)
        if busiest is None:
            return
        if busiest.load() - rq.load() >= 2:
            candidates = busiest.steal_candidates()
            if candidates:
                self._migrate(candidates[0], busiest.index, i, charge_to=i)
                self._dispatch(i)

    def _nohz_kick(self, i: int) -> None:
        """Linux's nohz idle-balance kick: a busy CPU whose queue holds
        more than one runnable thread wakes one idle sibling so it can
        pull (idle_balance) on resume."""
        if self.runqueues[i].load() < 2:
            return
        for j, rq in enumerate(self.runqueues):
            if j == i or j in self.cpu_freeze_mask:
                continue
            vcpu = self.domain.vcpus[j]
            if rq.load() == 0 and vcpu.state is VCPUState.BLOCKED:
                self.machine.hyp_wake(vcpu)
                return

    def _busiest_rq(self, exclude: int) -> RunQueue | None:
        best: RunQueue | None = None
        for rq in self.runqueues:
            if rq.index == exclude:
                continue
            if best is None or rq.load() > best.load():
                best = rq
        return best

    def _migrate(self, thread: Thread, src: int, dst: int, charge_to: int) -> None:
        """Move a ready thread between runqueues, charging the migration
        cost to whichever vCPU performs the pull/push."""
        rq_src = self.runqueues[src]
        rq_dst = self.runqueues[dst]
        rq_src.dequeue(thread)
        thread.vruntime = max(
            rq_dst.min_vruntime - self.config.sched_latency_ns, thread.vruntime
        )
        rq_dst.enqueue(thread)
        thread.migrations += 1
        self.machine.tracer.emit(
            self.sim.now, "guest", "migrate",
            f"{self.domain.name}/{thread.name}", src=src, dst=dst,
        )
        self.runqueues[charge_to].pending_overhead_ns += self.config.migration_cost_ns
        self._macro_refresh()

    # ------------------------------------------------------------------
    # Freeze-side thread eviction (Algorithm 2, target vCPU)
    # ------------------------------------------------------------------
    def _start_freeze_migration(self, i: int) -> None:
        """The target vCPU noticed its freeze bit: evict everything.

        Migration costs ~1 us per thread of target-vCPU time; the threads
        are moved (and destination vCPUs kicked) once that work completes,
        then the vCPU idles into the FROZEN state via the block path.
        """
        rq = self.runqueues[i]
        self._switch_out(i, to_ready=True)
        movable = [t for t in rq.ready if t.migratable and not t.done]
        cost = self.config.migration_cost_ns * max(1, len(movable))
        event = self.sim.schedule(cost, self._finish_freeze_migration, i)
        self._freeze_migration[i] = event
        self._macro_refresh()  # _freeze_migration is a horizon input

    def _finish_freeze_migration(self, i: int) -> None:
        self._freeze_migration.pop(i, None)
        rq = self.runqueues[i]
        previous_context = self._context
        self._context = i
        try:
            # Insertion-ordered dict, not a set: the kick order below feeds
            # IPI event ordering and must be deterministic across runs.
            targets: dict[int, None] = {}
            for thread in list(rq.ready):
                if not thread.migratable:
                    continue
                dst = self._select_rq(thread, reason="wakeup")
                rq.dequeue(thread)
                self.runqueues[dst].enqueue(thread)
                thread.migrations += 1
                self.machine.tracer.emit(
                    self.sim.now, "guest", "migrate",
                    f"{self.domain.name}/{thread.name}", src=i, dst=dst,
                )
                targets[dst] = None
            for dst in sorted(targets):
                self._kick_vcpu(dst)
            # Redirect event channels bound here (I/O interrupt migration).
            for channel in self.domain.event_channels:
                if channel.bound_vcpu == i:
                    candidates = [
                        c for c in range(len(self.runqueues)) if c not in self.cpu_freeze_mask
                    ]
                    channel.rebind(candidates[0])
        finally:
            self._context = previous_context
        self._macro_refresh()
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_freeze_migration(self, i)
        self._dispatch(i)  # rq now empty (or non-migratables only) -> idle -> frozen

    # ------------------------------------------------------------------
    # Helpers for sync primitives and workloads
    # ------------------------------------------------------------------
    def _ensure_waitable(self, waitable: Waitable) -> None:
        if waitable.kernel is None:
            waitable.kernel = self
        elif waitable.kernel is not self:
            raise RuntimeError("waitable shared between guests")

    def repin_thread(self, thread: Thread, vcpu_index: int) -> bool:
        """Pin a READY thread to a vCPU, moving it there immediately.

        Returns False when the thread is running/blocked/done (it will be
        placed on the target by the next wakeup instead).  Used by tests
        and micro-benchmarks that need a deterministic thread layout.
        """
        if not 0 <= vcpu_index < len(self.runqueues):
            raise ValueError(f"no vCPU {vcpu_index}")
        thread.pinned_to = vcpu_index
        self._macro_refresh()  # pinning shrinks steal-candidate sets
        if thread.state is not ThreadState.READY:
            return False
        src = thread.vcpu_index
        if src == vcpu_index:
            return True
        self._migrate(thread, src, vcpu_index, charge_to=vcpu_index)
        if self.machine.started:
            self._kick_vcpu(vcpu_index)
        return True

    def start_timer(self, delay_ns: int, waitable: Waitable) -> Event:
        """Fire ``waitable`` for everyone after a wall-clock delay."""
        self._ensure_waitable(waitable)
        return self.sim.schedule(delay_ns, self._timer_fire, waitable)

    def _timer_fire(self, waitable: Waitable) -> None:
        previous_context = self._context
        self._context = None  # external context: no IPI attribution
        try:
            waitable.fire_all()
        finally:
            self._context = previous_context

    @property
    def online_vcpus(self) -> int:
        """What the guest's cpu_online_mask reports (excludes frozen)."""
        return len(self.runqueues) - len(self.cpu_freeze_mask)

    def runnable_threads(self) -> int:
        return sum(rq.load() for rq in self.runqueues)

    def current_vcpu_index(self) -> int | None:
        """The vCPU whose context the kernel is currently executing in."""
        return self._context

    def run_in_context(self, i: int, fn: Callable[[], object]) -> object:
        """Execute ``fn`` attributed to vCPU ``i`` (used by the balancer)."""
        previous_context = self._context
        self._context = i
        try:
            return fn()
        finally:
            self._context = previous_context
