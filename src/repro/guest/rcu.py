"""A guest RCU grace-period model.

One of the five reasons a frozen vCPU stays quiescent (paper §3.3) is that
"a vCPU that stays idle does not need to participate in RCU's grace period
detection".  This module models the relevant mechanics:

* updaters call :meth:`RCUDomain.call_rcu` to queue a callback behind the
  next grace period;
* a grace period completes once every vCPU that was *online and non-idle*
  at its start has passed through a quiescent state (its scheduler tick
  reports one, as ``rcu_sched`` does);
* idle vCPUs are in *dynticks-idle* and are excluded up front; frozen
  vCPUs are excluded exactly the same way — which is why vScale does not
  need to unfreeze anything for RCU to make progress.

The model hooks the guest tick: each tick on an executing vCPU reports a
quiescent state, just like the real ``rcu_check_callbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.hypervisor.domain import VCPUState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass
class _GracePeriod:
    number: int
    started_ns: int
    #: vCPU indices that still owe a quiescent state.
    waiting_on: set[int]
    callbacks: list[Callable[[], None]] = field(default_factory=list)
    completed_ns: int | None = None


class RCUDomain:
    """Grace-period state for one guest."""

    def __init__(self, kernel: "GuestKernel"):
        self.kernel = kernel
        self._next_number = 1
        self._current: _GracePeriod | None = None
        self._pending_callbacks: list[Callable[[], None]] = []
        self.completed_grace_periods = 0
        #: (grace period number, latency ns) history for analysis.
        self.latencies: list[tuple[int, int]] = []
        kernel.rcu = self
        # The kernel's tick reports quiescent states from here on: close
        # any macro-stepped tick regions that assumed no RCU.
        kernel._macro_refresh()

    # ------------------------------------------------------------------
    def call_rcu(self, callback: Callable[[], None]) -> int:
        """Queue a callback to run after the next grace period.

        Returns the grace period number it waits on.
        """
        self._pending_callbacks.append(callback)
        if self._current is None:
            self._start_grace_period()
        assert self._current is not None
        return self._current.number

    def synchronize_rcu_state(self) -> dict:
        """Introspection: the current grace period's progress."""
        if self._current is None:
            return {"active": False}
        return {
            "active": True,
            "number": self._current.number,
            "waiting_on": sorted(self._current.waiting_on),
        }

    # ------------------------------------------------------------------
    def _participants(self) -> set[int]:
        """vCPUs that must report: online and not dynticks-idle/frozen."""
        kernel = self.kernel
        participants = set()
        for index, rq in enumerate(kernel.runqueues):
            if index in kernel.cpu_freeze_mask:
                continue
            vcpu = kernel.domain.vcpus[index]
            if vcpu.state is VCPUState.FROZEN:
                continue
            if rq.load() == 0 and vcpu.state is VCPUState.BLOCKED:
                continue  # dynticks-idle: already quiescent
            participants.add(index)
        return participants

    def _start_grace_period(self) -> None:
        grace_period = _GracePeriod(
            number=self._next_number,
            started_ns=self.kernel.sim.now,
            waiting_on=self._participants(),
        )
        self._next_number += 1
        grace_period.callbacks = self._pending_callbacks
        self._pending_callbacks = []
        self._current = grace_period
        if not grace_period.waiting_on:
            self._complete()

    def note_quiescent_state(self, vcpu_index: int) -> None:
        """Called from the scheduler tick of an executing vCPU."""
        grace_period = self._current
        if grace_period is None:
            return
        grace_period.waiting_on.discard(vcpu_index)
        # A vCPU that went idle or frozen since the GP started no longer
        # owes a report (it cannot hold an RCU read-side section).
        grace_period.waiting_on &= self._participants() | set()
        if not grace_period.waiting_on:
            self._complete()

    def _complete(self) -> None:
        grace_period = self._current
        assert grace_period is not None
        now = self.kernel.sim.now
        grace_period.completed_ns = now
        self.completed_grace_periods += 1
        self.latencies.append((grace_period.number, now - grace_period.started_ns))
        self._current = None
        for callback in grace_period.callbacks:
            callback()
        if self._pending_callbacks:
            self._start_grace_period()
