"""The thread-behaviour action DSL and its waitable primitives.

Workload programs are Python generators that ``yield`` primitive actions;
the guest kernel interprets them on whatever vCPU the thread currently runs
on.  Only four primitives exist — everything richer (mutexes, barriers,
semaphores, OpenMP waiting policy) is composed from them in
:mod:`repro.guest.sync`:

``Compute(ns)``
    Burn CPU for ``ns`` nanoseconds of *on-CPU* time.  Preemption at either
    layer pauses the countdown.
``SpinWait(waitable, budget_ns)``
    Busy-wait on a waitable, consuming CPU, for at most ``budget_ns`` of
    on-CPU spinning.  The generator receives ``True`` if the waitable fired
    for this thread, ``False`` on budget exhaustion.
``BlockOn(waitable)``
    Sleep (off the runqueue) until the waitable fires for this thread.
``YieldCPU()``
    Put the thread at the back of its runqueue (sched_yield).
``Exit()``
    Terminate the thread.

Waitables
---------
``SpinFlag``
    A fire-all condition variable for busy-waiters (an OpenMP barrier's
    generation flag, ad-hoc "wait for stage" flags).
``UserSpinLock``
    A fire-one, user-space spin lock (lu's hand-rolled synchronization).
    Only a spinner whose vCPU is *currently executing* can grab a released
    lock — a preempted spinner cannot, which is precisely the lock-holder
    preemption pathology of Figure 1(a).
``WaitQueue``
    A fire-one/fire-all queue for blocked threads (the futex wait side).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.threads import Thread


class Action:
    """Base class for primitive actions (marker only)."""

    __slots__ = ()


class Compute(Action):
    """Consume ``ns`` nanoseconds of CPU."""

    __slots__ = ("remaining_ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise ValueError("compute duration cannot be negative")
        self.remaining_ns = int(ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute({self.remaining_ns}ns left)"


class SpinWait(Action):
    """Busy-wait on ``waitable`` for at most ``budget_ns`` of on-CPU time."""

    __slots__ = ("waitable", "budget_ns", "fired")

    def __init__(self, waitable: "Waitable", budget_ns: int):
        if budget_ns < 0:
            raise ValueError("spin budget cannot be negative")
        self.waitable = waitable
        self.budget_ns = int(budget_ns)
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpinWait({self.waitable!r}, budget={self.budget_ns}ns)"


class BlockOn(Action):
    """Sleep until the waitable fires for this thread."""

    __slots__ = ("waitable",)

    def __init__(self, waitable: "Waitable"):
        self.waitable = waitable


class YieldCPU(Action):
    """Voluntarily yield to the next ready thread (sched_yield)."""

    __slots__ = ()


class HypercallYield(Action):
    """SCHEDOP_yield: give the whole vCPU back to the hypervisor.

    This is pv-spinlock's escape hatch — after a bounded spin, the waiter
    yields its vCPU so the (possibly preempted) lock holder can run.
    """

    __slots__ = ()


class Exit(Action):
    """Terminate the thread (equivalent to returning from the generator)."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Waitables
# ----------------------------------------------------------------------
class Waitable:
    """Common spinner/blocked-waiter registry.

    The kernel registers threads here while they execute ``SpinWait`` or
    ``BlockOn`` actions; sync primitives call the ``fire_*`` methods.  The
    kernel installs itself as :attr:`kernel` on each guest's waitables lazily
    (a waitable belongs to exactly one guest).
    """

    __slots__ = ("name", "spinners", "blocked", "kernel", "latched")

    def __init__(self, name: str = "?"):
        self.name = name
        #: Threads currently spinning on this waitable, in arrival order.
        self.spinners: list["Thread"] = []
        #: Threads currently blocked on this waitable, in arrival order.
        self.blocked: list["Thread"] = []
        self.kernel = None  # set by the kernel on first use
        #: Once latched (SpinFlag.fire_all), late waiters complete at once;
        #: closes the timeout-then-block race in barrier implementations.
        self.latched = False

    # -- registration (kernel side) ------------------------------------
    def add_spinner(self, thread: "Thread") -> None:
        self.spinners.append(thread)

    def remove_spinner(self, thread: "Thread") -> None:
        if thread in self.spinners:
            self.spinners.remove(thread)

    def add_blocked(self, thread: "Thread") -> None:
        self.blocked.append(thread)

    def remove_blocked(self, thread: "Thread") -> None:
        if thread in self.blocked:
            self.blocked.remove(thread)

    # -- firing (sync-primitive side) -----------------------------------
    def fire_all(self) -> int:
        """Release every spinner and waiter.  Returns how many were released."""
        assert self.kernel is not None, "waitable never waited on"
        count = 0
        for thread in list(self.spinners):
            self.kernel.spin_satisfied(thread, self)
            count += 1
        for thread in list(self.blocked):
            self.blocked.remove(thread)
            self.kernel.wake_thread(thread)
            count += 1
        return count

    def fire_one(self) -> "Thread | None":
        """Release one waiter: prefer a spinner on an executing vCPU (it
        reacts immediately), then any spinner, then a blocked thread."""
        assert self.kernel is not None, "waitable never waited on"
        executing = [t for t in self.spinners if self.kernel.thread_is_executing(t)]
        pool = executing or self.spinners
        if pool:
            thread = pool[0]
            self.kernel.spin_satisfied(thread, self)
            return thread
        if self.blocked:
            thread = self.blocked.pop(0)
            self.kernel.wake_thread(thread)
            return thread
        return None

    @property
    def waiter_count(self) -> int:
        return len(self.spinners) + len(self.blocked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} spin={len(self.spinners)} blk={len(self.blocked)}>"


class SpinFlag(Waitable):
    """A one-shot condition: firing releases everyone, then stays latched.

    Barrier implementations allocate a fresh flag per generation; the latch
    means a waiter that arrives (or falls back from spinning to blocking)
    after the release still proceeds immediately.
    """

    def fire_all(self) -> int:
        self.latched = True
        return super().fire_all()


class WaitQueue(Waitable):
    """A futex-style wait queue (blocked waiters; spinners also allowed)."""


class UserSpinLock(Waitable):
    """A user-space spin lock with preemption-aware handoff.

    State machine:

    * ``lock()`` (in sync helpers) tries :meth:`try_acquire` first; on
      failure the thread spins via ``SpinWait(lock, budget)``.
    * ``release()`` hands the lock to a spinner whose vCPU is executing, if
      any (they observe the release within ``handoff_ns``); otherwise the
      lock is left free and the first spinner to run grabs it — matching
      real spin-lock behaviour when every waiter is preempted.
    """

    __slots__ = ("holder", "free")

    def __init__(self, name: str = "spinlock"):
        super().__init__(name)
        self.holder: "Thread | None" = None
        self.free = True

    def try_acquire(self, thread: "Thread") -> bool:
        if self.free:
            self.free = False
            self.holder = thread
            return True
        return False

    def release(self) -> None:
        self.holder = None
        self.free = True
        assert self.kernel is not None
        # Grant to a spinner that is executing right now, if there is one.
        for candidate in list(self.spinners):
            if self.kernel.thread_is_executing(candidate):
                self.free = False
                self.holder = candidate
                self.kernel.spin_satisfied(candidate, self)
                return
        # Otherwise the lock stays free; on_spinner_resumed() grants it when
        # a preempted spinner gets CPU again.

    def on_spinner_resumed(self, thread: "Thread") -> bool:
        """Called by the kernel when a spinner's vCPU starts executing."""
        if self.free:
            self.free = False
            self.holder = thread
            return True
        return False
