"""Guest synchronization primitives, composed from the action DSL.

Each primitive exposes generator methods that workload behaviours embed via
``yield from``.  They model both families from the paper:

* **busy-waiting** — :class:`KernelSpinLock` (plain or paravirtual) and the
  user-level spinning in :class:`OpenMPBarrier` / ad-hoc
  :class:`repro.guest.actions.UserSpinLock` usage;
* **blocking** — :class:`Futex`, :class:`GuestMutex`, :class:`CondVar` and
  :class:`Semaphore`, whose cross-vCPU wake-ups ride reschedule IPIs and
  therefore suffer the hypervisor's queueing delays (Figure 1(b)).

Costs are charged as explicit ``Compute`` actions so they appear in CPU
accounting exactly where a real kernel would spend them.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.guest.actions import (
    Action,
    BlockOn,
    Compute,
    HypercallYield,
    SpinFlag,
    SpinWait,
    UserSpinLock,
    WaitQueue,
    YieldCPU,
)
from repro.metrics.collectors import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread

SyncGen = Generator[Action, object, None]

#: Cost of an uncontended atomic (CAS) operation.
ATOMIC_NS = 80
#: User->kernel transition plus futex hash-bucket work for FUTEX_WAIT.
FUTEX_WAIT_NS = 600
#: FUTEX_WAKE syscall cost on the waker side.
FUTEX_WAKE_NS = 500
#: Fast-path mutex acquire/release cost.
MUTEX_FAST_NS = 100
#: Hold time of the futex hash-bucket spinlock inside wait/wake paths.
FUTEX_BUCKET_NS = 1500
#: An effectively unbounded spin budget ("spin forever").
SPIN_FOREVER_NS = 10**12


def _bucket_section(kernel_lock: "KernelSpinLock | None", thread: "Thread") -> SyncGen:
    """The kernel-level critical section inside futex_wait/futex_wake.

    Real futex operations take a hash-bucket spin lock; under CPU
    oversubscription that lock is exactly where kernel-level lock-holder
    preemption bites, and where pv-spinlocks help.  Primitives constructed
    with a shared ``kernel_lock`` exercise that path.
    """
    if kernel_lock is not None:
        yield from kernel_lock.critical_section(thread, FUTEX_BUCKET_NS)


class Futex:
    """The kernel's sleep/wake-up engine (a named wait queue).

    ``wait`` parks the calling thread; ``wake`` releases up to ``n`` waiters,
    sending reschedule IPIs to remote vCPUs as a side effect of
    :meth:`repro.guest.kernel.GuestKernel.wake_thread`.
    """

    def __init__(self, kernel: "GuestKernel", name: str = "futex"):
        self.kernel = kernel
        self.queue = WaitQueue(name)
        self.queue.kernel = kernel
        self.waits = Counter()
        self.wakes = Counter()

    def wait(self) -> SyncGen:
        self.waits.inc()
        yield Compute(FUTEX_WAIT_NS)
        yield BlockOn(self.queue)

    def wake(self, n: int = 1) -> SyncGen:
        yield Compute(FUTEX_WAKE_NS)
        for _ in range(n):
            if self.queue.fire_one() is None:
                break
            self.wakes.inc()

    def wake_all(self) -> SyncGen:
        yield Compute(FUTEX_WAKE_NS)
        self.wakes.inc(self.queue.fire_all())


class GuestMutex:
    """A pthread mutex: fast-path CAS, futex slow path, barging wake-ups.

    Like glibc's mutex, unlock clears ownership and wakes one waiter who
    must then *re-compete* — a running thread may barge in ahead of it.
    Direct handoff would be simpler, but under preemption it creates lock
    convoys: every transfer then costs a full wake-to-run latency, and a
    contended mutex collapses to one critical section per scheduling
    round.  Barging keeps the lock busy whenever anyone runnable wants it.
    """

    def __init__(
        self,
        kernel: "GuestKernel",
        name: str = "mutex",
        kernel_lock: "KernelSpinLock | None" = None,
    ):
        self.kernel = kernel
        self.name = name
        self.owner: "Thread | None" = None
        self.queue = WaitQueue(f"{name}.waiters")
        self.queue.kernel = kernel
        self.kernel_lock = kernel_lock
        self.contended = Counter()
        self.acquisitions = Counter()

    def lock(self, thread: "Thread") -> SyncGen:
        yield Compute(MUTEX_FAST_NS)
        self.acquisitions.inc()
        if self.owner is None:
            self.owner = thread
            return
        self.contended.inc()
        while True:
            yield Compute(FUTEX_WAIT_NS)
            yield from _bucket_section(self.kernel_lock, thread)
            if self.owner is None:
                # Released while we were entering the kernel: grab it.
                self.owner = thread
                return
            yield BlockOn(self.queue)
            # Woken: re-compete (a running thread may have barged in).
            if self.owner is None:
                self.owner = thread
                return

    def unlock(self, thread: "Thread") -> SyncGen:
        if self.owner is not thread:
            raise RuntimeError(f"mutex {self.name}: unlock by non-owner {thread.name}")
        yield Compute(MUTEX_FAST_NS)
        self.owner = None
        if self.queue.blocked:
            yield Compute(FUTEX_WAKE_NS)
            yield from _bucket_section(self.kernel_lock, thread)
            if self.owner is None:  # nobody barged during the wake path
                self.queue.fire_one()


class CondVar:
    """A pthread condition variable over a :class:`GuestMutex`."""

    def __init__(self, kernel: "GuestKernel", name: str = "cond"):
        self.kernel = kernel
        self.queue = WaitQueue(f"{name}.waiters")
        self.queue.kernel = kernel
        self.signals = Counter()

    def wait(self, mutex: GuestMutex, thread: "Thread") -> SyncGen:
        yield from mutex.unlock(thread)
        yield Compute(FUTEX_WAIT_NS)
        yield BlockOn(self.queue)
        yield from mutex.lock(thread)

    def signal(self) -> SyncGen:
        self.signals.inc()
        yield Compute(FUTEX_WAKE_NS)
        self.queue.fire_one()

    def broadcast(self) -> SyncGen:
        self.signals.inc()
        yield Compute(FUTEX_WAKE_NS)
        self.queue.fire_all()


class Semaphore:
    """A counting semaphore (e.g. ``mm_struct``'s mmap_sem in dedup)."""

    def __init__(
        self,
        kernel: "GuestKernel",
        count: int = 1,
        name: str = "sem",
        kernel_lock: "KernelSpinLock | None" = None,
    ):
        if count < 0:
            raise ValueError("initial semaphore count cannot be negative")
        self.kernel = kernel
        self.count = count
        self.queue = WaitQueue(f"{name}.waiters")
        self.queue.kernel = kernel
        self.kernel_lock = kernel_lock
        self.contended = Counter()

    def down(self, thread: "Thread") -> SyncGen:
        yield Compute(ATOMIC_NS)
        if self.count > 0:
            self.count -= 1
            return
        self.contended.inc()
        yield Compute(FUTEX_WAIT_NS)
        yield from _bucket_section(self.kernel_lock, thread)
        if self.count > 0:
            self.count -= 1
            return
        yield BlockOn(self.queue)
        # Direct handoff: up() does not increment when it wakes a waiter.

    def up(self, thread: "Thread") -> SyncGen:
        yield Compute(ATOMIC_NS)
        if self.queue.blocked:
            yield Compute(FUTEX_WAKE_NS)
            yield from _bucket_section(self.kernel_lock, thread)
            self.queue.fire_one()
        else:
            self.count += 1


class OpenMPBarrier:
    """GCC-OpenMP's spin-then-futex barrier.

    ``spin_budget_ns`` encodes GOMP_SPINCOUNT: 0 means PASSIVE (block
    immediately), a huge value means ACTIVE (spin forever), anything in
    between is the hybrid default.  The last arriver releases both the
    spinners (they observe the generation flag flip within nanoseconds if
    on-CPU) and the blocked waiters (via a futex-wake, i.e. IPIs).
    """

    def __init__(
        self,
        kernel: "GuestKernel",
        parties: int,
        spin_budget_ns: int,
        name: str = "barrier",
        kernel_lock: "KernelSpinLock | None" = None,
    ):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.kernel = kernel
        self.parties = parties
        self.spin_budget_ns = spin_budget_ns
        self.name = name
        self.kernel_lock = kernel_lock
        self.arrived = 0
        self.generation = 0
        self._flag = SpinFlag(f"{name}.gen0")
        self._flag.kernel = kernel
        self.releases = Counter()
        self.futex_fallbacks = Counter()

    def wait(self, thread: "Thread") -> SyncGen:
        yield Compute(ATOMIC_NS)
        self.arrived += 1
        if self.arrived == self.parties:
            self.arrived = 0
            self.generation += 1
            flag = self._flag
            self._flag = SpinFlag(f"{self.name}.gen{self.generation}")
            self._flag.kernel = self.kernel
            self.releases.inc()
            if flag.blocked:
                yield Compute(FUTEX_WAKE_NS)
                yield from _bucket_section(self.kernel_lock, thread)
            flag.fire_all()
            return
        flag = self._flag
        if self.spin_budget_ns > 0:
            fired = yield SpinWait(flag, self.spin_budget_ns)
            if fired:
                return
        self.futex_fallbacks.inc()
        yield Compute(FUTEX_WAIT_NS)
        yield from _bucket_section(self.kernel_lock, thread)
        yield BlockOn(flag)  # latched flags fall straight through


class KernelSpinLock:
    """A kernel spin lock, optionally paravirtualized.

    * Plain mode spins unboundedly — a waiter whose holder got preempted
      burns its entire timeslice (the LHP pathology).
    * PV mode (``pv_spinlock`` in :class:`repro.guest.kernel.GuestConfig`)
      spins for a bounded budget and then yields the vCPU back to the
      hypervisor (SCHEDOP_yield), repeating until the lock is obtained.
    """

    def __init__(self, kernel: "GuestKernel", name: str = "klock"):
        self.kernel = kernel
        self.lock = UserSpinLock(name)
        self.lock.kernel = kernel
        self.acquisitions = Counter()
        self.contentions = Counter()
        self.pv_yields = Counter()

    def acquire(self, thread: "Thread") -> SyncGen:
        yield Compute(ATOMIC_NS)
        self.acquisitions.inc()
        if self.lock.try_acquire(thread):
            thread.nonpreemptible += 1  # preempt_disable() inside the CS
            return
        self.contentions.inc()
        if not self.kernel.config.pv_spinlock:
            fired = yield SpinWait(self.lock, SPIN_FOREVER_NS)
            if not fired:
                raise RuntimeError(f"{self.lock.name}: unbounded spin timed out")
            thread.nonpreemptible += 1
            return
        while True:
            fired = yield SpinWait(self.lock, self.kernel.config.pv_spin_budget_ns)
            if fired:
                thread.nonpreemptible += 1
                return
            self.pv_yields.inc()
            # Give a co-located thread (possibly the preempted holder) a
            # turn first, then the vCPU itself back to the hypervisor.
            # Without the thread-level yield, a waiter packed on the same
            # vCPU as the holder would spin-and-yield forever.
            yield YieldCPU()
            yield HypercallYield()

    def release(self, thread: "Thread") -> SyncGen:
        if self.lock.holder is not thread:
            raise RuntimeError(f"{self.lock.name}: release by non-holder {thread.name}")
        yield Compute(ATOMIC_NS)
        thread.nonpreemptible -= 1  # preempt_enable()
        # Preemption suppression lifted: the region on this thread's vCPU
        # (where it is current) may now have an earlier horizon.
        thread.kernel._macro_refresh_one(thread.vcpu_index)
        self.lock.release()

    def critical_section(self, thread: "Thread", hold_ns: int) -> SyncGen:
        """Convenience: acquire, compute for ``hold_ns``, release."""
        yield from self.acquire(thread)
        yield Compute(hold_ns)
        yield from self.release(thread)
