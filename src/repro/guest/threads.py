"""Guest threads: the schedulable entities of Figure 3.

The paper classifies a Linux kernel's schedulable entities into user
threads (migratable), system-wide kthreads (migratable), per-CPU kthreads
(not migratable, but quiescent once nothing drives them), and three classes
of interrupts.  Here a :class:`Thread` carries that classification plus the
generator that produces its behaviour.
"""

from __future__ import annotations

import enum
import itertools
from typing import Generator, TYPE_CHECKING

from repro.guest.actions import Action

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel

#: The generator type a workload program must produce.
Behavior = Generator[Action, object, None]

_thread_ids = itertools.count(1)


class ThreadKind(enum.Enum):
    """Thread classes from Figure 3."""

    UTHREAD = "uthread"
    KTHREAD_SYSTEM = "kthread_system"   # ext4-xxx, kauditd, rcu_sched, ...
    KTHREAD_PERCPU = "kthread_percpu"   # ksoftirqd, kworker, swapper, ...


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Thread:
    """A guest thread bound to one runqueue at a time.

    Experiments create tens of thousands of these (one per request in the
    httperf runs), so instances are slotted: no per-object ``__dict__``.
    """

    __slots__ = (
        "kernel",
        "behavior",
        "name",
        "kind",
        "rt",
        "tid",
        "state",
        "vcpu_index",
        "pinned_to",
        "action",
        "send_value",
        "vruntime",
        "exec_ns",
        "migrations",
        "nonpreemptible",
    )

    def __init__(
        self,
        kernel: "GuestKernel",
        behavior: Behavior,
        name: str,
        kind: ThreadKind = ThreadKind.UTHREAD,
        rt: bool = False,
    ):
        self.kernel = kernel
        self.behavior = behavior
        self.name = name
        self.kind = kind
        #: Real-time scheduling class: always picked before fair threads and
        #: never preempted by them.  The vScale daemon runs this way so the
        #: fair-share workload cannot delay reconfiguration decisions.
        self.rt = rt
        self.tid = next(_thread_ids)
        self.state = ThreadState.READY
        #: Index of the vCPU whose runqueue currently holds the thread.
        self.vcpu_index: int | None = None
        #: Hard CPU affinity (None = migratable anywhere outside the mask).
        self.pinned_to: int | None = None
        #: Current in-flight action, if the generator is mid-primitive.
        self.action: Action | None = None
        #: Value to send into the generator on the next advance.
        self.send_value: object = None
        #: Fair-scheduler virtual runtime and total executed time (ns).
        self.vruntime = 0
        self.exec_ns = 0
        #: Migration counter (Table 3 validation).
        self.migrations = 0
        #: Non-zero while inside a kernel spinlock critical section:
        #: preemption is disabled there (preempt_disable), so the guest
        #: scheduler must not switch the thread out mid-section.
        self.nonpreemptible = 0

    @property
    def migratable(self) -> bool:
        """Per-CPU kthreads must never be migrated (kernel panics)."""
        return self.kind is not ThreadKind.KTHREAD_PERCPU and self.pinned_to is None

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.name}#{self.tid} {self.kind.value} "
            f"{self.state.value} on v{self.vcpu_index}>"
        )
