"""Per-vCPU runqueues for the guest's fair scheduler.

A deliberately small CFS: threads carry a virtual runtime, the queue picks
the smallest, real-time threads always win, and waking threads get their
vruntime clamped forward so sleepers cannot monopolize the CPU afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.threads import Thread


class RunQueue:
    """The ready queue plus current thread of one vCPU."""

    __slots__ = (
        "index",
        "ready",
        "current",
        "min_vruntime",
        "picked_at",
        "pending_overhead_ns",
    )

    def __init__(self, index: int):
        self.index = index
        self.ready: list["Thread"] = []
        self.current: "Thread | None" = None
        #: Monotonic floor used to clamp waking threads' vruntime.
        self.min_vruntime = 0
        #: Sim time at which the current thread was picked (for quantum).
        self.picked_at = 0
        #: Overhead (context switch, migration work) to burn before the
        #: current thread's action proceeds.
        self.pending_overhead_ns = 0

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Number of runnable threads (the guest's load-balancing metric)."""
        return len(self.ready) + (1 if self.current is not None else 0)

    def enqueue(self, thread: "Thread") -> None:
        if thread in self.ready or thread is self.current:
            raise RuntimeError(f"{thread.name} already on rq{self.index}")
        thread.vcpu_index = self.index
        self.ready.append(thread)

    def dequeue(self, thread: "Thread") -> None:
        self.ready.remove(thread)

    def pick_next(self) -> "Thread | None":
        """Highest-priority ready thread: RT first, then min vruntime.

        Ties break by queue order, which keeps the simulation deterministic.
        """
        best: "Thread | None" = None
        best_rt: "Thread | None" = None
        for t in self.ready:
            if t.rt:
                if best_rt is None or t.vruntime < best_rt.vruntime or (
                    t.vruntime == best_rt.vruntime and t.tid < best_rt.tid
                ):
                    best_rt = t
            elif best_rt is None:
                if best is None or t.vruntime < best.vruntime or (
                    t.vruntime == best.vruntime and t.tid < best.tid
                ):
                    best = t
        return best_rt if best_rt is not None else best

    def advance_min_vruntime(self) -> None:
        candidates = [t.vruntime for t in self.ready]
        if self.current is not None:
            candidates.append(self.current.vruntime)
        if candidates:
            self.min_vruntime = max(self.min_vruntime, min(candidates))

    def steal_candidates(self) -> list["Thread"]:
        """Ready, migratable, non-RT threads a peer may pull."""
        return [t for t in self.ready if t.migratable and not t.rt]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = self.current.name if self.current else "-"
        return f"<rq{self.index} cur={cur} ready={len(self.ready)}>"
