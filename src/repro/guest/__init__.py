"""Linux-like guest OS substrate.

The guest kernel runs *threads* (user threads, system-wide kthreads, and
non-migratable per-CPU kthreads) on per-vCPU runqueues, with SMP load
balancing, a 1000 Hz scheduler tick with dynticks, futex-based blocking
synchronization, user- and kernel-level spinning, and cross-vCPU reschedule
IPIs — everything vScale's balancer (Algorithm 2) manipulates.
"""

from repro.guest.actions import (
    Action,
    Compute,
    BlockOn,
    SpinWait,
    YieldCPU,
    Exit,
    SpinFlag,
    UserSpinLock,
    WaitQueue,
)
from repro.guest.threads import Thread, ThreadKind
from repro.guest.kernel import GuestConfig, GuestKernel
from repro.guest.sync import (
    Futex,
    GuestMutex,
    CondVar,
    OpenMPBarrier,
    KernelSpinLock,
    Semaphore,
)
from repro.guest.hotplug import HotplugModel, KERNEL_VERSIONS
from repro.guest import procfs

__all__ = [
    "Action",
    "Compute",
    "BlockOn",
    "SpinWait",
    "YieldCPU",
    "Exit",
    "SpinFlag",
    "UserSpinLock",
    "WaitQueue",
    "Thread",
    "ThreadKind",
    "GuestConfig",
    "GuestKernel",
    "Futex",
    "GuestMutex",
    "CondVar",
    "OpenMPBarrier",
    "KernelSpinLock",
    "Semaphore",
    "HotplugModel",
    "KERNEL_VERSIONS",
    "procfs",
]
