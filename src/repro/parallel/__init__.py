"""Parallel experiment execution with content-addressed result caching.

The grid experiments (Figures 6/7, 9, 10, 11-13, the seed-variance
analysis, and the ablations) decompose into independent, deterministic
cells; this package fans those cells out over a process pool and
memoizes finished cells on disk so re-runs and ``--scale`` sweeps skip
already-computed work.  See :mod:`repro.parallel.executor` for the
environment knobs (``REPRO_JOBS``, ``REPRO_CACHE``, ``REPRO_CACHE_DIR``)
and DESIGN.md section 7 for the determinism guarantee.
"""

from repro.parallel.cache import (
    MISS,
    ResultCache,
    canonical,
    cell_key,
    code_fingerprint,
)
from repro.parallel.executor import (
    ENV_CACHE,
    ENV_CACHE_DIR,
    ENV_JOBS,
    CellSpec,
    ParallelExecutor,
    cache_from_env,
    default_cache_dir,
    get_default_executor,
    jobs_from_env,
)
from repro.parallel.telemetry import CellRecord, Telemetry

__all__ = [
    "MISS",
    "ResultCache",
    "canonical",
    "cell_key",
    "code_fingerprint",
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "CellSpec",
    "ParallelExecutor",
    "cache_from_env",
    "default_cache_dir",
    "get_default_executor",
    "jobs_from_env",
    "CellRecord",
    "Telemetry",
]
