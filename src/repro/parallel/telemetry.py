"""Per-cell execution telemetry for the parallel executor.

The executor records one :class:`CellRecord` per cell — wall-clock start
and stop timestamps plus whether the cell was served from cache — and
keeps running hit/miss counters.  The runner prints the per-cell lines
and the final summary on stderr so the deterministic report text on
stdout stays byte-identical between serial, parallel, cold-cache, and
warm-cache runs.

Robustness events are telemetry too: cells that needed more than one
attempt carry ``attempts``/``recovered`` annotations, and cache entries
quarantined as corrupt are tallied per key.  None of this appears on
stdout — a recovered grid still renders the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CellRecord:
    experiment: str
    cell: str
    #: Wall-clock epoch seconds; for cache hits both stamps mark the lookup.
    started: float
    finished: float
    cache_hit: bool
    #: Total executions of the cell (1 on the happy path).
    attempts: int = 1
    #: How the cell was rescued when the pool failed it: "timeout" or
    #: "crash" (serial re-execution), None on the happy path.
    recovered: str | None = None

    @property
    def duration_s(self) -> float:
        return self.finished - self.started

    def render(self) -> str:
        status = "hit " if self.cache_hit else "run "
        line = f"[cell] {status} {self.experiment:10s} {self.cell:40s} {self.duration_s:7.2f}s"
        if self.recovered is not None:
            line += f"  (recovered: {self.recovered}, attempts={self.attempts})"
        elif self.attempts > 1:
            line += f"  (attempts={self.attempts})"
        return line


@dataclass
class Telemetry:
    records: list[CellRecord] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    #: Cells rescued by serial re-execution after a pool timeout/crash.
    recovered_cells: int = 0
    #: Cache keys whose entries were quarantined as corrupt.
    corrupt_entries: list[str] = field(default_factory=list)

    def record(self, record: CellRecord) -> None:
        self.records.append(record)
        if record.cache_hit:
            self.hits += 1
        else:
            self.misses += 1
        if record.recovered is not None:
            self.recovered_cells += 1

    def record_corruption(self, key: str) -> None:
        self.corrupt_entries.append(key)

    def mark(self) -> int:
        """Bookmark the current record count (for per-experiment slices)."""
        return len(self.records)

    def executed_seconds(self, since: int = 0) -> float:
        """Total wall-clock seconds spent actually running cells."""
        return sum(
            r.duration_s for r in self.records[since:] if not r.cache_hit
        )

    def render_cells(self, since: int = 0) -> str:
        return "\n".join(r.render() for r in self.records[since:])

    def summary(self) -> str:
        text = (
            f"[telemetry] cells={len(self.records)} hits={self.hits} "
            f"misses={self.misses} executed={self.executed_seconds():.1f}s"
        )
        if self.recovered_cells:
            text += f" recovered={self.recovered_cells}"
        if self.corrupt_entries:
            text += f" corrupt_cache_entries={len(self.corrupt_entries)}"
        return text

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "executed_seconds": self.executed_seconds(),
            "recovered_cells": self.recovered_cells,
            "corrupt_entries": list(self.corrupt_entries),
            "cells": [
                {
                    "experiment": r.experiment,
                    "cell": r.cell,
                    "started": r.started,
                    "finished": r.finished,
                    "duration_s": r.duration_s,
                    "cache_hit": r.cache_hit,
                    "attempts": r.attempts,
                    "recovered": r.recovered,
                }
                for r in self.records
            ],
        }
