"""Per-cell execution telemetry for the parallel executor.

The executor records one :class:`CellRecord` per cell — wall-clock start
and stop timestamps plus whether the cell was served from cache — and
keeps running hit/miss counters.  The runner prints the per-cell lines
and the final summary on stderr so the deterministic report text on
stdout stays byte-identical between serial, parallel, cold-cache, and
warm-cache runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CellRecord:
    experiment: str
    cell: str
    #: Wall-clock epoch seconds; for cache hits both stamps mark the lookup.
    started: float
    finished: float
    cache_hit: bool

    @property
    def duration_s(self) -> float:
        return self.finished - self.started

    def render(self) -> str:
        status = "hit " if self.cache_hit else "run "
        return f"[cell] {status} {self.experiment:10s} {self.cell:40s} {self.duration_s:7.2f}s"


@dataclass
class Telemetry:
    records: list[CellRecord] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    def record(self, record: CellRecord) -> None:
        self.records.append(record)
        if record.cache_hit:
            self.hits += 1
        else:
            self.misses += 1

    def mark(self) -> int:
        """Bookmark the current record count (for per-experiment slices)."""
        return len(self.records)

    def executed_seconds(self, since: int = 0) -> float:
        """Total wall-clock seconds spent actually running cells."""
        return sum(
            r.duration_s for r in self.records[since:] if not r.cache_hit
        )

    def render_cells(self, since: int = 0) -> str:
        return "\n".join(r.render() for r in self.records[since:])

    def summary(self) -> str:
        return (
            f"[telemetry] cells={len(self.records)} hits={self.hits} "
            f"misses={self.misses} executed={self.executed_seconds():.1f}s"
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "executed_seconds": self.executed_seconds(),
            "cells": [
                {
                    "experiment": r.experiment,
                    "cell": r.cell,
                    "started": r.started,
                    "finished": r.finished,
                    "duration_s": r.duration_s,
                    "cache_hit": r.cache_hit,
                }
                for r in self.records
            ],
        }
