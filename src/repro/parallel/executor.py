"""Process-pool executor for grid-shaped experiments.

Every headline figure is a grid of fully independent simulation cells —
(app x config x spincount x seed) — and each cell is a deterministic
function of its parameters.  The executor decomposes a grid into
:class:`CellSpec`s, runs the misses concurrently across worker
processes, serves prior results from the content-addressed
:class:`~repro.parallel.cache.ResultCache`, and reassembles everything
in submission order, so parallel and serial execution are bit-for-bit
identical (``tests/experiments/test_determinism.py`` enforces this).

The pool path is failure-tolerant: a cell that exceeds the per-cell
timeout or loses its worker process (segfault, OOM kill) is retried up
to ``max_retries`` times in a fresh pool, then re-executed serially in
the calling process as a last resort — the grid completes and the
recovery is recorded in telemetry instead of aborting the run.  Because
cells are deterministic, re-execution is always safe.  Exceptions
*raised by the cell function itself* still propagate: those are bugs,
not flakiness.

Environment knobs (read by :func:`get_default_executor` and the
constructor defaults):

``REPRO_JOBS``
    Worker-process count; defaults to ``os.cpu_count()``.  ``1`` runs
    cells inline in the calling process.
``REPRO_CACHE``
    ``1``/``on`` enables the on-disk result cache for library calls;
    ``0``/``off`` disables it even when ``REPRO_CACHE_DIR`` is set.
    (The CLI runner enables the cache by default; see ``--no-cache``.)
``REPRO_CACHE_DIR``
    Cache location; defaults to ``$XDG_CACHE_HOME/repro-vscale`` (or
    ``~/.cache/repro-vscale``).  Setting it implies ``REPRO_CACHE=1``.
``REPRO_CELL_TIMEOUT``
    Per-cell wall-clock timeout in seconds (measured from when the cell
    starts running in a worker, not from submission).  Unset or ``<= 0``
    disables the timeout.
``REPRO_CELL_RETRIES``
    Pool retries before the serial fallback (default 1).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import re
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.parallel.cache import MISS, ResultCache, cell_key
from repro.parallel.telemetry import CellRecord, Telemetry

ENV_JOBS = "REPRO_JOBS"
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CELL_TIMEOUT = "REPRO_CELL_TIMEOUT"
ENV_CELL_RETRIES = "REPRO_CELL_RETRIES"

_FALSY = {"0", "off", "false", "no"}
_TRUTHY = {"1", "on", "true", "yes"}

#: How often the pool loop polls futures for completion/timeouts (s).
_POLL_INTERVAL_S = 0.05


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get(ENV_CACHE_DIR)
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-vscale"


def jobs_from_env() -> int:
    raw = os.environ.get(ENV_JOBS, "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def cell_timeout_from_env() -> float | None:
    raw = os.environ.get(ENV_CELL_TIMEOUT, "").strip()
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


def cell_retries_from_env() -> int:
    raw = os.environ.get(ENV_CELL_RETRIES, "").strip()
    if raw:
        return max(0, int(raw))
    return 1


def cache_from_env() -> ResultCache | None:
    """Build the cache the environment asks for (None when disabled)."""
    flag = os.environ.get(ENV_CACHE, "").strip().lower()
    if flag in _FALSY:
        return None
    if flag in _TRUTHY or os.environ.get(ENV_CACHE_DIR):
        return ResultCache(default_cache_dir())
    return None


@dataclass(frozen=True)
class CellSpec:
    """One named, independently-runnable cell of an experiment grid.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``kwargs`` must contain everything that determines the result —
    including the seed and work scale — since they form the cache key.
    """

    experiment: str
    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        return cell_key(self.experiment, self.fn, dict(self.kwargs))


def _invoke(
    payload: tuple[int, Callable, dict, "tuple[str, dict] | None"],
) -> tuple[int, Any, float, float]:
    """Worker-side cell execution (top-level, hence picklable).

    The optional fourth element is ``(trace_path, trace_meta)``: the cell
    runs under a :func:`repro.tracelog.capture.capture_to` block and its
    binary trace streams to ``trace_path``.  Installed worker-side so the
    per-cell capture works across process boundaries (the fork pool must
    not share one suffix counter).
    """
    index, fn, kwargs, trace = payload
    started = time.time()  # det: allow (telemetry, not simulation state)
    if trace is None:
        value = fn(**kwargs)
    else:
        from repro.tracelog.capture import capture_to

        trace_path, trace_meta = trace
        with capture_to(trace_path, meta=trace_meta):
            value = fn(**kwargs)
    return index, value, started, time.time()  # det: allow (telemetry)


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class _CellRun:
    """Mutable per-cell scheduling state inside one run_cells call."""

    index: int
    attempts: int = 0
    retries_left: int = 0
    #: Why the pool failed the cell last ("timeout"/"crash"); becomes the
    #: telemetry annotation when the serial fallback rescues it.
    last_failure: str | None = None


class ParallelExecutor:
    """Runs cell grids across a process pool with result memoization."""

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        telemetry: Telemetry | None = None,
        cell_timeout_s: float | None = None,
        max_retries: int | None = None,
        trace_dir: "str | Path | None" = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else jobs_from_env())
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: When set, every cell streams a binary trace to
        #: ``trace_dir/<experiment>__<name>.rtl``.  Tracing forces real
        #: execution: the result cache is still written but never read,
        #: since a cache hit would produce no trace.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        self.cell_timeout_s = (
            cell_timeout_s if cell_timeout_s is not None else cell_timeout_from_env()
        )
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            self.cell_timeout_s = None
        self.max_retries = (
            max_retries if max_retries is not None else cell_retries_from_env()
        )

    def run_cells(self, specs: Iterable[CellSpec]) -> list[Any]:
        """Run every cell, in order; cached cells are not re-executed."""
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        keys: dict[int, str] = {}
        pending: list[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                key = keys[index] = spec.key()
                if self.trace_dir is None:
                    value = self.cache.get(key)
                    if value is not MISS:
                        now = time.time()  # det: allow (telemetry)
                        results[index] = value
                        self.telemetry.record(
                            CellRecord(spec.experiment, spec.name, now, now, True)
                        )
                        continue
            pending.append(index)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for index in pending:
                    outcome = _invoke(self._payload(specs, index))
                    self._complete(specs, keys, results, outcome)
            else:
                self._run_pool(specs, keys, results, pending)

        if self.cache is not None:
            for key in self.cache.drain_corruptions():
                self.telemetry.record_corruption(key)
        return results

    def run_cell(self, spec: CellSpec) -> Any:
        """Convenience wrapper for a single cell."""
        return self.run_cells([spec])[0]

    def _payload(
        self, specs: Sequence[CellSpec], index: int
    ) -> tuple[int, Callable, dict, "tuple[str, dict] | None"]:
        spec = specs[index]
        return (index, spec.fn, dict(spec.kwargs), self._trace_target(spec))

    def _trace_target(self, spec: CellSpec) -> "tuple[str, dict] | None":
        if self.trace_dir is None:
            return None
        stem = re.sub(r"[^A-Za-z0-9._-]+", "_", f"{spec.experiment}__{spec.name}")
        meta = {
            "source": "executor",
            "experiment": spec.experiment,
            "cell": spec.name,
        }
        return str(self.trace_dir / f"{stem}.rtl"), meta

    # ------------------------------------------------------------------
    # Pool scheduling with timeout/crash recovery
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        specs: Sequence[CellSpec],
        keys: Mapping[int, str],
        results: list[Any],
        pending: Sequence[int],
    ) -> None:
        runs = {
            index: _CellRun(index=index, retries_left=self.max_retries)
            for index in pending
        }
        queue: list[int] = list(pending)
        serial: list[_CellRun] = []
        workers = min(self.jobs, len(pending))
        context = _pool_context()

        while queue:
            queue = self._pool_round(
                specs, keys, results, runs, queue, serial, workers, context
            )

        # Last resort: re-execute rescue cases inline, in submission order.
        # Determinism makes this safe; it is slower but cannot crash the
        # grid the way a dying worker can.
        for run in sorted(serial, key=lambda r: r.index):
            run.attempts += 1
            outcome = _invoke(self._payload(specs, run.index))
            self._complete(
                specs, keys, results, outcome,
                attempts=run.attempts, recovered=run.last_failure,
            )

    def _pool_round(
        self,
        specs: Sequence[CellSpec],
        keys: Mapping[int, str],
        results: list[Any],
        runs: dict[int, _CellRun],
        queue: list[int],
        serial: list[_CellRun],
        workers: int,
        context,
    ) -> list[int]:
        """Run one pool generation; returns the indices needing another.

        A generation ends when every submitted future resolves, or early
        when a timeout/crash forces the pool down — surviving cells are
        requeued for the next generation, repeat offenders are handed to
        the serial fallback.
        """
        requeue: list[int] = []
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )
        futures: dict[concurrent.futures.Future, int] = {}
        for index in queue:
            runs[index].attempts += 1
            future = pool.submit(_invoke, self._payload(specs, index))
            futures[future] = index
        started_at: dict[concurrent.futures.Future, float] = {}
        outstanding = set(futures)
        try:
            while outstanding:
                done, outstanding = concurrent.futures.wait(
                    outstanding, timeout=_POLL_INTERVAL_S
                )
                now = time.time()  # det: allow (timeout bookkeeping)
                broken: list[int] = []
                for future in done:
                    index = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # A worker died under this cell (or the pool
                        # collapsed while it was queued).
                        broken.append(index)
                        continue
                    self._complete(
                        specs, keys, results, outcome,
                        attempts=runs[index].attempts,
                    )
                if broken:
                    # Every outstanding future is poisoned too — fail the
                    # rest of the generation over to retry/serial.
                    self._fail_over(
                        runs,
                        broken + [futures[f] for f in outstanding],  # det: allow — results land by index; order is moot
                        "crash", requeue, serial,
                    )
                    return requeue
                if self.cell_timeout_s is None:
                    continue
                for future in outstanding:  # det: allow — order is moot
                    if future not in started_at and future.running():
                        started_at[future] = now
                expired = [
                    future
                    for future in outstanding  # det: allow — order is moot
                    if future in started_at
                    and now - started_at[future] > self.cell_timeout_s
                ]
                if expired:
                    # Running futures cannot be cancelled: take the pool
                    # down and sort survivors from offenders.
                    expired_set = set(expired)
                    for future in outstanding:  # det: allow — order is moot
                        index = futures[future]
                        if future in expired_set:
                            self._fail_over(
                                runs, [index], "timeout", requeue, serial
                            )
                        else:
                            # Innocent bystander: requeue at no cost.
                            requeue.append(index)
                    self._terminate(pool)
                    return requeue
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return requeue

    @staticmethod
    def _fail_over(
        runs: dict[int, _CellRun],
        indices: Iterable[int],
        reason: str,
        requeue: list[int],
        serial: list[_CellRun],
    ) -> None:
        for index in indices:
            run = runs[index]
            run.last_failure = reason
            if run.retries_left > 0:
                run.retries_left -= 1
                requeue.append(index)
            else:
                serial.append(run)

    @staticmethod
    def _terminate(pool: concurrent.futures.ProcessPoolExecutor) -> None:
        """Kill worker processes outright so a hung cell cannot block
        shutdown.  (`_processes` is private but stable since 3.7; running
        futures cannot be cancelled any other way.)"""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _complete(
        self,
        specs: Sequence[CellSpec],
        keys: Mapping[int, str],
        results: list[Any],
        outcome: tuple[int, Any, float, float],
        attempts: int = 1,
        recovered: str | None = None,
    ) -> None:
        index, value, started, finished = outcome
        spec = specs[index]
        results[index] = value
        if self.cache is not None:
            self.cache.put(keys[index], value)
        self.telemetry.record(
            CellRecord(
                spec.experiment, spec.name, started, finished, False,
                attempts=attempts, recovered=recovered,
            )
        )


_DEFAULT: ParallelExecutor | None = None


def get_default_executor() -> ParallelExecutor:
    """The process-wide executor used when callers don't pass their own.

    Configured from the environment on first use; its telemetry
    aggregates across every experiment run in the process (the benchmark
    suite prints it at session end).
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ParallelExecutor(jobs=jobs_from_env(), cache=cache_from_env())
    return _DEFAULT
