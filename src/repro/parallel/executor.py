"""Process-pool executor for grid-shaped experiments.

Every headline figure is a grid of fully independent simulation cells —
(app x config x spincount x seed) — and each cell is a deterministic
function of its parameters.  The executor decomposes a grid into
:class:`CellSpec`s, runs the misses concurrently across worker
processes, serves prior results from the content-addressed
:class:`~repro.parallel.cache.ResultCache`, and reassembles everything
in submission order, so parallel and serial execution are bit-for-bit
identical (``tests/experiments/test_determinism.py`` enforces this).

Environment knobs (read by :func:`get_default_executor`):

``REPRO_JOBS``
    Worker-process count; defaults to ``os.cpu_count()``.  ``1`` runs
    cells inline in the calling process.
``REPRO_CACHE``
    ``1``/``on`` enables the on-disk result cache for library calls;
    ``0``/``off`` disables it even when ``REPRO_CACHE_DIR`` is set.
    (The CLI runner enables the cache by default; see ``--no-cache``.)
``REPRO_CACHE_DIR``
    Cache location; defaults to ``$XDG_CACHE_HOME/repro-vscale`` (or
    ``~/.cache/repro-vscale``).  Setting it implies ``REPRO_CACHE=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.parallel.cache import MISS, ResultCache, cell_key
from repro.parallel.telemetry import CellRecord, Telemetry

ENV_JOBS = "REPRO_JOBS"
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_FALSY = {"0", "off", "false", "no"}
_TRUTHY = {"1", "on", "true", "yes"}


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get(ENV_CACHE_DIR)
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-vscale"


def jobs_from_env() -> int:
    raw = os.environ.get(ENV_JOBS, "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def cache_from_env() -> ResultCache | None:
    """Build the cache the environment asks for (None when disabled)."""
    flag = os.environ.get(ENV_CACHE, "").strip().lower()
    if flag in _FALSY:
        return None
    if flag in _TRUTHY or os.environ.get(ENV_CACHE_DIR):
        return ResultCache(default_cache_dir())
    return None


@dataclass(frozen=True)
class CellSpec:
    """One named, independently-runnable cell of an experiment grid.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``kwargs`` must contain everything that determines the result —
    including the seed and work scale — since they form the cache key.
    """

    experiment: str
    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        return cell_key(self.experiment, self.fn, dict(self.kwargs))


def _invoke(payload: tuple[int, Callable, dict]) -> tuple[int, Any, float, float]:
    """Worker-side cell execution (top-level, hence picklable)."""
    index, fn, kwargs = payload
    started = time.time()
    value = fn(**kwargs)
    return index, value, started, time.time()


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelExecutor:
    """Runs cell grids across a process pool with result memoization."""

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else jobs_from_env())
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    def run_cells(self, specs: Iterable[CellSpec]) -> list[Any]:
        """Run every cell, in order; cached cells are not re-executed."""
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        keys: dict[int, str] = {}
        pending: list[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                key = keys[index] = spec.key()
                value = self.cache.get(key)
                if value is not MISS:
                    now = time.time()
                    results[index] = value
                    self.telemetry.record(
                        CellRecord(spec.experiment, spec.name, now, now, True)
                    )
                    continue
            pending.append(index)

        if pending:
            payloads = [
                (index, specs[index].fn, dict(specs[index].kwargs))
                for index in pending
            ]
            if self.jobs == 1 or len(pending) == 1:
                outcomes: Iterable = map(_invoke, payloads)
                self._collect(specs, keys, results, outcomes)
            else:
                workers = min(self.jobs, len(pending))
                with _pool_context().Pool(processes=workers) as pool:
                    self._collect(
                        specs, keys, results, pool.imap_unordered(_invoke, payloads)
                    )
        return results

    def run_cell(self, spec: CellSpec) -> Any:
        """Convenience wrapper for a single cell."""
        return self.run_cells([spec])[0]

    def _collect(
        self,
        specs: Sequence[CellSpec],
        keys: Mapping[int, str],
        results: list[Any],
        outcomes: Iterable[tuple[int, Any, float, float]],
    ) -> None:
        for index, value, started, finished in outcomes:
            spec = specs[index]
            results[index] = value
            if self.cache is not None:
                self.cache.put(keys[index], value)
            self.telemetry.record(
                CellRecord(spec.experiment, spec.name, started, finished, False)
            )


_DEFAULT: ParallelExecutor | None = None


def get_default_executor() -> ParallelExecutor:
    """The process-wide executor used when callers don't pass their own.

    Configured from the environment on first use; its telemetry
    aggregates across every experiment run in the process (the benchmark
    suite prints it at session end).
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ParallelExecutor(jobs=jobs_from_env(), cache=cache_from_env())
    return _DEFAULT
