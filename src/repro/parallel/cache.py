"""Content-addressed on-disk cache for experiment cells.

A *cell* is a pure function of its parameters: the simulator draws all
randomness from the explicit seed, so re-running a cell with the same
(experiment, function, parameters, code) always produces the same result
object.  That makes finished cells safe to memoize on disk: the cache key
is a SHA-256 over the experiment name, the fully-qualified cell function,
the canonicalized parameters (which include seed and work scale), and a
fingerprint of the ``repro`` source tree, so any code change invalidates
every prior entry.

Entries are pickles stored under a two-level fan-out
(``<root>/<key[:2]>/<key>.pkl``) and written atomically (temp file +
rename), so concurrent workers and concurrent runner invocations can
share one cache directory safely.

Each entry is a self-verifying container: a magic prefix, the SHA-256 of
the payload, then the pickled payload.  :meth:`ResultCache.get` verifies
the digest before unpickling; anything that fails — bad magic,
truncation, digest mismatch, unpicklable payload — is moved into
``<root>/quarantine/`` (preserved for forensics, never retried), logged
in :attr:`ResultCache.corruption_log`, and reported as a MISS so the
grid recomputes the cell instead of crashing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Iterator

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hash every ``.py`` file of the installed ``repro`` package.

    Computed once per process; any source change yields a new fingerprint
    and therefore a disjoint key space — stale results can never be
    served across code versions.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def canonical(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable, type-tagged form.

    Enums, dataclasses, and containers are tagged so that values of
    different types can never alias each other's encodings (e.g. the
    string ``"Xen/Linux"`` and ``Config.VANILLA`` stay distinct keys).
    """
    if isinstance(value, Enum):
        return ["enum", type(value).__name__, canonical(value.value)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            "dataclass",
            type(value).__name__,
            {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        ]
    if isinstance(value, dict):
        return {
            "dict": sorted(
                ([canonical(k), canonical(v)] for k, v in value.items()),
                key=lambda kv: json.dumps(kv[0], sort_keys=True),
            )
        }
    if isinstance(value, (list, tuple)):
        return [type(value).__name__, [canonical(v) for v in value]]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return ["int", str(value)]
    if isinstance(value, float):
        return ["float", value.hex()]
    return ["repr", type(value).__name__, repr(value)]


def cell_key(
    experiment: str,
    fn: Callable,
    params: dict,
    fingerprint: str | None = None,
) -> str:
    """Compute the content-addressed key of one experiment cell."""
    payload = {
        "experiment": experiment,
        "fn": f"{fn.__module__}:{fn.__qualname__}",
        "params": canonical(params),
        "code": code_fingerprint() if fingerprint is None else fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Container prefix identifying the self-verifying entry format.
MAGIC = b"reprocache2\n"
_DIGEST_LEN = hashlib.sha256().digest_size


class CorruptEntry(Exception):
    """Internal: an entry failed container validation (reason in args)."""


class ResultCache:
    """Pickle store addressed by :func:`cell_key` digests."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Keys whose entries were quarantined since the last drain.
        self.corruption_log: list[str] = []

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`.

        A corrupt or truncated entry is quarantined and treated as a
        miss — the caller recomputes; nothing raises.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return MISS
        try:
            return self._decode(data)
        except Exception:
            self._quarantine(key, path)
            return MISS

    @staticmethod
    def _decode(data: bytes) -> Any:
        if not data.startswith(MAGIC):
            raise CorruptEntry("bad magic")
        body = data[len(MAGIC):]
        if len(body) < _DIGEST_LEN:
            raise CorruptEntry("truncated header")
        digest, payload = body[:_DIGEST_LEN], body[_DIGEST_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            raise CorruptEntry("digest mismatch")
        return pickle.loads(payload)

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a bad entry aside (kept for forensics) and log the key."""
        target_dir = self.root / "quarantine"
        target_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, target_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        self.corruption_log.append(key)

    def drain_corruptions(self) -> list[str]:
        """Return and clear the keys quarantined since the last drain."""
        drained, self.corruption_log = self.corruption_log, []
        return drained

    def quarantined(self) -> list[Path]:
        return sorted((self.root / "quarantine").glob("*.pkl"))

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self) -> Iterator[Path]:
        yield from self.root.glob("??/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(
        self, max_entries: int | None = None, max_bytes: int | None = None
    ) -> int:
        """Evict oldest entries (by mtime) until within both limits.

        Returns the number of entries evicted.
        """
        stats = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, stat.st_size, path))
        stats.sort()  # oldest first
        count = len(stats)
        total = sum(size for _, size, _ in stats)
        evicted = 0
        for _, size, path in stats:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            count -= 1
            total -= size
            evicted += 1
        return evicted
