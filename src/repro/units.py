"""Time and resource units used throughout the simulation.

All simulated time is kept in **integer nanoseconds**.  Integer arithmetic
keeps the event queue deterministic: two runs with the same seed produce
bit-identical schedules, which the regression tests rely on.

The helpers here convert between human-friendly units and nanoseconds, and
format nanosecond quantities back for reports.
"""

from __future__ import annotations

#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * US)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MS)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SEC)


def to_usec(ns: int) -> float:
    """Convert nanoseconds to microseconds (float)."""
    return ns / US


def to_msec(ns: int) -> float:
    """Convert nanoseconds to milliseconds (float)."""
    return ns / MS


def to_sec(ns: int) -> float:
    """Convert nanoseconds to seconds (float)."""
    return ns / SEC


def fmt_ns(ns: int) -> str:
    """Render a nanosecond duration with an adaptive unit for reports."""
    if ns >= SEC:
        return f"{ns / SEC:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.3f}us"
    return f"{ns}ns"
