"""The fault injector: turns a :class:`FaultPlan` into runtime decisions.

One injector is installed per :class:`~repro.hypervisor.machine.Machine`
(``machine.install_faults(plan)``) and consulted from the fault sites:

* ``Machine.hyp_send_ipi`` — lost/delayed reschedule IPIs;
* ``VScaleChannel.read_info`` — failed or stale extendability reads;
* ``VScaleDaemon._behavior`` — wakeup jitter and multi-period stalls;
* ``VScaleBalancer.freeze/unfreeze`` — transient syscall failures;
* ``Dom0Toolstack.sample_read_all_ns`` — overload bursts.

Every site draws from its own named stream derived from the *plan* seed
(not the machine seed), so fault decisions never perturb the workload's
randomness and the same plan replays the same fault sequence exactly.
All decisions are made lazily at query time; a site whose rate is zero
performs no RNG draw at all.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.faults.plan import FaultEvent, FaultPlan
from repro.hypervisor.irq import IRQClass
from repro.recovery.stats import RecoveryStats
from repro.sim.rng import BufferedStream, SeedSequenceFactory


@dataclass
class FaultStats:
    """What the injector actually did, for reports and stability checks."""

    ipis_dropped: int = 0
    ipis_delayed: int = 0
    #: Delayed IPIs that found their target frozen on arrival and were
    #: discarded (delivering them would be a correctness bug).
    ipis_dropped_late: int = 0
    channel_failures: int = 0
    channel_stale_reads: int = 0
    daemon_jitters: int = 0
    daemon_stalls: int = 0
    freeze_failures: int = 0
    dom0_bursts: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.ipis_dropped
            + self.ipis_delayed
            + self.channel_failures
            + self.channel_stale_reads
            + self.daemon_jitters
            + self.daemon_stalls
            + self.freeze_failures
            + self.dom0_bursts
        )

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class _ScriptedState:
    """Mutable tracking of which scripted events already fired."""

    consumed: set = field(default_factory=set)


class FaultInjector:
    """Stateful decision oracle for one machine's fault plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.config = plan.config
        self.stats = FaultStats()
        self.recovery = RecoveryStats()
        self._seeds = SeedSequenceFactory(plan.seed)
        self._scripted = _ScriptedState()
        # Per-site buffered streams, cached so the hot decision paths skip
        # the factory's dict+format lookup on every query.
        self._hit_streams: dict[str, BufferedStream] = {}
        self._delay_streams: dict[str, BufferedStream] = {}
        # Balancer outage bookkeeping: end of the current stochastic
        # outage, plus which scripted outage windows already counted an
        # onset (windows span several polls but are one outage each).
        self._balancer_down_until = -1
        self._outage_onsets_seen: set[int] = set()

    # ------------------------------------------------------------------
    # Decision primitives
    # ------------------------------------------------------------------
    def _hit(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        stream = self._hit_streams.get(site)
        if stream is None:
            stream = self._seeds.stream(f"faults.{site}", "random")
            self._hit_streams[site] = stream
        return stream._next() < rate

    def _sample_delay(self, site: str, mean_ns: int) -> int:
        stream = self._delay_streams.get(site)
        if stream is None:
            stream = self._seeds.stream(f"faults.{site}", "exponential")
            self._delay_streams[site] = stream
        return max(1, round(mean_ns * stream._next()))

    def _take_scripted(self, site: str, window_start: int, window_end: int) -> FaultEvent | None:
        """Consume the first unfired scripted event of ``site`` whose start
        falls inside ``[window_start, window_end)``."""
        for index, event in enumerate(self.plan.events):
            if index in self._scripted.consumed or event.site != site:
                continue
            if window_start <= event.at_ns < window_end:
                self._scripted.consumed.add(index)
                return event
            if event.at_ns >= window_end:
                break
        return None

    def _active_window(self, site: str, now_ns: int) -> FaultEvent | None:
        """The scripted window of ``site`` covering ``now_ns``, if any."""
        for event in self.plan.events:
            if event.site != site:
                continue
            if event.at_ns <= now_ns < event.at_ns + max(1, event.duration_ns):
                return event
            if event.at_ns > now_ns:
                break
        return None

    # ------------------------------------------------------------------
    # Fault sites
    # ------------------------------------------------------------------
    def ipi_fault(self, irq_class: IRQClass) -> tuple[str, int] | None:
        """Decide the fate of one IPI send: None, ("drop", 0), ("delay", ns).

        Only reschedule IPIs are targeted — they ride Xen's event-channel
        upcall path, the lossy/delayable link; function-call IPIs are the
        rare shutdown path and are left alone.
        """
        if irq_class is not IRQClass.RESCHED_IPI:
            return None
        if self._hit("ipi.drop", self.config.ipi_drop_rate):
            self.stats.ipis_dropped += 1
            return ("drop", 0)
        if self._hit("ipi.delay", self.config.ipi_delay_rate):
            delay = self._sample_delay("ipi.delay_ns", self.config.ipi_delay_mean_ns)
            self.stats.ipis_delayed += 1
            return ("delay", delay)
        return None

    def note_late_drop(self) -> None:
        """A delayed IPI arrived at a frozen target and was discarded."""
        self.stats.ipis_dropped_late += 1

    def channel_fault(self) -> str | None:
        """Decide the fate of one channel read: None, "fail", or "stale"."""
        if self._hit("channel.fail", self.config.channel_fail_rate):
            self.stats.channel_failures += 1
            return "fail"
        if self._hit("channel.stale", self.config.channel_stale_rate):
            self.stats.channel_stale_reads += 1
            return "stale"
        return None

    def daemon_delay_ns(self, now_ns: int, period_ns: int) -> int:
        """Extra delay to add to the daemon's next wakeup timer."""
        extra = 0
        scripted = self._take_scripted("daemon_stall", now_ns, now_ns + period_ns)
        if scripted is not None:
            periods = max(1.0, scripted.magnitude)
            extra += scripted.duration_ns or round(periods * period_ns)
            self.stats.daemon_stalls += 1
        if self._hit("daemon.stall", self.config.daemon_stall_rate):
            extra += self.config.daemon_stall_periods * period_ns
            self.stats.daemon_stalls += 1
        elif self._hit("daemon.jitter", self.config.daemon_jitter_rate):
            extra += self._sample_delay(
                "daemon.jitter_ns", self.config.daemon_jitter_mean_ns
            )
            self.stats.daemon_jitters += 1
        return extra

    def freeze_fault(self) -> bool:
        """Whether one freeze/unfreeze syscall fails transiently."""
        if self._hit("freeze.fail", self.config.freeze_fail_rate):
            self.stats.freeze_failures += 1
            return True
        return False

    def dom0_factor(self, now_ns: int | None = None) -> float:
        """Latency multiplier for one dom0/libxl sweep (1.0 = no burst)."""
        if now_ns is not None:
            scripted = self._take_scripted("dom0_burst", now_ns, now_ns + 1)
            if scripted is not None:
                self.stats.dom0_bursts += 1
                return max(1.0, scripted.magnitude)
        if self._hit("dom0.burst", self.config.dom0_burst_rate):
            self.stats.dom0_bursts += 1
            return self.config.dom0_burst_factor
        return 1.0

    # ------------------------------------------------------------------
    # Crash-stop sites (recovery protocols live in repro.recovery and the
    # daemon/balancer control loops; the injector only decides *when*).
    # ------------------------------------------------------------------
    def daemon_crash(self, now_ns: int, period_ns: int) -> int | None:
        """Whether the daemon crash-stops during the period starting now.

        Returns the restart delay in ns (how long the process stays
        down) when a crash fires, else None.  Scripted ``daemon_crash``
        events use their ``duration_ns`` as the restart delay when set.

        The window reaches back to t=0: successive daemon polls are
        spaced ``period + work_time`` apart, so a forward-only window
        would leave gaps that silently swallow a scripted crash.  A
        crash-stop is not a transient — a past-due event fires at the
        next poll instead of being lost.
        """
        scripted = self._take_scripted("daemon_crash", 0, now_ns + period_ns)
        if scripted is not None:
            self.recovery.daemon_crashes += 1
            return scripted.duration_ns or self.config.daemon_restart_delay_ns
        if self._hit("daemon.crash", self.config.daemon_crash_rate):
            self.recovery.daemon_crashes += 1
            return self.config.daemon_restart_delay_ns
        return None

    def balancer_outage(self, now_ns: int, period_ns: int) -> bool:
        """Whether dom0's balancer is unresponsive at this poll."""
        for index, event in enumerate(self.plan.events):
            if event.site != "balancer_outage":
                continue
            if event.at_ns > now_ns:
                break
            if now_ns < event.at_ns + max(1, event.duration_ns):
                if index not in self._outage_onsets_seen:
                    self._outage_onsets_seen.add(index)
                    self.recovery.balancer_outages += 1
                return True
        if now_ns < self._balancer_down_until:
            return True
        if self._hit("balancer.outage", self.config.balancer_outage_rate):
            self.recovery.balancer_outages += 1
            self._balancer_down_until = (
                now_ns + self.config.balancer_outage_periods * period_ns
            )
            return True
        return False

    def hang_schedule(self) -> list[tuple[int, int]]:
        """Scripted vCPU hang onsets as ``(at_ns, vcpu_index)`` pairs.

        ``magnitude`` carries the target vCPU index; the watchdog
        schedules the onsets eagerly at install time, so unlike the
        window sites nothing is consumed lazily here.
        """
        return [
            (event.at_ns, int(event.magnitude))
            for event in self.plan.events
            if event.site == "vcpu_hang"
        ]
