"""Deterministic fault plans.

A :class:`FaultPlan` is the complete, seedable description of what can go
wrong during a run: per-site stochastic fault *rates* (each fault site
draws from its own named RNG stream derived from the plan seed) plus an
optional list of *scripted* :class:`FaultEvent` windows for scenarios
that need faults at exact instants.  Because the simulation itself is
deterministic, the same plan against the same scenario produces the same
fault sequence — and therefore the same traces and reports — bit for
bit, which is what keeps the fault experiments cacheable and the
determinism tests meaningful.

Plans are plain frozen dataclasses so they canonicalize cleanly into the
parallel executor's cache keys.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace

from repro.units import MS, US

_RATE_FIELDS = (
    "ipi_drop_rate",
    "ipi_delay_rate",
    "channel_fail_rate",
    "channel_stale_rate",
    "daemon_jitter_rate",
    "daemon_stall_rate",
    "freeze_fail_rate",
    "dom0_burst_rate",
    "daemon_crash_rate",
    "balancer_outage_rate",
)

#: Valid ``FaultEvent.site`` names.  The transient sites arrived with the
#: original fault model; the crash-stop sites (``daemon_crash``,
#: ``vcpu_hang``, ``balancer_outage``) model process-level failures that
#: need an explicit recovery protocol rather than in-place retry.
SCRIPTED_SITES = (
    "daemon_stall",
    "dom0_burst",
    "daemon_crash",
    "vcpu_hang",
    "balancer_outage",
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-site stochastic fault rates and magnitudes.

    All rates are per-opportunity probabilities in ``[0, 1]`` — e.g.
    ``ipi_drop_rate`` applies to every reschedule IPI send, and
    ``channel_fail_rate`` to every channel read.  The zero config (the
    default) injects nothing and changes nothing.
    """

    #: Probability a reschedule IPI is lost entirely (guest-visible
    #: interrupt dropped; the hypervisor-side wake of a blocked target
    #: still happens, matching Xen's evtchn pending-bit semantics).
    ipi_drop_rate: float = 0.0
    #: Probability a reschedule IPI is delayed instead of delivered.
    ipi_delay_rate: float = 0.0
    #: Mean of the (exponential) injected IPI delay.
    ipi_delay_mean_ns: int = 200 * US
    #: Probability one channel read fails with :class:`ChannelReadError`.
    channel_fail_rate: float = 0.0
    #: Probability one channel read returns stale extendability data.
    channel_stale_rate: float = 0.0
    #: Probability a daemon wakeup is jittered late.
    daemon_jitter_rate: float = 0.0
    #: Mean of the (exponential) injected wakeup jitter.
    daemon_jitter_mean_ns: int = 2 * MS
    #: Probability a daemon wakeup stalls for multiple whole periods.
    daemon_stall_rate: float = 0.0
    #: Length of an injected stall, in polling periods.
    daemon_stall_periods: int = 4
    #: Probability a freeze/unfreeze syscall fails transiently.
    freeze_fail_rate: float = 0.0
    #: Probability one dom0/libxl sweep lands in an overload burst.
    dom0_burst_rate: float = 0.0
    #: Latency multiplier applied to a bursting dom0 sweep.
    dom0_burst_factor: float = 8.0
    #: Probability one daemon wakeup crashes the daemon process instead
    #: of completing (crash-stop: all volatile control state is lost and
    #: must be rebuilt from durable xenstore state on restart).
    daemon_crash_rate: float = 0.0
    #: How long a crashed daemon stays down before its restart path runs.
    daemon_restart_delay_ns: int = 20 * MS
    #: Probability one balancer poll finds dom0's balancer unresponsive.
    balancer_outage_rate: float = 0.0
    #: Length of a stochastic balancer outage, in polling periods.
    balancer_outage_periods: int = 2

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.ipi_delay_mean_ns <= 0:
            raise ValueError("ipi_delay_mean_ns must be positive")
        if self.daemon_jitter_mean_ns <= 0:
            raise ValueError("daemon_jitter_mean_ns must be positive")
        if self.daemon_stall_periods < 1:
            raise ValueError("daemon_stall_periods must be at least 1")
        if self.dom0_burst_factor < 1.0:
            raise ValueError("dom0_burst_factor must be at least 1.0")
        if self.daemon_restart_delay_ns <= 0:
            raise ValueError("daemon_restart_delay_ns must be positive")
        if self.balancer_outage_periods < 1:
            raise ValueError("balancer_outage_periods must be at least 1")

    @property
    def any_enabled(self) -> bool:
        """True when at least one fault site has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def scaled(cls, rate: float, **overrides) -> "FaultConfig":
        """The uniform profile used by the fault-matrix experiment.

        One knob drives every site: per-event sites take ``rate``
        directly, while the heavy whole-period faults (IPI loss, daemon
        stalls) are derated so a 10% matrix point stresses the loop
        without starving it outright.  Crash-stop sites (daemon crash,
        balancer outage) stay at zero — they belong to the chaos
        profiles, and enabling them here would shift the pinned
        fault-matrix goldens.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        base = dict(
            ipi_drop_rate=rate * 0.5,
            ipi_delay_rate=rate,
            channel_fail_rate=rate,
            channel_stale_rate=rate,
            daemon_jitter_rate=rate,
            daemon_stall_rate=rate * 0.25,
            freeze_fail_rate=rate,
            dom0_burst_rate=rate,
        )
        base.update(overrides)
        return cls(**base)

    def describe(self) -> str:
        """Short ``site=rate`` summary of the enabled sites."""
        parts = [
            f"{name.removesuffix('_rate')}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return ", ".join(parts) if parts else "no faults"


@dataclass(frozen=True)
class FaultEvent:
    """A scripted fault window, for scenarios that need exact timing.

    Scripted events complement the stochastic rates: ``site`` names the
    injection point (one of :data:`SCRIPTED_SITES`), ``at_ns`` when the
    window opens, ``duration_ns`` how long it lasts, and ``magnitude`` a
    site-specific strength (stall length in periods, burst latency
    factor, hung vCPU index for ``vcpu_hang``).  Each event fires at
    most once, except ``vcpu_hang`` onsets which are scheduled eagerly.
    """

    at_ns: int
    site: str
    duration_ns: int = 0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError("at_ns cannot be negative")
        if self.duration_ns < 0:
            raise ValueError("duration_ns cannot be negative")
        if self.site not in SCRIPTED_SITES:
            raise ValueError(f"unknown scripted fault site {self.site!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault schedule: stochastic rates + scripted events."""

    config: FaultConfig = FaultConfig()
    seed: int = 0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalize (sort by time) so equal plans hash/canonicalize equally.
        ordered = tuple(sorted(self.events, key=lambda e: (e.at_ns, e.site)))
        object.__setattr__(self, "events", ordered)

    @property
    def active(self) -> bool:
        """True when the plan can inject anything at all."""
        return self.config.any_enabled or bool(self.events)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # JSON round-trip — chaos schedules must be saveable for replay and
    # bug reports, so a plan serializes to stable, sorted-key JSON and
    # deserializes to an equal plan (events re-sort canonically).
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "config": asdict(self.config),
            "seed": self.seed,
            "events": [asdict(event) for event in self.events],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("fault plan JSON must be an object")
        if set(payload) != {"config", "seed", "events"}:
            raise ValueError(
                "fault plan JSON must have exactly the keys "
                f"config/seed/events, got {sorted(payload)}"
            )
        known = {f.name for f in fields(FaultConfig)}
        raw_config = payload.get("config", {})
        if not isinstance(raw_config, dict):
            raise ValueError("fault plan 'config' must be an object")
        unknown = sorted(set(raw_config) - known)
        if unknown:
            raise ValueError(f"unknown fault config fields: {unknown}")
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, list):
            raise ValueError("fault plan 'events' must be a list")
        event_fields = {f.name for f in fields(FaultEvent)}
        events = []
        for raw in raw_events:
            if not isinstance(raw, dict) or not set(raw) <= event_fields:
                raise ValueError(f"malformed fault event entry: {raw!r}")
            try:
                events.append(FaultEvent(**raw))
            except TypeError as exc:
                raise ValueError(f"malformed fault event entry: {raw!r}") from exc
        try:
            config = FaultConfig(**raw_config)
        except TypeError as exc:
            raise ValueError(f"malformed fault config: {exc}") from exc
        return cls(
            config=config,
            seed=int(payload.get("seed", 0)),
            events=tuple(events),
        )


#: Convenience: the plan that injects nothing.
NO_FAULTS = FaultPlan()


def _field_names() -> list[str]:  # pragma: no cover - debugging aid
    return [f.name for f in fields(FaultConfig)]
