"""Deterministic fault plans.

A :class:`FaultPlan` is the complete, seedable description of what can go
wrong during a run: per-site stochastic fault *rates* (each fault site
draws from its own named RNG stream derived from the plan seed) plus an
optional list of *scripted* :class:`FaultEvent` windows for scenarios
that need faults at exact instants.  Because the simulation itself is
deterministic, the same plan against the same scenario produces the same
fault sequence — and therefore the same traces and reports — bit for
bit, which is what keeps the fault experiments cacheable and the
determinism tests meaningful.

Plans are plain frozen dataclasses so they canonicalize cleanly into the
parallel executor's cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.units import MS, US

_RATE_FIELDS = (
    "ipi_drop_rate",
    "ipi_delay_rate",
    "channel_fail_rate",
    "channel_stale_rate",
    "daemon_jitter_rate",
    "daemon_stall_rate",
    "freeze_fail_rate",
    "dom0_burst_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-site stochastic fault rates and magnitudes.

    All rates are per-opportunity probabilities in ``[0, 1]`` — e.g.
    ``ipi_drop_rate`` applies to every reschedule IPI send, and
    ``channel_fail_rate`` to every channel read.  The zero config (the
    default) injects nothing and changes nothing.
    """

    #: Probability a reschedule IPI is lost entirely (guest-visible
    #: interrupt dropped; the hypervisor-side wake of a blocked target
    #: still happens, matching Xen's evtchn pending-bit semantics).
    ipi_drop_rate: float = 0.0
    #: Probability a reschedule IPI is delayed instead of delivered.
    ipi_delay_rate: float = 0.0
    #: Mean of the (exponential) injected IPI delay.
    ipi_delay_mean_ns: int = 200 * US
    #: Probability one channel read fails with :class:`ChannelReadError`.
    channel_fail_rate: float = 0.0
    #: Probability one channel read returns stale extendability data.
    channel_stale_rate: float = 0.0
    #: Probability a daemon wakeup is jittered late.
    daemon_jitter_rate: float = 0.0
    #: Mean of the (exponential) injected wakeup jitter.
    daemon_jitter_mean_ns: int = 2 * MS
    #: Probability a daemon wakeup stalls for multiple whole periods.
    daemon_stall_rate: float = 0.0
    #: Length of an injected stall, in polling periods.
    daemon_stall_periods: int = 4
    #: Probability a freeze/unfreeze syscall fails transiently.
    freeze_fail_rate: float = 0.0
    #: Probability one dom0/libxl sweep lands in an overload burst.
    dom0_burst_rate: float = 0.0
    #: Latency multiplier applied to a bursting dom0 sweep.
    dom0_burst_factor: float = 8.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.ipi_delay_mean_ns <= 0:
            raise ValueError("ipi_delay_mean_ns must be positive")
        if self.daemon_jitter_mean_ns <= 0:
            raise ValueError("daemon_jitter_mean_ns must be positive")
        if self.daemon_stall_periods < 1:
            raise ValueError("daemon_stall_periods must be at least 1")
        if self.dom0_burst_factor < 1.0:
            raise ValueError("dom0_burst_factor must be at least 1.0")

    @property
    def any_enabled(self) -> bool:
        """True when at least one fault site has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def scaled(cls, rate: float, **overrides) -> "FaultConfig":
        """The uniform profile used by the fault-matrix experiment.

        One knob drives every site: per-event sites take ``rate``
        directly, while the heavy whole-period faults (IPI loss, daemon
        stalls) are derated so a 10% matrix point stresses the loop
        without starving it outright.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        base = dict(
            ipi_drop_rate=rate * 0.5,
            ipi_delay_rate=rate,
            channel_fail_rate=rate,
            channel_stale_rate=rate,
            daemon_jitter_rate=rate,
            daemon_stall_rate=rate * 0.25,
            freeze_fail_rate=rate,
            dom0_burst_rate=rate,
        )
        base.update(overrides)
        return cls(**base)

    def describe(self) -> str:
        """Short ``site=rate`` summary of the enabled sites."""
        parts = [
            f"{name.removesuffix('_rate')}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return ", ".join(parts) if parts else "no faults"


@dataclass(frozen=True)
class FaultEvent:
    """A scripted fault window, for scenarios that need exact timing.

    Scripted events complement the stochastic rates: ``site`` names the
    injection point (currently ``"daemon_stall"`` and ``"dom0_burst"``),
    ``at_ns`` when the window opens, ``duration_ns`` how long it lasts,
    and ``magnitude`` a site-specific strength (stall length in periods,
    burst latency factor).  Each event fires at most once.
    """

    at_ns: int
    site: str
    duration_ns: int = 0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError("at_ns cannot be negative")
        if self.duration_ns < 0:
            raise ValueError("duration_ns cannot be negative")
        if self.site not in ("daemon_stall", "dom0_burst"):
            raise ValueError(f"unknown scripted fault site {self.site!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault schedule: stochastic rates + scripted events."""

    config: FaultConfig = FaultConfig()
    seed: int = 0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalize (sort by time) so equal plans hash/canonicalize equally.
        ordered = tuple(sorted(self.events, key=lambda e: (e.at_ns, e.site)))
        object.__setattr__(self, "events", ordered)

    @property
    def active(self) -> bool:
        """True when the plan can inject anything at all."""
        return self.config.any_enabled or bool(self.events)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


#: Convenience: the plan that injects nothing.
NO_FAULTS = FaultPlan()


def _field_names() -> list[str]:  # pragma: no cover - debugging aid
    return [f.name for f in fields(FaultConfig)]
