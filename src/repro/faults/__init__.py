"""Deterministic fault injection for the vScale reproduction.

See DESIGN.md ("Fault model and graceful degradation") for the contract:
with no plan installed the simulation is bit-for-bit identical to a
build without this package; with a plan, every fault decision derives
from the plan seed and the same run replays exactly.
"""

from repro.faults.chaos import generate_plan
from repro.faults.errors import ChannelReadError, FaultError, FreezeFailure
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    NO_FAULTS,
    SCRIPTED_SITES,
    FaultConfig,
    FaultEvent,
    FaultPlan,
)
from repro.recovery.stats import RecoveryStats

__all__ = [
    "ChannelReadError",
    "FaultError",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FreezeFailure",
    "NO_FAULTS",
    "RecoveryStats",
    "SCRIPTED_SITES",
    "generate_plan",
]
