"""Seeded chaos schedules: randomized crash-stop fault plans.

``generate_plan`` turns one integer seed into a reproducible
:class:`~repro.faults.plan.FaultPlan` of scripted crash-stop events —
daemon crashes, vCPU hangs, balancer outages — spread over the middle of
a run (the first/last 10% are left quiet so warmup and teardown are
always clean).  The same ``(seed, knobs)`` pair always yields the same
plan, and the plan round-trips through JSON for replay and bug reports.

This module only *builds* plans; the chaos harness that drives them is
``scripts/chaos.py`` and the ``chaos`` runner experiment.
"""

from __future__ import annotations

from repro.faults.plan import FaultConfig, FaultEvent, FaultPlan
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS


def _spread(stream, count: int, duration_ns: int) -> list[int]:
    """``count`` event instants in the middle 80% of the run, sorted."""
    lo = duration_ns // 10
    span = duration_ns - 2 * lo
    times = [lo + round(stream._next() * span) for _ in range(count)]
    return sorted(times)


def generate_plan(
    seed: int,
    duration_ns: int,
    *,
    daemon_crashes: int = 0,
    vcpu_hangs: int = 0,
    balancer_outages: int = 0,
    base_rate: float = 0.0,
    vcpus: int = 4,
    outage_duration_ns: int = 250 * MS,
    restart_delay_ns: int = 0,
) -> FaultPlan:
    """Build a seeded randomized crash schedule.

    ``base_rate`` optionally layers the transient-fault profile
    (:meth:`FaultConfig.scaled`) underneath the scripted crash events;
    crash-stop *rates* stay zero so every crash in the plan is scripted
    and therefore visible in the serialized schedule.  ``restart_delay_ns``
    (0 = config default) sets how long crashed daemons stay down.
    """
    if duration_ns <= 0:
        raise ValueError("duration_ns must be positive")
    if vcpus < 2 and vcpu_hangs > 0:
        raise ValueError("vcpu hangs need at least 2 vCPUs (vCPU0 is exempt)")
    seeds = SeedSequenceFactory(seed)
    times = seeds.stream("chaos.times", "random")
    targets = seeds.stream("chaos.targets", "random")

    events: list[FaultEvent] = []
    for at_ns in _spread(times, daemon_crashes, duration_ns):
        events.append(
            FaultEvent(
                at_ns=at_ns,
                site="daemon_crash",
                duration_ns=restart_delay_ns,
            )
        )
    for at_ns in _spread(times, vcpu_hangs, duration_ns):
        # vCPU0 hosts the daemon and the watchdog; hang the others.
        index = 1 + int(targets._next() * (vcpus - 1)) if vcpus > 1 else 1
        index = min(index, vcpus - 1)
        events.append(
            FaultEvent(at_ns=at_ns, site="vcpu_hang", magnitude=float(index))
        )
    for at_ns in _spread(times, balancer_outages, duration_ns):
        events.append(
            FaultEvent(
                at_ns=at_ns,
                site="balancer_outage",
                duration_ns=outage_duration_ns,
            )
        )

    config = FaultConfig.scaled(base_rate) if base_rate > 0.0 else FaultConfig()
    return FaultPlan(config=config, seed=seed, events=tuple(events))
