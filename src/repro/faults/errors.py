"""Failure types raised by fault-injected components.

These exceptions only ever fire when a :class:`~repro.faults.injector.
FaultInjector` is installed on the machine: the happy path never pays for
them.  They carry the simulated cost of the failed operation so callers
can charge the wasted time before retrying or degrading.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for injected transient failures."""


class ChannelReadError(FaultError):
    """A ``sys_getvscaleinfo`` call failed (injected transient error).

    Models an -EAGAIN from the syscall/hypercall pair: the caller spent
    ``cost_ns`` of CPU and got nothing back.
    """

    def __init__(self, domain: str, cost_ns: int):
        super().__init__(f"vScale channel read failed for {domain}")
        self.domain = domain
        self.cost_ns = cost_ns


class FreezeFailure(FaultError):
    """A ``sys_freezecpu``/``sys_unfreezecpu`` call failed transiently.

    The master-side cost was already charged to vCPU0 (the syscall ran and
    failed); no guest or hypervisor state changed.
    """

    def __init__(self, op: str, vcpu: int, cost_ns: int):
        super().__init__(f"{op} of vCPU {vcpu} failed transiently")
        self.op = op
        self.vcpu = vcpu
        self.cost_ns = cost_ns
