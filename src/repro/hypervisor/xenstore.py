"""XenStore: the hierarchical control-plane store between dom0 and guests.

Xen's toolstack drives guests through XenStore — a small key/value tree
with *watches*: dom0 writes ``/local/domain/<id>/cpu/<n>/availability`` and
the guest's XenBus driver, watching that subtree, invokes its callback
(which then runs CPU hotplug).  The paper's VCPU-Bal baseline uses exactly
this path, and its latency (a dom0 round trip plus the watch upcall) is
part of why centralized scaling is slow.

The model keeps the store as a real tree with watch registration and
fires watch callbacks after a configurable round-trip latency on the
simulator clock.  :class:`repro.core.baselines.VCPUBalManager` writes the
availability keys through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.units import US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine

#: Measured-scale cost of one XenStore transaction (socket + daemon walk).
DEFAULT_WRITE_LATENCY_NS = 120 * US
#: Additional delay before a watching domain's callback fires (XenBus
#: event-channel upcall plus the watch thread scheduling in the guest).
DEFAULT_WATCH_LATENCY_NS = 180 * US


class XenStoreError(KeyError):
    """Raised for reads of paths that do not exist."""


@dataclass
class _Watch:
    path_prefix: str
    callback: Callable[[str, str], None]
    token: int


class XenStore:
    """The store shared by dom0 and all guests of one machine."""

    def __init__(
        self,
        machine: "Machine",
        write_latency_ns: int = DEFAULT_WRITE_LATENCY_NS,
        watch_latency_ns: int = DEFAULT_WATCH_LATENCY_NS,
    ):
        self.machine = machine
        self.write_latency_ns = write_latency_ns
        self.watch_latency_ns = watch_latency_ns
        self._tree: dict[str, str] = {}
        self._watches: list[_Watch] = []
        self._next_token = 1
        self.writes = 0
        self.watch_fires = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise ValueError(f"XenStore paths are absolute: {path!r}")
        return path.rstrip("/") or "/"

    # ------------------------------------------------------------------
    def read(self, path: str) -> str:
        path = self._normalize(path)
        try:
            return self._tree[path]
        except KeyError:
            raise XenStoreError(path) from None

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._tree

    def ls(self, path: str) -> list[str]:
        """Immediate child names under ``path``."""
        prefix = self._normalize(path)
        if prefix != "/":
            prefix += "/"
        children = set()
        for key in self._tree:
            if key.startswith(prefix):
                children.add(key[len(prefix):].split("/", 1)[0])
        return sorted(children)

    def write(self, path: str, value: str) -> None:
        """Write a key; watches fire after the modeled latencies.

        The write itself lands after ``write_latency_ns`` (the caller's
        transaction round trip); each watch callback fires
        ``watch_latency_ns`` after that.
        """
        path = self._normalize(path)
        self.writes += 1
        self.machine.sim.schedule(
            self.write_latency_ns, self._commit, path, str(value)
        )

    def _commit(self, path: str, value: str) -> None:
        self._tree[path] = value
        for watch in list(self._watches):
            if path == watch.path_prefix or path.startswith(watch.path_prefix + "/"):
                self.machine.sim.schedule(
                    self.watch_latency_ns, self._fire, watch, path, value
                )

    def _fire(self, watch: _Watch, path: str, value: str) -> None:
        if watch not in self._watches:
            return  # unregistered while the upcall was in flight
        self.watch_fires += 1
        watch.callback(path, value)

    def rm(self, path: str) -> None:
        """Remove a key and its whole subtree (no watch fire, like xs rm)."""
        prefix = self._normalize(path)
        doomed = [
            key
            for key in self._tree
            if key == prefix or key.startswith(prefix + "/")
        ]
        for key in doomed:
            del self._tree[key]

    # ------------------------------------------------------------------
    def watch(self, path_prefix: str, callback: Callable[[str, str], None]) -> int:
        """Register a watch on a subtree; returns a token for unwatch."""
        watch = _Watch(self._normalize(path_prefix), callback, self._next_token)
        self._next_token += 1
        self._watches.append(watch)
        return watch.token

    def unwatch(self, token: int) -> None:
        self._watches = [w for w in self._watches if w.token != token]


def availability_path(domain_name: str, vcpu_index: int) -> str:
    """The conventional per-vCPU availability key."""
    return f"/local/domain/{domain_name}/cpu/{vcpu_index}/availability"
