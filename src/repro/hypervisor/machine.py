"""The physical host: pCPUs, the CPU pool, and the hypercall surface.

The :class:`Machine` owns the simulator clock, the pool scheduler (chosen
from the registry in :mod:`repro.hypervisor.schedulers`) and all domains.  Guests interact with it exclusively through hypercall-style
methods (``hyp_*``); devices post work through event channels; the vScale
hypervisor extension (see :mod:`repro.core.extendability`) hooks in through
:attr:`Machine.vscale`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import Domain, VCPU, VCPUState
from repro.hypervisor.schedulers import create as create_scheduler
from repro.hypervisor.irq import IRQ, IRQClass
from repro.hypervisor.xenstore import XenStore
from repro.sim.engine import Event, Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.extendability import VScaleExtension
    from repro.faults import FaultInjector, FaultPlan
    from repro.recovery.checkpoint import Checkpoint
    from repro.sanitize import Sanitizer


class PCPU:
    """A physical CPU in the guest pool."""

    __slots__ = (
        "machine",
        "index",
        "current",
        "_slice_event",
        "idle_ns",
        "_idle_since",
    )

    def __init__(self, machine: "Machine", index: int):
        self.machine = machine
        self.index = index
        self.current: VCPU | None = None
        self._slice_event: Event | None = None
        #: Cumulative idle time, for pool-slack sanity checks.
        self.idle_ns = 0
        self._idle_since: int | None = 0

    @property
    def name(self) -> str:
        return f"pcpu{self.index}"

    def set_current(self, vcpu: VCPU, now: int) -> None:
        if self._idle_since is not None:
            self.idle_ns += now - self._idle_since
            self._idle_since = None
        self.current = vcpu

    def clear_current(self, now: int) -> None:
        self.current = None
        self._idle_since = now
        self.cancel_slice()

    def set_idle(self, now: int) -> None:
        if self.current is None and self._idle_since is None:
            self._idle_since = now

    def flush_idle(self, now: int) -> int:
        """Fold any open idle interval into the total and return it."""
        if self._idle_since is not None:
            self.idle_ns += now - self._idle_since
            self._idle_since = now
        return self.idle_ns

    def arm_slice(self, timeslice_ns: int) -> None:
        self.cancel_slice()
        self._slice_event = self.machine.sim.schedule(
            timeslice_ns, self.machine.slice_expired, self
        )

    def cancel_slice(self) -> None:
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.current.name if self.current else "idle"
        return f"<PCPU {self.index}: {running}>"


class Machine:
    """The simulated host."""

    def __init__(
        self,
        config: HostConfig | None = None,
        sim: Simulator | None = None,
        seed: int = 1,
        tracer: Tracer | None = None,
    ):
        self.config = config or HostConfig()
        self.sim = sim or Simulator()
        self.seed = seed
        self.seeds = SeedSequenceFactory(seed)
        #: Structured trace sink (xentrace-style).  Off by default; pass a
        #: Tracer with enabled categories to record scheduling decisions,
        #: interrupt delivery and vScale reconfigurations.
        self.tracer = tracer or NULL_TRACER
        self.pool = [PCPU(self, i) for i in range(self.config.pcpus)]
        self.domains: list[Domain] = []
        #: The host's xenstore instance — the durable state substrate the
        #: recovery protocols (daemon restart, balancer re-sync) read back.
        #: Construction schedules nothing, so it is bit-identity safe.
        self.xenstore = XenStore(self)
        # Registry lookup: an explicit config name wins, then the
        # REPRO_SCHEDULER environment variable, then the credit default.
        self.scheduler = create_scheduler(self.config.scheduler, self)
        #: Optional vScale scheduler extension (set by install_vscale()).
        self.vscale: "VScaleExtension | None" = None
        #: Optional fault injector (set by install_faults()).  Every fault
        #: site checks this for None first, so the happy path costs one
        #: attribute load and nothing else.
        self.faults: "FaultInjector | None" = None
        #: Optional invariant checker (set by install_sanitizer(), or
        #: automatically when REPRO_SANITIZE=1).  Same None-check contract
        #: as self.faults at every hook site.
        self.sanitizer: "Sanitizer | None" = None
        # Insertion-ordered (dict, not set): iteration order must be
        # deterministic across runs for reproducibility.
        self._resched_pending: dict[PCPU, None] = {}
        self._started = False
        #: Observers notified on every vCPU context switch, used by traces.
        self.context_listeners: list[Callable[[VCPU, bool], None]] = []
        # Opt-in binary trace streaming: REPRO_TRACE=path (or an active
        # capture_to block) attaches a streaming tracer to every machine
        # built.  Must run before the sanitizer hook below, which keeps an
        # already-installed tracer instead of swapping in its own.
        # Imported here to avoid a module cycle.
        from repro.tracelog.capture import maybe_install as tracelog_install

        tracelog_install(self)
        # Opt-in invariant checking: REPRO_SANITIZE=1 makes every machine
        # (including ones built inside experiment worker processes)
        # self-install a sanitizer.  Imported here to avoid a module cycle.
        from repro.sanitize import enabled as sanitize_enabled

        if sanitize_enabled():
            self.install_sanitizer()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def create_domain(
        self,
        name: str,
        vcpus: int,
        weight: int = 256,
        cap: float | None = None,
        reservation: float = 0.0,
    ) -> Domain:
        if self._started:
            raise RuntimeError("domains must be created before start()")
        if any(d.name == name for d in self.domains):
            raise ValueError(f"duplicate domain name {name!r}")
        domain = Domain(self, name, vcpus, weight=weight, cap=cap, reservation=reservation)
        self.domains.append(domain)
        return domain

    def install_vscale(self) -> "VScaleExtension":
        """Install the vScale scheduler extension (extendability ticker)."""
        from repro.core.extendability import VScaleExtension

        if self.vscale is None:
            self.vscale = VScaleExtension(self)
        return self.vscale

    def install_faults(self, plan: "FaultPlan") -> "FaultInjector":
        """Install a fault injector driven by *plan*.

        The injector draws from streams derived from the plan's own seed,
        so the workload's RNG streams are untouched and a zero-rate plan
        leaves the run bit-for-bit identical to no plan at all.
        """
        from repro.faults import FaultInjector

        self.faults = FaultInjector(plan)
        return self.faults

    def install_tracer(
        self,
        sink: Callable[..., None] | None = None,
        categories: "frozenset[str] | set[str] | None" = None,
    ) -> Tracer:
        """Install (or extend) a recording tracer on this machine.

        With no arguments this turns on every category except the
        "dispatch" firehose, buffered in a small ring — the streaming
        *sink* (a :class:`repro.tracelog.codec.TraceWriter`) is what
        persists the full event sequence, so the in-memory ring only
        needs to serve post-mortem tails.  Requesting "dispatch" also
        wires the simulator's per-event ``dispatch_trace`` hook.
        """
        if categories is None:
            categories = Tracer.KNOWN_CATEGORIES - {"dispatch"}
        if self.tracer is NULL_TRACER:
            self.tracer = Tracer(categories, capacity=2048, ring=True)
        else:
            for category in categories:
                self.tracer.enable(category)
        if sink is not None:
            self.tracer.sinks.append(sink)
        if "dispatch" in categories and self.sim.dispatch_trace is None:
            self.sim.dispatch_trace = self._trace_dispatch
        return self.tracer

    def _trace_dispatch(self, sim: Simulator, event: Event) -> None:
        """``sim.dispatch_trace`` hook: one record per event dispatch."""
        fn = event.fn
        module = getattr(fn, "__module__", "") or ""
        qualname = getattr(fn, "__qualname__", None) or type(fn).__name__
        self.tracer.emit(
            event.time, "dispatch", "fire", f"{module}.{qualname}", seq=event.seq
        )

    def install_sanitizer(self) -> "Sanitizer":
        """Install the cross-layer invariant checker (see repro.sanitize)."""
        from repro.sanitize import Sanitizer

        if self.sanitizer is None:
            Sanitizer(self).install()
        assert self.sanitizer is not None
        return self.sanitizer

    def start(self) -> None:
        """Arm the scheduler and boot every domain's vCPU0.

        Guests must already be attached.  vCPU0 of each domain is woken
        (guests bring up their own work from there); secondary vCPUs wake
        when the guest gives them work.
        """
        if self._started:
            raise RuntimeError("machine already started")
        for domain in self.domains:
            if domain.guest is None:
                raise RuntimeError(f"domain {domain.name} has no guest attached")
        self._started = True
        self.scheduler.start()
        if self.vscale is not None:
            self.vscale.start()
        # Boot every vCPU; guests park the ones with nothing to do at once.
        for domain in self.domains:
            for vcpu in domain.vcpus:
                if vcpu.state is VCPUState.BLOCKED:
                    self.scheduler.vcpu_wake(vcpu)
        self._drain_resched()

    @property
    def started(self) -> bool:
        return self._started

    def run(self, until: int) -> None:
        """Convenience wrapper around the simulator."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Deferred rescheduling
    # ------------------------------------------------------------------
    # All scheduler invocations are funnelled through zero-delay events so
    # that guest upcalls (vcpu_started/vcpu_stopped) never recurse into the
    # scheduler while it is mid-decision.
    def request_reschedule(self, pcpu: PCPU) -> None:
        if pcpu in self._resched_pending:
            return
        self._resched_pending[pcpu] = None
        self.sim.schedule(0, self._do_reschedule, pcpu)

    def _do_reschedule(self, pcpu: PCPU) -> None:
        self._resched_pending.pop(pcpu, None)
        self.scheduler.schedule(pcpu)

    def _drain_resched(self) -> None:
        """Used by start() so the initial placement happens at t=0."""
        while self._resched_pending:
            pcpu = next(iter(self._resched_pending))
            self._do_reschedule(pcpu)

    def slice_expired(self, pcpu: PCPU) -> None:
        self.request_reschedule(pcpu)

    # ------------------------------------------------------------------
    # Context-switch notifications (guest + IRQ delivery + listeners)
    # ------------------------------------------------------------------
    def vcpu_context_entered(self, vcpu: VCPU) -> None:
        guest = vcpu.domain.guest
        assert guest is not None
        self.tracer.emit(
            self.sim.now, "sched", "run", vcpu.name,
            pcpu=vcpu.pcpu.index if vcpu.pcpu else -1,
        )
        guest.vcpu_started(vcpu)
        self._flush_pending_irqs(vcpu)
        for listener in self.context_listeners:
            listener(vcpu, True)

    def vcpu_context_left(self, vcpu: VCPU) -> None:
        guest = vcpu.domain.guest
        assert guest is not None
        self.tracer.emit(self.sim.now, "sched", "stop", vcpu.name)
        guest.vcpu_stopped(vcpu)
        for listener in self.context_listeners:
            listener(vcpu, False)

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------
    def post_irq(self, vcpu: VCPU, irq: IRQ) -> None:
        """Post an interrupt towards a vCPU, waking it if blocked.

        Delivery semantics (the crux of Figure 1):

        * RUNNING target — delivered after the short upcall latency.
        * BLOCKED target — the vCPU is woken (BOOST applies) and the IRQ is
          delivered when it starts running.
        * RUNNABLE target — the IRQ stays pending until the credit scheduler
          gets around to running the vCPU: the full queueing delay applies.
        * FROZEN target — only function-call IPIs wake a frozen vCPU (the
          shutdown path); everything else is a caller bug, because vScale
          rebinds event channels and the guest never reschedule-IPIs a
          frozen sibling.
        """
        if vcpu.state is VCPUState.FROZEN and irq.irq_class is not IRQClass.CALL_IPI:
            raise RuntimeError(
                f"{irq.irq_class.value} posted to frozen vCPU {vcpu.name}"
            )
        self.tracer.emit(
            self.sim.now, "irq", "post", vcpu.name, kind=irq.irq_class.value
        )
        vcpu.pending_irqs.append(irq)
        if vcpu.state is VCPUState.RUNNING:
            self.sim.schedule(self.config.irq_delivery_ns, self._deliver_one, vcpu, irq)
        elif vcpu.state is VCPUState.BLOCKED or (
            vcpu.state is VCPUState.FROZEN and irq.irq_class is IRQClass.CALL_IPI
        ):
            if vcpu.state is VCPUState.FROZEN:
                self.scheduler.vcpu_unfreeze(vcpu)
            self.scheduler.vcpu_wake(vcpu)
        # RUNNABLE: nothing to do — delivered via _flush_pending_irqs later.

    def _deliver_one(self, vcpu: VCPU, irq: IRQ) -> None:
        if irq not in vcpu.pending_irqs:
            return  # already flushed by a context switch in between
        if vcpu.state is not VCPUState.RUNNING:
            return  # went to sleep/preempted first; flushed at next start
        vcpu.pending_irqs.remove(irq)
        self._account_delivery(vcpu, irq)
        assert vcpu.domain.guest is not None
        vcpu.domain.guest.deliver_irq(vcpu, irq)

    def _flush_pending_irqs(self, vcpu: VCPU) -> None:
        while vcpu.pending_irqs:
            irq = vcpu.pending_irqs.pop(0)
            self._account_delivery(vcpu, irq)
            assert vcpu.domain.guest is not None
            vcpu.domain.guest.deliver_irq(vcpu, irq)
            if vcpu.state is not VCPUState.RUNNING:
                break  # the handler blocked/froze the vCPU

    def _account_delivery(self, vcpu: VCPU, irq: IRQ) -> None:
        delay = self.sim.now - irq.post_time
        self.tracer.emit(
            self.sim.now, "irq", "deliver", vcpu.name,
            kind=irq.irq_class.value, delay_ns=delay,
        )
        domain = vcpu.domain
        vcpu.irq_delivered.inc()
        if irq.irq_class is IRQClass.EVTCHN:
            domain.io_delay.record(delay)
        else:
            vcpu.ipi_received.inc()
            domain.ipi_delay.record(delay)

    # ------------------------------------------------------------------
    # Hypercall surface (guest -> hypervisor)
    # ------------------------------------------------------------------
    def hyp_block(self, vcpu: VCPU) -> None:
        """SCHEDOP_block: the guest's idle loop parks the vCPU.

        Like Xen's, the block checks for events that were posted while the
        vCPU was still running (their delivery events race with the idle
        transition): blocking with a pending upcall would lose interrupts,
        so such a vCPU wakes right back up and handles them.
        """
        self.scheduler.vcpu_block(vcpu)
        if vcpu.pending_irqs and vcpu.state is VCPUState.BLOCKED:
            self.scheduler.vcpu_wake(vcpu)

    def hyp_wake(self, vcpu: VCPU) -> None:
        """Wake a blocked sibling vCPU (evtchn kick from inside the guest)."""
        self.scheduler.vcpu_wake(vcpu)

    def hyp_yield(self, vcpu: VCPU) -> None:
        """SCHEDOP_yield: pv-spinlock's give-up-the-CPU path."""
        self.scheduler.vcpu_yield(vcpu)

    def hyp_send_ipi(self, src: VCPU, dst: VCPU, irq_class: IRQClass, payload: object = None) -> IRQ:
        """Send a virtual IPI between two vCPUs of the same domain.

        With a fault injector installed, reschedule IPIs can be dropped or
        delayed in flight.  A *dropped* IPI loses the guest-visible
        interrupt only: if the target was blocked it is still woken,
        matching Xen's event-channel model where the pending bit is set
        even when the upcall is masked/lost — dropping the wake too would
        deadlock a blocked target forever, which is not the failure mode
        we are modelling.
        """
        if src.domain is not dst.domain:
            raise ValueError("IPIs cannot cross domains")
        irq = IRQ(irq_class=irq_class, post_time=self.sim.now, payload=payload)
        if self.faults is not None:
            fate = self.faults.ipi_fault(irq_class)
            if fate is not None:
                kind, delay_ns = fate
                irq.fault = "dropped" if kind == "drop" else "delayed"
                self.tracer.emit(
                    self.sim.now, "fault", f"ipi_{irq.fault}", dst.name,
                    kind=irq_class.value,
                )
                if kind == "drop":
                    if dst.state is VCPUState.BLOCKED:
                        self.scheduler.vcpu_wake(dst)
                    return irq
                self.sim.schedule(delay_ns, self._post_faulted_irq, dst, irq)
                return irq
        self.post_irq(dst, irq)
        return irq

    def _post_faulted_irq(self, dst: VCPU, irq: IRQ) -> None:
        """Deliver a delayed IPI, re-checking the target's state at arrival.

        The target may have been frozen while the IPI was in flight; a
        reschedule IPI to a frozen vCPU is illegal (post_irq asserts), so
        the late arrival is discarded instead — exactly what Xen does when
        the pending bit belongs to a channel bound to an offlined vCPU.
        """
        if dst.state is VCPUState.FROZEN and irq.irq_class is not IRQClass.CALL_IPI:
            assert self.faults is not None
            self.faults.note_late_drop()
            self.tracer.emit(self.sim.now, "fault", "ipi_dropped_late", dst.name)
            return
        self.post_irq(dst, irq)

    def hyp_mark_freeze(self, vcpu: VCPU) -> None:
        """SCHEDOP_freezecpu: stop crediting this vCPU (Algorithm 2 step 3).

        The target vCPU must still run briefly to migrate its threads away,
        so this hypercall only *marks* it: credit accounting drops it from
        the domain's active list immediately, and the scheduler completes
        the freeze when the guest's idle path blocks the vCPU.
        """
        if vcpu.state is VCPUState.FROZEN:
            return
        vcpu.freeze_pending = True
        self.tracer.emit(self.sim.now, "vscale", "freeze_mark", vcpu.name)
        if self.vscale is not None:
            self.vscale.note_reconfiguration(vcpu.domain)

    def hyp_unfreeze_vcpu(self, vcpu: VCPU) -> None:
        """Undo a freeze (or cancel a pending one) and wake the vCPU."""
        self.tracer.emit(self.sim.now, "vscale", "unfreeze", vcpu.name)
        self.scheduler.vcpu_unfreeze(vcpu)
        self.scheduler.vcpu_wake(vcpu)
        if self.vscale is not None:
            self.vscale.note_reconfiguration(vcpu.domain)

    def hyp_tickle_vcpu(self, vcpu: VCPU) -> None:
        """Prioritize a vCPU with a pending reconfiguration IPI (paper §4.2)."""
        self.scheduler.tickle_vcpu(vcpu)

    def hyp_read_extendability(self, domain: Domain) -> tuple[int, int]:
        """SCHEDOP_getvscaleinfo: read (extendability_ns, optimal_vcpus).

        Raises if the vScale extension is not installed, mirroring an
        ENOSYS from a hypervisor without the patch.
        """
        if self.vscale is None:
            raise RuntimeError("vScale extension not installed on this host")
        return self.vscale.read(domain)

    # ------------------------------------------------------------------
    # Checkpoint/restore (see repro.recovery.checkpoint for the format)
    # ------------------------------------------------------------------
    def snapshot(self) -> "Checkpoint":
        """Capture a deterministic checkpoint of the whole simulation.

        Local import: repro.recovery imports machine types, so importing
        it at module scope would cycle.
        """
        from repro.recovery.checkpoint import capture

        checkpoint = capture(self)
        # Marker emitted *after* the capture: replay tooling uses it to
        # locate resumable instants, and emitting post-capture keeps the
        # snapshot purity contract (state_dict never sees the marker).
        self.tracer.emit(
            self.sim.now, "snapshot", "capture", "machine",
            at_ns=checkpoint.at_ns, fingerprint=checkpoint.fingerprint,
        )
        return checkpoint

    @staticmethod
    def restore(checkpoint: "Checkpoint", build: Callable[[], "Machine"]):
        """Rebuild via ``build()`` and replay to the checkpoint's instant.

        Returns the restored machine; raises ``RestoreMismatch`` when the
        replayed state does not fingerprint-match the checkpoint.
        """
        from repro.recovery.checkpoint import restore as restore_checkpoint

        return restore_checkpoint(checkpoint, build)

    # ------------------------------------------------------------------
    # Pool introspection
    # ------------------------------------------------------------------
    def pool_idle_ns(self) -> int:
        now = self.sim.now
        return sum(pcpu.flush_idle(now) for pcpu in self.pool)

    def find_domain(self, name: str) -> Domain:
        for domain in self.domains:
            if domain.name == name:
                return domain
        raise KeyError(name)
