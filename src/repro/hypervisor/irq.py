"""Virtual interrupts, IPIs and event channels.

Xen delivers three kinds of asynchronous signals into a guest that matter
for vScale:

* **Reschedule IPIs** between vCPUs of the same domain — the mechanism Linux
  uses for futex wake-ups and for vScale's master-to-target "go migrate your
  threads" kick (Algorithm 2 step 4).
* **Function-call IPIs** (``smp_call_function``) — rare; only system
  shutdown uses them against a frozen vCPU, so we model but rarely use them.
* **Event-channel upcalls** for paravirtual I/O — each channel is *bound* to
  one vCPU, and vScale retargets channels away from frozen vCPUs with a
  cheap hypercall (``rebind_irq_to_cpu``).

The key property the simulation must capture is the *delay* between posting
an interrupt and the guest observing it: a running vCPU sees it in ~1 µs, a
blocked vCPU is woken (with Xen's BOOST priority), but a **runnable** vCPU —
sitting in a pCPU runqueue behind other VMs — sees nothing until the credit
scheduler runs it again.  That queueing delay is the root cause of all three
problem patterns in the paper's Figure 1.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.domain import Domain


class IRQClass(enum.Enum):
    """Classes of asynchronous signals a vCPU can receive."""

    RESCHED_IPI = "resched_ipi"
    CALL_IPI = "call_ipi"
    EVTCHN = "evtchn"


_irq_ids = itertools.count()


@dataclass(eq=False, slots=True)
class IRQ:
    """One posted interrupt instance, tracked from post to delivery.

    ``eq=False``: every instance carries a unique ``irq_id``, so the
    generated field-wise ``__eq__`` could only ever match on identity
    anyway — but it walked all seven fields to find that out, and
    ``pending_irqs`` list removal calls it for every queued entry.
    """

    irq_class: IRQClass
    post_time: int
    payload: object = None
    channel: "EventChannel | None" = None
    #: Set by fault injection: "dropped" or "delayed" when the IPI was
    #: tampered with on the way to the guest.  None on the happy path.
    fault: str | None = None
    irq_id: int = field(default_factory=lambda: next(_irq_ids))


class EventChannel:
    """A paravirtual I/O event channel bound to a single vCPU.

    Devices (the network/disk models in :mod:`repro.workloads`) call
    :meth:`post`; the guest receives the upcall on the bound vCPU.  The
    binding can be changed at runtime — this is the operation vScale uses to
    migrate I/O interrupts off a frozen vCPU, and it costs a hypercall
    (~1 µs, Table 3 row "migrate device interrupts").
    """

    def __init__(self, domain: "Domain", name: str, bound_vcpu: int = 0):
        self.domain = domain
        self.name = name
        self.bound_vcpu = bound_vcpu
        #: Optional guest handler, invoked with the IRQ payload on delivery.
        self.handler: Callable[[object], None] | None = None

    def post(self, payload: object = None) -> None:
        """Raise the event towards the currently bound vCPU."""
        machine = self.domain.machine
        irq = IRQ(
            irq_class=IRQClass.EVTCHN,
            post_time=machine.sim.now,
            payload=payload,
            channel=self,
        )
        machine.post_irq(self.domain.vcpus[self.bound_vcpu], irq)

    def rebind(self, vcpu_index: int) -> None:
        """Re-bind the channel to another vCPU (a cheap hypercall in Xen)."""
        if not 0 <= vcpu_index < len(self.domain.vcpus):
            raise ValueError(f"no vCPU {vcpu_index} in {self.domain.name}")
        self.bound_vcpu = vcpu_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventChannel {self.domain.name}/{self.name} -> vCPU{self.bound_vcpu}>"
