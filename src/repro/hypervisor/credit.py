"""Compatibility shim: the credit scheduler moved into the scheduler zoo.

Import :class:`CreditScheduler` from
:mod:`repro.hypervisor.schedulers.credit` (or select it by name through
the registry in :mod:`repro.hypervisor.schedulers`).
"""

from repro.hypervisor.schedulers.credit import CreditScheduler

__all__ = ["CreditScheduler"]
