"""The dom0/libxl centralized monitoring cost model (Figure 4).

vScale's Figure 4 measures how long dom0's ``libxl`` toolstack takes to read
every VM's CPU consumption, under three dom0 background conditions: idle,
forwarding disk I/O, and forwarding network I/O.  The measured behaviour:

* with an idle dom0, each VM costs ~480 us, so total cost grows linearly
  with the number of VMs;
* when dom0 forwards I/O for even a single guest, the reads queue behind
  the I/O work: with network traffic, 50 VMs take >6 ms on average, with a
  maximum approaching 30 ms.

We model one read as a queueing delay (dom0 vCPU contention, grows with
I/O load) plus a per-VM XenStore/hypercall walk.  The parameters are fitted
to those reported points; the shape — linear in #VMs with a load-dependent
slope and a heavy max under I/O — is what the model preserves, and what the
comparison against the ~1 us decentralized vScale channel needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.units import US


class Dom0Load(enum.Enum):
    """Background work dom0 is doing while libxl runs."""

    IDLE = "w/o workload"
    DISK_IO = "w/ disk I/O"
    NET_IO = "w/ network I/O"


@dataclass(frozen=True)
class LibxlCosts:
    """Fitted parameters of the libxl read model, in nanoseconds.

    One sweep = a fixed toolstack/XenStore round-trip (~480 us — the cost
    the paper reports for a single VM) plus a per-VM walk, with extra
    per-VM queueing when dom0 is forwarding I/O (fitted to the paper's
    ">6 ms average, ~30 ms max at 50 VMs under network I/O").
    """

    #: Per-sweep base: toolstack startup + XenStore round trip.
    base_ns: int = 440 * US
    #: Base jitter sigma (lognormal).
    base_sigma: float = 0.15
    #: Median per-VM walk with an idle dom0.
    per_vm_ns: int = 45 * US
    #: Lognormal sigma of the per-VM walk.
    per_vm_sigma: float = 0.25
    #: Extra per-VM queueing inflicted by dom0 disk-I/O forwarding.
    disk_extra_ns: int = 35 * US
    #: Extra per-VM queueing inflicted by dom0 network-I/O forwarding.
    net_extra_ns: int = 65 * US
    #: Sigma of the I/O-induced extra (heavy tail: interrupt bursts).
    extra_sigma: float = 1.2


class Dom0Toolstack:
    """Samples libxl read-all-VMs latencies under a load condition."""

    def __init__(
        self,
        rng: np.random.Generator,
        load: Dom0Load = Dom0Load.IDLE,
        costs: LibxlCosts | None = None,
        faults=None,
    ):
        self.rng = rng
        self.load = load
        self.costs = costs or LibxlCosts()
        #: Optional :class:`~repro.faults.FaultInjector` whose dom0-burst
        #: site inflates individual sweeps (overload spikes).
        self.faults = faults
        # Lognormal means, precomputed: costs are frozen, and np.log on the
        # hot sampling path showed up in profiles of the 50-VM sweeps.
        self._log_base = np.log(self.costs.base_ns)
        self._log_per_vm = np.log(self.costs.per_vm_ns)
        self._log_disk_extra = np.log(self.costs.disk_extra_ns)
        self._log_net_extra = np.log(self.costs.net_extra_ns)

    def sample_read_all_ns(self, vm_count: int, now_ns: int | None = None) -> int:
        """One libxl sweep over ``vm_count`` VMs."""
        if vm_count < 1:
            raise ValueError("need at least one VM to read")
        costs = self.costs
        base = float(self.rng.lognormal(self._log_base, costs.base_sigma))
        base += self.rng.lognormal(
            self._log_per_vm, costs.per_vm_sigma, size=vm_count
        ).sum()
        extra = 0.0
        if self.load is Dom0Load.DISK_IO:
            extra = self.rng.lognormal(
                self._log_disk_extra, costs.extra_sigma, size=vm_count
            ).sum()
        elif self.load is Dom0Load.NET_IO:
            extra = self.rng.lognormal(
                self._log_net_extra, costs.extra_sigma, size=vm_count
            ).sum()
        total = float(base + extra)
        if self.faults is not None:
            total *= self.faults.dom0_factor(now_ns)
        return round(total)

    def measure(self, vm_count: int, iterations: int) -> dict[str, float]:
        """min/avg/max over ``iterations`` sweeps (Figure 4's error bars)."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        samples = np.array(
            [self.sample_read_all_ns(vm_count) for _ in range(iterations)],
            dtype=float,
        )
        return {
            "min_ns": float(samples.min()),
            "avg_ns": float(samples.mean()),
            "max_ns": float(samples.max()),
        }
