"""A CFS-style weight/vruntime scheduler with per-pCPU runqueues.

Linux-CFS idioms, distinct from :mod:`repro.hypervisor.schedulers.vrt`
(which keeps one global queue):

* each pCPU owns a runqueue with its own monotone ``min_vruntime``;
* a running vCPU's vruntime advances by ``elapsed * 256 / weight_eff``
  (per-VM weight split across active vCPUs, the paper's weight model);
* wake placement goes to the vCPU's cache-hot home queue, with the
  vruntime floored to ``min_vruntime - wake_bonus`` so sleepers get
  latency without banking unbounded credit;
* the dispatch slice shrinks as the local queue deepens (CFS's
  ``sched_period / nr_running``), floored at the scheduling granularity;
* an idle pCPU steals the most-lagging vCPU from the deepest peer queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.hypervisor.domain import VCPU
from repro.hypervisor.schedulers.base import QueueScheduler, register
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


@register
class CfsScheduler(QueueScheduler):
    """Per-pCPU weighted-vruntime scheduler (CFS-class)."""

    name: ClassVar[str] = "cfs"
    weight_proportional: ClassVar[bool] = True
    supports_caps: ClassVar[bool] = False
    uses_credit_accounting: ClassVar[bool] = False

    #: Minimum dispatch slice (CFS's sched_min_granularity).
    GRANULARITY_NS = 2 * MS
    #: Maximum latency bonus a waking vCPU can carry.
    WAKE_BONUS_NS = 10 * MS

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        #: Per-pCPU queues of runnable vCPUs (picked by lowest vruntime).
        self.queues: dict["PCPU", list[VCPU]] = {
            pcpu: [] for pcpu in machine.pool
        }
        #: Weighted virtual runtimes, per vCPU.
        self.vruntime: dict[VCPU, float] = {}
        #: Monotone per-queue floor new arrivals are clamped against.
        self.min_vruntime: dict["PCPU", float] = {
            pcpu: 0.0 for pcpu in machine.pool
        }

    # -- weight plumbing -------------------------------------------------
    def _effective_weight(self, vcpu: VCPU) -> float:
        domain = vcpu.domain
        active = max(1, len(domain.active_vcpus()))
        if self.config.per_vm_weight:
            return domain.weight / active
        return float(domain.weight)

    # -- queue primitives ------------------------------------------------
    def _home(self, vcpu: VCPU) -> "PCPU":
        if vcpu.last_pcpu is not None:
            return vcpu.last_pcpu
        return min(self.machine.pool, key=lambda p: (len(self.queues[p]), p.index))

    def _enqueue(self, vcpu: VCPU) -> None:
        home = self._home(vcpu)
        self.queues[home].append(vcpu)
        vcpu.last_pcpu = home

    def _dequeue(self, vcpu: VCPU) -> None:
        home = vcpu.last_pcpu
        if home is not None and vcpu in self.queues[home]:
            self.queues[home].remove(vcpu)
            return
        for queue in self.queues.values():
            if vcpu in queue:
                queue.remove(vcpu)
                return

    def _key(self, vcpu: VCPU) -> tuple[float, str, int]:
        return (self.vruntime.get(vcpu, 0.0), vcpu.domain.name, vcpu.index)

    def _best(self, queue: list[VCPU]) -> VCPU | None:
        if not queue:
            return None
        return min(queue, key=self._key)

    def _pick(self, pcpu: "PCPU") -> VCPU | None:
        candidate = self._best(self.queues[pcpu])
        if self.config.allow_stealing:
            # Cross-queue balance: steal a peer's waiter when it lags the
            # local candidate by more than one granularity (hysteresis
            # against ping-pong), or whenever the local queue is empty.
            # This is what keeps allocation weight-proportional globally —
            # per-queue fairness alone lets a lone vCPU camp on its pCPU.
            for queue in self.queues.values():
                best = self._best(queue)
                if best is None:
                    continue
                if candidate is None or (
                    self.vruntime.get(best, 0.0) + self.GRANULARITY_NS
                    < self.vruntime.get(candidate, 0.0)
                ):
                    candidate = best
        return candidate

    # -- accounting ------------------------------------------------------
    def _charge(self, vcpu: VCPU, elapsed: int) -> None:
        if elapsed <= 0:
            return
        # Normalize so a weight-256 vCPU advances 1ns of vruntime per ns.
        self.vruntime[vcpu] = (
            self.vruntime.get(vcpu, 0.0) + elapsed * 256.0 / self._effective_weight(vcpu)
        )
        self.charge_domain(vcpu, elapsed)
        pcpu = vcpu.pcpu
        if pcpu is not None:
            candidates = [self.vruntime[vcpu]]
            candidates.extend(self.vruntime.get(v, 0.0) for v in self.queues[pcpu])
            self.min_vruntime[pcpu] = max(self.min_vruntime[pcpu], min(candidates))

    def _on_wake(self, vcpu: VCPU) -> None:
        floor = self.min_vruntime[self._home(vcpu)] - self.WAKE_BONUS_NS
        self.vruntime[vcpu] = max(self.vruntime.get(vcpu, floor), floor)

    def _on_tickle(self, vcpu: VCPU) -> None:
        # Put the tickled vCPU at the front of its queue's vruntime order.
        self.vruntime[vcpu] = self.min_vruntime[self._home(vcpu)] - self.WAKE_BONUS_NS

    def _on_frozen(self, vcpu: VCPU) -> None:
        self.vruntime.pop(vcpu, None)

    def _slice_ns(self, pcpu: "PCPU", vcpu: VCPU) -> int:
        contenders = len(self.queues[pcpu]) + 1
        return max(self.GRANULARITY_NS, self.config.timeslice_ns // contenders)

    def _tick_policy(self) -> None:
        # Preempt a runner that overran the pool's best waiter by more
        # than one granularity (global, so lone runners get balanced too).
        best: VCPU | None = None
        for queue in self.queues.values():
            head = self._best(queue)
            if head is not None and (best is None or self._key(head) < self._key(best)):
                best = head
        if best is None:
            return
        best_vrt = self.vruntime.get(best, 0.0)
        for pcpu in self.machine.pool:
            current = pcpu.current
            if current is None:
                continue
            if self.vruntime.get(current, 0.0) > best_vrt + self.GRANULARITY_NS:
                self.machine.request_reschedule(pcpu)

    # -- introspection ---------------------------------------------------
    def runnable_backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        for pcpu, queue in self.queues.items():
            yield pcpu.name, queue

    def _state_extra(self) -> dict:
        return {
            "vruntime": {
                f"{v.domain.name}/{v.index}": vrt
                for v, vrt in sorted(
                    self.vruntime.items(),
                    key=lambda item: (item[0].domain.name, item[0].index),
                )
            },
            "min_vruntime": {
                pcpu.name: vrt for pcpu, vrt in self.min_vruntime.items()
            },
        }
