"""The scheduler zoo: pluggable pool schedulers behind one interface.

Importing this package populates the registry.  See
:mod:`repro.hypervisor.schedulers.base` for the interface, the selection
rules (explicit name > ``REPRO_SCHEDULER`` > ``credit``) and the
capability flags the conformance suite and sanitizer key off.
"""

from repro.hypervisor.schedulers.base import (
    DEFAULT_SCHEDULER,
    ENV_VAR,
    QueueScheduler,
    Scheduler,
    SchedulerConfig,
    available,
    create,
    get,
    register,
    resolve_name,
)
from repro.hypervisor.schedulers.cfs import CfsScheduler
from repro.hypervisor.schedulers.credit import CreditScheduler
from repro.hypervisor.schedulers.credit2 import Credit2Scheduler
from repro.hypervisor.schedulers.rr import RoundRobinScheduler
from repro.hypervisor.schedulers.vrt import VrtScheduler

__all__ = [
    "DEFAULT_SCHEDULER",
    "ENV_VAR",
    "QueueScheduler",
    "Scheduler",
    "SchedulerConfig",
    "available",
    "create",
    "get",
    "register",
    "resolve_name",
    "CfsScheduler",
    "CreditScheduler",
    "Credit2Scheduler",
    "RoundRobinScheduler",
    "VrtScheduler",
]
