"""The scheduler interface, registry and shared machinery.

vScale's generality claim (paper §6, the KVM port) is that the guest-side
scaling policy ``n_i = ceil(s_ext/t)`` holds regardless of which host
scheduler multiplexes vCPUs onto pCPUs.  To make that claim *testable*,
every pool scheduler lives behind the :class:`Scheduler` interface defined
here and is selected by name through a registry:

* :mod:`repro.hypervisor.schedulers.credit`   — Xen 4.x csched (the paper's
  substrate; the reference implementation every golden is pinned to);
* :mod:`repro.hypervisor.schedulers.credit2`  — Credit2-style: per-pCPU
  runqueues ordered by credit, weight-scaled burn, global credit reset;
* :mod:`repro.hypervisor.schedulers.cfs`      — CFS-style weight/vruntime
  scheduler with per-pCPU queues and idle stealing;
* :mod:`repro.hypervisor.schedulers.vrt`      — the original global-queue
  virtual-runtime scheduler (BVT/Credit2-class);
* :mod:`repro.hypervisor.schedulers.rr`       — a plain round-robin
  baseline (no weights), the control group of the generality grid.

Selection order: an explicit name (``HostConfig(scheduler="cfs")`` or the
runner's ``--scheduler`` flag) always wins; when no name is given, the
``REPRO_SCHEDULER`` environment variable applies; otherwise the default is
``credit``.  Leaving both unset is guaranteed bit-for-bit identical to the
pre-registry behavior — the golden suite enforces this.

The interface is the exact surface :class:`repro.hypervisor.machine.Machine`
already used: wake/block/freeze/unfreeze/yield entry points, the per-pCPU
``schedule`` election, the reconfiguration-IPI ``tickle_vcpu`` expedite,
and ``runnable_backlog`` introspection.  **Fault sites and the vScale
extension must only go through this surface** (never through
scheduler-private fields such as ``credits``), so fault experiments and
Algorithm 1 run unchanged under any registered scheduler.

Capability flags (``weight_proportional``, ``supports_caps``,
``uses_credit_accounting``) let the shared conformance suite and the
sanitizer skip or re-derive per-scheduler invariants instead of assuming
the credit scheduler's accounting model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.core.vec import clipped_add
from repro.hypervisor.domain import VCPU, VCPUState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


class Scheduler:
    """Abstract pool-wide scheduler.

    Subclasses implement the entry points the machine funnels every
    scheduling-relevant event through.  The contract, shared by all
    implementations:

    * ``vcpu_wake``      — BLOCKED -> RUNNABLE (+ placement/preemption);
    * ``vcpu_block``     — the guest idles the vCPU; a freeze-pending vCPU
      completes its freeze here (Algorithm 2's target-side last step);
    * ``vcpu_freeze``    — remove the vCPU from scheduling entirely;
    * ``vcpu_unfreeze``  — FROZEN -> BLOCKED (wake-able again);
    * ``vcpu_yield``     — voluntary give-up (pv-spinlock path);
    * ``tickle_vcpu``    — expedite a vCPU with a pending reconfiguration
      IPI (paper §4.2);
    * ``schedule(pcpu)`` — (re)elect the vCPU to run on one pCPU, invoked
      through the machine's deferred-reschedule mechanism;
    * ``runnable_backlog`` — queued-but-waiting vCPU count for the pool.
    """

    #: Registry key.  Subclasses must set a unique, non-empty name.
    name: ClassVar[str] = ""
    #: CPU time converges to weight proportions (conformance property).
    weight_proportional: ClassVar[bool] = True
    #: ``Domain.cap`` hard caps are enforced by this scheduler.
    supports_caps: ClassVar[bool] = False
    #: Uses the per-vCPU ``credits`` balance; arms the sanitizer's
    #: credit-conservation checkers.
    uses_credit_accounting: ClassVar[bool] = False

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.config = machine.config
        self.sim = machine.sim

    # ------------------------------------------------------------------
    # Required surface
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm periodic machinery (ticks).  Called once by the machine."""
        raise NotImplementedError

    def vcpu_wake(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def vcpu_block(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def vcpu_freeze(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def vcpu_unfreeze(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def vcpu_yield(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def tickle_vcpu(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def schedule(self, pcpu: "PCPU") -> None:
        raise NotImplementedError

    def runnable_backlog(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection for the sanitizer and tests
    # ------------------------------------------------------------------
    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        """``(label, queue)`` pairs covering every queued runnable vCPU.

        The sanitizer's runqueue-exclusivity checker walks this view, so
        it works for per-pCPU and global-queue schedulers alike.
        """
        raise NotImplementedError

    def state_dict(self) -> dict:
        """JSON-able snapshot of the scheduler's dispatch state.

        Used by checkpoint/restore equivalence checks: two scheduler
        instances with equal state dicts will make identical future
        dispatch decisions.  The shared part covers the runqueues (as
        ordered vCPU names) and the backlog; policy-private state —
        vruntimes, credit epochs, parked domains — comes from
        :meth:`_state_extra`, which every zoo scheduler overrides.
        """
        return {
            "name": self.name,
            "runqueues": {
                label: [f"{v.domain.name}/{v.index}" for v in queue]
                for label, queue in self.runqueues_view()
            },
            "backlog": self.runnable_backlog(),
            "extra": self._state_extra(),
        }

    def _state_extra(self) -> dict:
        """Policy-private state folded into :meth:`state_dict`."""
        return {}

    # ------------------------------------------------------------------
    # Shared accounting helper
    # ------------------------------------------------------------------
    def charge_domain(self, vcpu: VCPU, elapsed: int) -> None:
        """Fold one finished running interval into the domain accounting
        the vScale extension samples (:class:`VScaleExtension`).

        Every implementation must route consumption through here: it is
        the single point where the no-frozen-burn invariant is checked,
        for any scheduler.
        """
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_burn(vcpu, elapsed)
        domain = vcpu.domain
        domain.window_consumed_ns += elapsed
        domain.total_consumed_ns += elapsed

    def accounting_batch(
        self,
        vcpus: list[VCPU],
        delta: float,
        lo: float,
        hi: float,
        shift: float = 0,
    ) -> None:
        """Batch-apply one accounting epoch's clipped balance update.

        Sets every vCPU's balance to
        ``shift + min(hi, max(lo, credits + delta))`` — the shape shared by
        csched's per-period credit distribution (clamp to ±acct, no shift)
        and Credit2's global reset (clamp the carry-over, shift by the new
        allotment).  The elementwise kernel is
        :func:`repro.core.vec.clipped_add`: one numpy expression over the
        whole batch when available, a bit-identical scalar loop otherwise,
        so schedulers calling this hook keep working on a bare install.
        Policies whose epoch update is not uniform across a batch (e.g.
        per-vCPU deltas that depend on runtime history) simply keep their
        scalar loops — the hook is an opt-in fast path, not a requirement.
        """
        balances = clipped_add([v.credits for v in vcpus], delta, lo, hi)
        if shift:
            for vcpu, balance in zip(vcpus, balances):
                vcpu.credits = shift + balance
        else:
            for vcpu, balance in zip(vcpus, balances):
                vcpu.credits = balance


class QueueScheduler(Scheduler):
    """Template for queue-based schedulers (everything but csched).

    Implements the full state machine — wake/block/freeze/unfreeze/yield,
    running-interval bookkeeping, the periodic tick with idle rescue —
    against five primitive hooks subclasses provide:

    * ``_enqueue(vcpu)``          — admit a runnable vCPU to its queue;
    * ``_dequeue(vcpu)``          — remove it from whichever queue holds it;
    * ``_pick(pcpu)``             — elect (without removing) the next vCPU
      for ``pcpu``, or None;
    * ``_on_wake(vcpu)``          — per-policy wake bookkeeping (vruntime
      floor, credit boost, nothing);
    * ``_charge(vcpu, elapsed)``  — per-policy accounting for a finished
      running interval (must call :meth:`charge_domain`).

    Optional hooks: ``_slice_ns(pcpu, vcpu)`` (quantum, defaults to the
    host timeslice), ``_on_frozen(vcpu)`` (surrender policy state),
    ``_wake_preempt(vcpu)`` (placement/preemption after enqueue; the
    default kicks the first idle pCPU).
    """

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        self._tick_armed = False

    # -- primitive hooks -------------------------------------------------
    def _enqueue(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def _dequeue(self, vcpu: VCPU) -> None:
        raise NotImplementedError

    def _pick(self, pcpu: "PCPU") -> VCPU | None:
        raise NotImplementedError

    def _on_wake(self, vcpu: VCPU) -> None:
        """Per-policy bookkeeping before a woken vCPU is enqueued."""

    def _charge(self, vcpu: VCPU, elapsed: int) -> None:
        raise NotImplementedError

    def _slice_ns(self, pcpu: "PCPU", vcpu: VCPU) -> int:
        return self.config.timeslice_ns

    def _on_frozen(self, vcpu: VCPU) -> None:
        """Surrender per-policy state when a vCPU freezes."""

    def _wake_preempt(self, vcpu: VCPU) -> None:
        """Trigger dispatch after a wake: kick the first idle pCPU."""
        for pcpu in self.machine.pool:
            if pcpu.current is None:
                self.machine.request_reschedule(pcpu)
                return

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.config.tick_ns, self._tick)

    # -- entry points ----------------------------------------------------
    def vcpu_wake(self, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.BLOCKED:
            return
        vcpu.set_state(VCPUState.RUNNABLE, self.sim.now)
        self._on_wake(vcpu)
        self._admit(vcpu)
        self._wake_preempt(vcpu)

    def _admit(self, vcpu: VCPU) -> None:
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_enqueue(vcpu)
        self._enqueue(vcpu)

    def vcpu_block(self, vcpu: VCPU) -> None:
        now = self.sim.now
        target = VCPUState.BLOCKED
        if vcpu.freeze_pending:
            target = VCPUState.FROZEN
            vcpu.freeze_pending = False
        if vcpu.state is VCPUState.RUNNING:
            pcpu = vcpu.pcpu
            self._stop_running(vcpu)
            vcpu.set_state(target, now)
            self.machine.request_reschedule(pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            self._dequeue(vcpu)
            vcpu.set_state(target, now)
        elif vcpu.state is VCPUState.BLOCKED and target is VCPUState.FROZEN:
            vcpu.set_state(target, now)
        else:
            return
        if target is VCPUState.FROZEN:
            self._on_frozen(vcpu)

    def vcpu_freeze(self, vcpu: VCPU) -> None:
        now = self.sim.now
        if vcpu.state is VCPUState.RUNNING:
            pcpu = vcpu.pcpu
            self._stop_running(vcpu)
            vcpu.set_state(VCPUState.FROZEN, now)
            self.machine.request_reschedule(pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            self._dequeue(vcpu)
            vcpu.set_state(VCPUState.FROZEN, now)
        elif vcpu.state is VCPUState.BLOCKED:
            vcpu.set_state(VCPUState.FROZEN, now)
        else:
            return
        self._on_frozen(vcpu)

    def vcpu_unfreeze(self, vcpu: VCPU) -> None:
        vcpu.freeze_pending = False
        if vcpu.state is not VCPUState.FROZEN:
            return
        vcpu.set_state(VCPUState.BLOCKED, self.sim.now)

    def vcpu_yield(self, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.RUNNING:
            return
        pcpu = vcpu.pcpu
        self._stop_running(vcpu)
        vcpu.set_state(VCPUState.RUNNABLE, self.sim.now)
        self._admit(vcpu)
        self.machine.request_reschedule(pcpu)

    def tickle_vcpu(self, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.RUNNABLE:
            return
        self._dequeue(vcpu)
        self._on_tickle(vcpu)
        self._admit(vcpu)
        self._wake_preempt(vcpu)

    def _on_tickle(self, vcpu: VCPU) -> None:
        """Expedite bookkeeping for a reconfiguration-IPI tickle."""
        self._on_wake(vcpu)

    # -- dispatch --------------------------------------------------------
    def schedule(self, pcpu: "PCPU") -> None:
        now = self.sim.now
        current = pcpu.current
        if current is not None:
            self._stop_running(current)
            current.set_state(VCPUState.RUNNABLE, now)
            self._admit(current)
        candidate = self._pick(pcpu)
        if candidate is None:
            pcpu.set_idle(now)
            return
        self._dequeue(candidate)
        self._start_running(pcpu, candidate)

    # -- running-interval bookkeeping ------------------------------------
    def _start_running(self, pcpu: "PCPU", vcpu: VCPU) -> None:
        now = self.sim.now
        vcpu.set_state(VCPUState.RUNNING, now)
        vcpu.pcpu = pcpu
        vcpu.last_pcpu = pcpu
        vcpu.run_started_at = now
        pcpu.set_current(vcpu, now)
        pcpu.arm_slice(self._slice_ns(pcpu, vcpu))
        self.machine.vcpu_context_entered(vcpu)

    def _stop_running(self, vcpu: VCPU) -> None:
        now = self.sim.now
        pcpu = vcpu.pcpu
        assert pcpu is not None and vcpu.run_started_at is not None
        elapsed = now - vcpu.run_started_at
        self._charge(vcpu, elapsed)
        self.machine.vcpu_context_left(vcpu)
        pcpu.clear_current(now)
        vcpu.pcpu = None
        vcpu.run_started_at = None

    # -- tick: charge in-flight intervals, rescue idle pCPUs -------------
    def _tick(self) -> None:
        now = self.sim.now
        for pcpu in self.machine.pool:
            vcpu = pcpu.current
            if vcpu is None or vcpu.run_started_at is None:
                continue
            elapsed = now - vcpu.run_started_at
            if elapsed > 0:
                self._charge(vcpu, elapsed)
                vcpu.run_started_at = now
        self._tick_policy()
        if self.runnable_backlog():
            for pcpu in self.machine.pool:
                if pcpu.current is None:
                    self.machine.request_reschedule(pcpu)
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_runqueues(self)
            sanitizer.check_machine(self.machine.domains)
        self.sim.schedule(self.config.tick_ns, self._tick)

    def _tick_policy(self) -> None:
        """Per-policy periodic work (preempting laggards, credit reset)."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Environment variable consulted when no scheduler name is given.
ENV_VAR = "REPRO_SCHEDULER"
#: The paper's substrate; all pre-registry goldens are pinned to it.
DEFAULT_SCHEDULER = "credit"

_REGISTRY: dict[str, type[Scheduler]] = {}


def register(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a scheduler to the registry by its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"scheduler name {cls.name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def available() -> tuple[str, ...]:
    """Registered scheduler names, sorted for deterministic iteration."""
    return tuple(sorted(_REGISTRY))


def get(name: str) -> type[Scheduler]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r} (available: {', '.join(available())})"
        ) from None


def resolve_name(name: str | None = None) -> str:
    """Resolve an optional scheduler name to a registered one.

    Explicit name > ``REPRO_SCHEDULER`` > ``credit``.  Raises ``ValueError``
    for names (explicit or from the environment) not in the registry.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_SCHEDULER
    get(name)
    return name


def create(name: str | None, machine: "Machine") -> Scheduler:
    """Instantiate the scheduler selected by ``name`` (or env/default)."""
    return get(resolve_name(name))(machine)


@dataclass(frozen=True)
class SchedulerConfig:
    """Declarative scheduler selection, embeddable in experiment configs.

    ``name=None`` defers to ``REPRO_SCHEDULER`` (then ``credit``), so a
    config built once can be pointed at any registered scheduler from the
    environment without touching code.
    """

    name: str | None = None

    def resolved(self) -> str:
        return resolve_name(self.name)

    @classmethod
    def from_env(cls) -> "SchedulerConfig":
        return cls(os.environ.get(ENV_VAR) or None)
