"""A Credit2-style scheduler: per-pCPU runqueues with global credit reset.

Models the behaviourally relevant core of Xen's csched2 as it differs
from csched (see :mod:`repro.hypervisor.schedulers.credit`):

* no periodic accounting — each vCPU's balance drains while it runs, at a
  rate *inversely proportional* to its effective weight (per-VM weight
  split across the domain's active vCPUs, like the paper's patch), so a
  heavy vCPU's credit lasts longer and CPU time converges to weight
  proportions;
* per-pCPU runqueues ordered by credit (highest runs first, FIFO within
  ties), with idle stealing from the deepest peer queue;
* a **global credit reset** instead of a refill tick: when the best
  runnable candidate's balance has hit zero, everyone still in the race
  is topped back up to ``CREDIT_INIT`` (debt is carried, clamped), which
  is what keeps long-run allocation proportional without an accounting
  period.

Freezing a vCPU surrenders its balance immediately (``_on_frozen``), the
same contract the paper's csched patch establishes — siblings benefit
without waiting for a refill.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.hypervisor.domain import VCPU
from repro.hypervisor.schedulers.base import QueueScheduler, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


@register
class Credit2Scheduler(QueueScheduler):
    """Per-pCPU credit queues with weight-scaled burn and global reset."""

    name: ClassVar[str] = "credit2"
    weight_proportional: ClassVar[bool] = True
    supports_caps: ClassVar[bool] = False
    uses_credit_accounting: ClassVar[bool] = False

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        #: Per-pCPU queues of runnable vCPUs (picked by highest credit).
        self.queues: dict["PCPU", list[VCPU]] = {
            pcpu: [] for pcpu in machine.pool
        }
        #: Balance granted at each global reset, in ns of reference-weight
        #: CPU time (one accounting period's worth keeps slices long).
        self.credit_init = self.config.acct_ns

    # -- weight plumbing -------------------------------------------------
    def _effective_weight(self, vcpu: VCPU) -> float:
        domain = vcpu.domain
        active = max(1, len(domain.active_vcpus()))
        if self.config.per_vm_weight:
            return domain.weight / active
        return float(domain.weight)

    # -- queue primitives ------------------------------------------------
    def _home(self, vcpu: VCPU) -> "PCPU":
        if vcpu.last_pcpu is not None:
            return vcpu.last_pcpu
        return min(self.machine.pool, key=lambda p: (len(self.queues[p]), p.index))

    def _enqueue(self, vcpu: VCPU) -> None:
        home = self._home(vcpu)
        self.queues[home].append(vcpu)
        vcpu.last_pcpu = home

    def _dequeue(self, vcpu: VCPU) -> None:
        home = vcpu.last_pcpu
        if home is not None and vcpu in self.queues[home]:
            self.queues[home].remove(vcpu)
            return
        for queue in self.queues.values():
            if vcpu in queue:
                queue.remove(vcpu)
                return

    def _best(self, queue: list[VCPU]) -> VCPU | None:
        if not queue:
            return None
        # max() keeps the first maximal element: FIFO within credit ties.
        return max(queue, key=lambda v: v.credits)

    def _pick(self, pcpu: "PCPU") -> VCPU | None:
        candidate = self._best(self.queues[pcpu])
        if self.config.allow_stealing:
            # Global dispatch order: take the highest-credit contender in
            # the pool (the local head wins ties).  Per-pCPU queues keep
            # wake placement cheap; stealing at every dispatch is what
            # keeps allocation weight-proportional across queues — a lone
            # vCPU cannot camp on its pCPU past its share.
            for queue in self.queues.values():
                best = self._best(queue)
                if best is None:
                    continue
                if candidate is None or best.credits > candidate.credits:
                    candidate = best
        if candidate is not None and candidate.credits <= 0:
            self._reset_credit()
        return candidate

    def _reset_credit(self) -> None:
        """Global reset: top every contender back up by ``credit_init``.

        The carry-over (surplus or debt) is clamped to one reset's worth
        and preserved: a heavy vCPU whose slow burn left it with credit
        when its competitors drained keeps that relative advantage into
        the next epoch — discarding it would flatten allocation towards
        equal shares whenever a reset fires early on a multi-pCPU pool.
        """
        init = float(self.credit_init)
        contenders = [vcpu for queue in self.queues.values() for vcpu in queue]
        for pcpu in self.machine.pool:
            if pcpu.current is not None:
                contenders.append(pcpu.current)
        self.accounting_batch(contenders, 0.0, -init, init, shift=init)

    # -- accounting ------------------------------------------------------
    def _charge(self, vcpu: VCPU, elapsed: int) -> None:
        if elapsed <= 0:
            return
        # Burn normalized so a reference-weight (256) vCPU drains 1ns/ns.
        vcpu.credits -= elapsed * 256.0 / self._effective_weight(vcpu)
        self.charge_domain(vcpu, elapsed)

    def _on_wake(self, vcpu: VCPU) -> None:
        # A sleeper's stale balance must not let it monopolize on wake:
        # clamp to one reset's worth, like the reset does.
        vcpu.credits = min(vcpu.credits, float(self.credit_init))

    def _on_tickle(self, vcpu: VCPU) -> None:
        # Jump the credit order so the reconfiguration IPI lands promptly.
        vcpu.credits = float(self.credit_init)

    def _on_frozen(self, vcpu: VCPU) -> None:
        vcpu.credits = 0.0

    def _tick_policy(self) -> None:
        # Preempt a drained runner when any queued contender still has
        # credit — bounds how stale the credit order can get mid-slice.
        best: VCPU | None = None
        for queue in self.queues.values():
            head = self._best(queue)
            if head is not None and (best is None or head.credits > best.credits):
                best = head
        if best is None or best.credits <= 0:
            return
        for pcpu in self.machine.pool:
            current = pcpu.current
            if current is not None and current.credits <= 0:
                self.machine.request_reschedule(pcpu)

    # -- introspection ---------------------------------------------------
    def runnable_backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        for pcpu, queue in self.queues.items():
            yield pcpu.name, queue

    def _state_extra(self) -> dict:
        # Balances live on the vCPUs (captured with domain state); the
        # only policy-private knob is the reset grant.
        return {"credit_init": self.credit_init}
