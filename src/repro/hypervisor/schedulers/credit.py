"""Xen-style credit scheduler.

This reimplements the behaviourally relevant core of Xen 4.5's ``csched``:

* Proportional-share **credit accounting** every 30 ms: the pool's capacity
  (``P × acct_ns`` nanoseconds of CPU) is split between domains by weight and
  then between each domain's active (non-frozen) vCPUs.  With the paper's
  per-VM weight patch, a domain's share does not change when it freezes
  vCPUs — the remaining vCPUs simply earn more each.
* **Credit burning**: a running vCPU's balance drains in real time; balances
  are clamped to one accounting period so nobody can hoard or starve forever.
* **Priorities**: vCPUs with non-negative credit run at UNDER, others at
  OVER.  A blocked vCPU that wakes with credit left enters BOOST and may
  preempt the running vCPU — this is Xen's latency mechanism for I/O.
* **30 ms time slices** with round-robin within a priority class, per-pCPU
  runqueues, and work stealing so no pCPU idles while another has backlog.
* **Caps**: a capped domain whose consumption in the current accounting
  window exceeds ``cap × acct_ns`` is parked until the next accounting.

The scheduling *delays* experienced by runnable vCPUs in these runqueues are
exactly what vScale attacks, so this module also feeds each vCPU's
time-in-state accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.hypervisor.domain import Domain, Priority, VCPU, VCPUState
from repro.hypervisor.schedulers.base import Scheduler, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


@register
class CreditScheduler(Scheduler):
    """The pool-wide scheduler instance."""

    name: ClassVar[str] = "credit"
    weight_proportional: ClassVar[bool] = True
    supports_caps: ClassVar[bool] = True
    uses_credit_accounting: ClassVar[bool] = True

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        #: Per-pCPU FIFO runqueues (lists of runnable vCPUs).
        self.runqueues: dict["PCPU", list[VCPU]] = {
            pcpu: [] for pcpu in machine.pool
        }
        self._tick_count = 0
        #: Capped domains parked until next accounting (insertion-ordered
        #: dict rather than a set: iteration must be deterministic).
        self._parked: dict[Domain, None] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic tick.  Called once by the machine."""
        self.sim.schedule(self.config.tick_ns, self._tick)

    # ------------------------------------------------------------------
    # Entry points from the machine (wake/block/freeze/yield)
    # ------------------------------------------------------------------
    def vcpu_wake(self, vcpu: VCPU) -> None:
        """Make a blocked vCPU runnable, applying Xen's BOOST heuristic."""
        if vcpu.state is not VCPUState.BLOCKED:
            return
        now = self.sim.now
        vcpu.set_state(VCPUState.RUNNABLE, now)
        if self.config.boost_enabled and vcpu.credits >= 0:
            vcpu.priority = Priority.BOOST
            vcpu.boosted = True
        else:
            vcpu.priority = self._base_priority(vcpu)
        pcpu = self._place(vcpu)
        self._enqueue(pcpu, vcpu)
        self._tickle(pcpu, vcpu)

    def vcpu_block(self, vcpu: VCPU) -> None:
        """The guest reports the vCPU idle (no runnable work).

        A freeze-pending vCPU that idles completes its freeze here: this is
        the last step of Algorithm 2's target-side sequence.
        """
        now = self.sim.now
        target = VCPUState.BLOCKED
        if vcpu.freeze_pending:
            target = VCPUState.FROZEN
            vcpu.freeze_pending = False
            vcpu.credits = 0.0
        if vcpu.state is VCPUState.RUNNING:
            self._stop_running(vcpu)
            vcpu.set_state(target, now)
            self.machine.request_reschedule(vcpu.last_pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            self._dequeue(vcpu)
            vcpu.set_state(target, now)
        elif vcpu.state is VCPUState.BLOCKED and target is VCPUState.FROZEN:
            # Already idle when the freeze was requested: park it for good.
            vcpu.set_state(target, now)

    def vcpu_freeze(self, vcpu: VCPU) -> None:
        """Remove the vCPU from scheduling entirely (vScale freeze)."""
        now = self.sim.now
        if vcpu.state is VCPUState.RUNNING:
            self._stop_running(vcpu)
            pcpu = vcpu.last_pcpu
            vcpu.set_state(VCPUState.FROZEN, now)
            self.machine.request_reschedule(pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            self._dequeue(vcpu)
            vcpu.set_state(VCPUState.FROZEN, now)
        elif vcpu.state is VCPUState.BLOCKED:
            vcpu.set_state(VCPUState.FROZEN, now)
        # Frozen vCPUs stop earning credits at the next accounting; their
        # residual balance is surrendered immediately so siblings benefit
        # without waiting a period.
        vcpu.credits = 0.0

    def vcpu_unfreeze(self, vcpu: VCPU) -> None:
        """Bring a frozen vCPU back as blocked (idle), ready to be woken."""
        vcpu.freeze_pending = False
        if vcpu.state is not VCPUState.FROZEN:
            return
        vcpu.set_state(VCPUState.BLOCKED, self.sim.now)
        vcpu.priority = Priority.UNDER

    def vcpu_yield(self, vcpu: VCPU) -> None:
        """Voluntarily give up the pCPU (pv-spinlock's spin-then-yield)."""
        if vcpu.state is not VCPUState.RUNNING:
            return
        pcpu = vcpu.pcpu
        self._stop_running(vcpu)
        vcpu.set_state(VCPUState.RUNNABLE, self.sim.now)
        # A yielding vCPU goes to the back of its priority class.
        vcpu.priority = self._base_priority(vcpu)
        self._enqueue(pcpu, vcpu)
        self.machine.request_reschedule(pcpu)

    # ------------------------------------------------------------------
    # Per-pCPU scheduling decision
    # ------------------------------------------------------------------
    def schedule(self, pcpu: "PCPU") -> None:
        """(Re)elect the vCPU to run on ``pcpu``.

        Invoked through the machine's deferred-reschedule mechanism on slice
        expiry, blocks, wakes and ticks.
        """
        now = self.sim.now
        current = pcpu.current
        if current is not None:
            # Account the elapsed slice and put the vCPU back in the queue.
            self._stop_running(current)
            current.set_state(VCPUState.RUNNABLE, now)
            current.priority = self._base_priority(current)
            self._enqueue(pcpu, current)

        candidate = self._pick(pcpu)
        if candidate is None:
            pcpu.set_idle(now)
            return
        self._dequeue(candidate)
        self._start_running(pcpu, candidate)

    def _pick(self, pcpu: "PCPU") -> VCPU | None:
        """Pick the best local candidate, stealing if the queue is empty or
        only has OVER-priority vCPUs while a peer has something better."""
        local = self.runqueues[pcpu]
        best_local = local[0] if local else None
        if best_local is not None and best_local.priority <= Priority.UNDER:
            return best_local
        if self.config.allow_stealing:
            stolen = self._steal(pcpu, better_than=best_local)
            if stolen is not None:
                return stolen
        return best_local

    def _steal(self, thief: "PCPU", better_than: VCPU | None) -> VCPU | None:
        """Steal the best-priority runnable vCPU from the busiest peer."""
        threshold = better_than.priority if better_than is not None else Priority.OVER + 1
        best: VCPU | None = None
        for pcpu, queue in self.runqueues.items():
            if pcpu is thief or not queue:
                continue
            head = queue[0]
            if head.priority < threshold and (best is None or head.priority < best.priority):
                best = head
        return best

    # ------------------------------------------------------------------
    # Queue mechanics
    # ------------------------------------------------------------------
    def _enqueue(self, pcpu: "PCPU", vcpu: VCPU) -> None:
        """Insert by priority, FIFO within a class."""
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_enqueue(vcpu)
        queue = self.runqueues[pcpu]
        index = len(queue)
        for i, other in enumerate(queue):
            if vcpu.priority < other.priority:
                index = i
                break
        queue.insert(index, vcpu)
        vcpu.last_pcpu = pcpu

    def _dequeue(self, vcpu: VCPU) -> None:
        # _enqueue stamps last_pcpu, so a queued vCPU is always on its home
        # runqueue — check it first instead of scanning every pCPU's queue.
        home = vcpu.last_pcpu
        if home is not None:
            queue = self.runqueues[home]
            if vcpu in queue:
                queue.remove(vcpu)
                return
        for queue in self.runqueues.values():
            if vcpu in queue:
                queue.remove(vcpu)
                return

    def _place(self, vcpu: VCPU) -> "PCPU":
        """Choose a runqueue for a waking vCPU.

        Xen semantics: the wake goes to the vCPU's *home* pCPU (where it
        last ran — ``v->processor``), preempting whoever runs there if the
        waker outranks it.  Idle pCPUs do **not** intercept the wake; they
        rescue queued vCPUs via stealing, at their next scheduling event or
        the 10 ms tick.  This home-preemption + delayed-rescue pattern is
        what turns frequent interactive wake-ups in co-located VMs into
        the paper's asymmetric multi-millisecond vCPU stalls, even when
        the pool has idle capacity.
        """
        if vcpu.last_pcpu is not None:
            return vcpu.last_pcpu
        return min(self.machine.pool, key=lambda p: len(self.runqueues[p]))

    def _tickle(self, pcpu: "PCPU", vcpu: VCPU) -> None:
        """Preempt ``pcpu`` if the newly runnable vCPU outranks its current.

        Honors Xen's scheduler rate limit: a current that started running
        less than ``ratelimit_ns`` ago finishes that window first, so the
        preemption is deferred, not dropped.
        """
        current = pcpu.current
        if current is None:
            self.machine.request_reschedule(pcpu)
            return
        if vcpu.priority >= current.priority:
            return
        started = current.run_started_at
        ratelimit = self.config.ratelimit_ns
        if started is not None and self.sim.now - started < ratelimit:
            self.sim.schedule(
                started + ratelimit - self.sim.now,
                self._ratelimit_expired,
                pcpu,
                current,
            )
        else:
            self.machine.request_reschedule(pcpu)

    def _ratelimit_expired(self, pcpu: "PCPU", expected: VCPU) -> None:
        """Deferred preemption: still warranted only if the same vCPU runs
        and somebody better is queued."""
        if pcpu.current is not expected:
            return
        queue = self.runqueues[pcpu]
        if queue and queue[0].priority < expected.priority:
            self.machine.request_reschedule(pcpu)

    def tickle_vcpu(self, vcpu: VCPU) -> None:
        """Expedite scheduling of a specific runnable vCPU.

        The paper's Xen modification: when a reconfiguration IPI is pending
        for a vCPU, the hypervisor prioritizes it so thread migration starts
        promptly.  We implement it as a temporary boost plus a tickle.
        """
        if vcpu.state is not VCPUState.RUNNABLE:
            return
        self._dequeue(vcpu)
        vcpu.priority = Priority.BOOST
        vcpu.boosted = True
        pcpu = self._place(vcpu)
        self._enqueue(pcpu, vcpu)
        self._tickle(pcpu, vcpu)

    # ------------------------------------------------------------------
    # Running-interval bookkeeping
    # ------------------------------------------------------------------
    def _start_running(self, pcpu: "PCPU", vcpu: VCPU) -> None:
        now = self.sim.now
        vcpu.set_state(VCPUState.RUNNING, now)
        vcpu.pcpu = pcpu
        vcpu.last_pcpu = pcpu
        vcpu.run_started_at = now
        pcpu.set_current(vcpu, now)
        pcpu.arm_slice(self.config.timeslice_ns)
        if vcpu.domain.cap is not None:
            self.arm_cap_timer(vcpu.domain)
        self.machine.vcpu_context_entered(vcpu)

    def _stop_running(self, vcpu: VCPU) -> None:
        """Stop the RUNNING interval: burn credits, inform the guest."""
        now = self.sim.now
        pcpu = vcpu.pcpu
        assert pcpu is not None and vcpu.run_started_at is not None
        elapsed = now - vcpu.run_started_at
        self._burn(vcpu, elapsed)
        self.machine.vcpu_context_left(vcpu)
        pcpu.clear_current(now)
        vcpu.pcpu = None
        vcpu.run_started_at = None
        vcpu.boosted = False

    def _burn(self, vcpu: VCPU, elapsed: int) -> None:
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_burn(vcpu, elapsed)
        vcpu.credits -= elapsed
        domain = vcpu.domain
        domain.window_consumed_ns += elapsed
        domain.total_consumed_ns += elapsed
        if (
            domain.cap is not None
            and domain not in self._parked
            and not self._cap_ok(domain)
        ):
            self._park(domain)

    def _base_priority(self, vcpu: VCPU) -> Priority:
        return Priority.UNDER if vcpu.credits >= 0 else Priority.OVER

    # ------------------------------------------------------------------
    # Cap enforcement (Xen's hard cap: over-cap domains are parked —
    # removed from the runqueues — until the next accounting).
    # ------------------------------------------------------------------
    def _cap_ok(self, domain: Domain) -> bool:
        limit = domain.cap * self.config.acct_ns
        return domain.window_consumed_ns <= limit

    def _window_consumption(self, domain: Domain) -> int:
        """Window consumption including in-flight running intervals."""
        total = domain.window_consumed_ns
        now = self.sim.now
        for vcpu in domain.vcpus:
            if vcpu.state is VCPUState.RUNNING and vcpu.run_started_at is not None:
                total += now - vcpu.run_started_at
        return total

    def arm_cap_timer(self, domain: Domain) -> None:
        """Schedule a park check at the projected budget-exhaustion time."""
        if domain.cap is None or domain in self._parked:
            return
        limit = round(domain.cap * self.config.acct_ns)
        budget = limit - self._window_consumption(domain)
        if budget <= 0:
            self._park(domain)
            return
        running = sum(1 for v in domain.vcpus if v.state is VCPUState.RUNNING)
        if running:
            self.sim.schedule(max(1, budget // running), self._cap_check, domain)

    def _cap_check(self, domain: Domain) -> None:
        if domain.cap is None or domain in self._parked:
            return
        limit = round(domain.cap * self.config.acct_ns)
        if self._window_consumption(domain) >= limit:
            self._park(domain)
        else:
            self.arm_cap_timer(domain)

    def _park(self, domain: Domain) -> None:
        """Remove all of an over-cap domain's vCPUs from scheduling until
        the next accounting refills its window budget."""
        if domain in self._parked:
            return
        self._parked[domain] = None
        now = self.sim.now
        for vcpu in domain.vcpus:
            if vcpu.state is VCPUState.RUNNING:
                pcpu = vcpu.pcpu
                self._stop_running(vcpu)
                vcpu.set_state(VCPUState.RUNNABLE, now)
                vcpu.priority = Priority.OVER
                self.machine.request_reschedule(pcpu)
            elif vcpu.state is VCPUState.RUNNABLE:
                self._dequeue(vcpu)
        # Parked vCPUs stay RUNNABLE but off the queues; _acct re-admits.

    def _unpark_all(self) -> None:
        for domain in self._parked:
            for vcpu in domain.vcpus:
                if vcpu.state is VCPUState.RUNNABLE and not self._is_queued(vcpu):
                    vcpu.priority = self._base_priority(vcpu)
                    self._enqueue(self._place(vcpu), vcpu)
        self._parked.clear()

    def _is_queued(self, vcpu: VCPU) -> bool:
        return any(vcpu in queue for queue in self.runqueues.values())

    # ------------------------------------------------------------------
    # Tick and accounting
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        self._tick_count += 1
        # Burn credits of currently running vCPUs incrementally so that
        # priority demotion (UNDER -> OVER) is observed between accountings.
        for pcpu in self.machine.pool:
            vcpu = pcpu.current
            if vcpu is None or vcpu.run_started_at is None:
                continue
            elapsed = now - vcpu.run_started_at
            if elapsed > 0:
                self._burn(vcpu, elapsed)
                vcpu.run_started_at = now
            # Xen demotes BOOST back to UNDER at the first tick it survives.
            if vcpu.boosted:
                vcpu.boosted = False
                vcpu.priority = self._base_priority(vcpu)
                self.machine.request_reschedule(pcpu)
            elif self._base_priority(vcpu) is Priority.OVER and self._has_under_waiter(pcpu):
                # Demoted mid-slice with someone deserving waiting: resched.
                self.machine.request_reschedule(pcpu)
        # Idle-rescue: idle pCPUs re-run their scheduler each tick so they
        # can steal vCPUs stranded behind a busy peer (Xen idlers sleep
        # between tickles; the tick bounds a stranded vCPU's wait).
        backlog = any(queue for queue in self.runqueues.values())
        if backlog:
            for pcpu in self.machine.pool:
                if pcpu.current is None:
                    self.machine.request_reschedule(pcpu)
        ticks_per_acct = self.config.acct_ns // self.config.tick_ns
        if self._tick_count % ticks_per_acct == 0:
            self._acct()
        self.sim.schedule(self.config.tick_ns, self._tick)

    def _has_under_waiter(self, pcpu: "PCPU") -> bool:
        queue = self.runqueues[pcpu]
        return bool(queue) and queue[0].priority <= Priority.UNDER

    def _acct(self) -> None:
        """Distribute one period's credits by weight (csched_acct)."""
        domains = [d for d in self.machine.domains if d.active_vcpus()]
        if not domains:
            return
        if self.config.per_vm_weight:
            weight_of = {d: d.weight for d in domains}
        else:
            # Unmodified Xen 4.5: weight is per-vCPU, so a domain's share
            # shrinks when it freezes vCPUs (the unfairness the paper fixes).
            weight_of = {d: d.weight * len(d.active_vcpus()) for d in domains}
        total_weight = sum(weight_of.values())
        pool_credit = self.config.pcpus * self.config.acct_ns
        acct = self.config.acct_ns
        sanitizer = self.machine.sanitizer
        balances_before = (
            {v: v.credits for d in domains for v in d.active_vcpus()}
            if sanitizer is not None
            else None
        )
        for domain in domains:
            share = pool_credit * weight_of[domain] / total_weight
            active = domain.active_vcpus()
            per_vcpu = share / len(active)
            # One clipped add over the whole domain (vectorized when numpy
            # is present); requeues read priorities, never credits, so
            # splitting the update from the requeue loop is behaviorally
            # identical to the old interleaved per-vCPU form.
            self.accounting_batch(active, per_vcpu, -acct, acct)
            for vcpu in active:
                if vcpu.state is VCPUState.RUNNABLE and not vcpu.boosted:
                    old = vcpu.priority
                    vcpu.priority = self._base_priority(vcpu)
                    if vcpu.priority != old:
                        self._requeue(vcpu)
            domain.window_consumed_ns = 0
        self._unpark_all()
        for domain in domains:
            if domain.cap is not None:
                self.arm_cap_timer(domain)
        # Promotion may enable preemption on some pCPU.
        for pcpu in self.machine.pool:
            queue = self.runqueues[pcpu]
            if queue and pcpu.current is not None and queue[0].priority < pcpu.current.priority:
                self.machine.request_reschedule(pcpu)
            elif queue and pcpu.current is None:
                self.machine.request_reschedule(pcpu)
        if sanitizer is not None:
            assert balances_before is not None
            sanitizer.check_acct(self, domains, balances_before)
            sanitizer.check_runqueues(self)
            sanitizer.check_machine(self.machine.domains)

    def _requeue(self, vcpu: VCPU) -> None:
        for pcpu, queue in self.runqueues.items():
            if vcpu in queue:
                queue.remove(vcpu)
                self._enqueue(pcpu, vcpu)
                return

    # ------------------------------------------------------------------
    # Introspection for tests and the vScale extension
    # ------------------------------------------------------------------
    def runnable_backlog(self) -> int:
        """Total number of queued (waiting) vCPUs across the pool."""
        return sum(len(q) for q in self.runqueues.values())

    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        for pcpu, queue in self.runqueues.items():
            yield pcpu.name, queue

    def _state_extra(self) -> dict:
        return {
            "tick_count": self._tick_count,
            "parked": sorted(d.name for d in self._parked),
        }
