"""A virtual-runtime proportional-share scheduler (Credit2/BVT class).

The paper claims Algorithm 1 "is generic and thus can be easily integrated
into various proportional-share schedulers, such as the virtual-runtime
based ones and their variations".  This module backs that claim with a
second scheduler implementation behind the same interface as
:class:`repro.hypervisor.schedulers.credit.CreditScheduler`:

* each vCPU carries a **virtual runtime** advanced by
  ``elapsed / effective_weight`` while it runs, so CPU time converges to
  weight proportions (per-VM weight: a domain's weight is split across its
  *active* vCPUs, exactly like the paper's patched credit scheduler);
* a global run order by smallest vruntime, with per-pCPU dispatch;
* wake-up latency comes for free: sleepers' vruntimes are clamped forward
  to ``min_vruntime - wake_bonus`` so they run soon but cannot monopolize;
* preemption when the running vCPU's vruntime exceeds the best waiter's
  by more than the scheduling granularity, still honoring the rate limit.

The vScale extension is scheduler-agnostic (it reads per-domain
consumption from :class:`repro.hypervisor.domain.Domain`), so freezing,
extendability and the daemon all work unchanged on top of this scheduler —
`benchmarks/test_generality.py` demonstrates it end to end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.hypervisor.domain import Domain, Priority, VCPU, VCPUState
from repro.hypervisor.schedulers.base import Scheduler, register
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


@register
class VrtScheduler(Scheduler):
    """Virtual-runtime weighted-fair scheduler for the guest pool."""

    name: ClassVar[str] = "vrt"
    weight_proportional: ClassVar[bool] = True
    supports_caps: ClassVar[bool] = False
    uses_credit_accounting: ClassVar[bool] = False

    #: Scheduling granularity: a runnable vCPU must lag the running one by
    #: at least this much weighted-vruntime before preempting it.
    GRANULARITY_NS = 2 * MS
    #: Maximum latency bonus a waking vCPU can carry.
    WAKE_BONUS_NS = 10 * MS
    #: Dispatch slice when nobody is waiting (bounds decision latency).
    MAX_SLICE_NS = 30 * MS

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        #: Runnable vCPUs not currently on a pCPU, ordered lazily.
        self.waiting: list[VCPU] = []
        #: Weighted virtual runtimes (ns of weighted CPU), per vCPU.
        self.vruntime: dict[VCPU, float] = {}
        self._min_vruntime = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.config.tick_ns, self._tick)

    # ------------------------------------------------------------------
    # Weight plumbing
    # ------------------------------------------------------------------
    def _effective_weight(self, vcpu: VCPU) -> float:
        """Per-VM weight split across the domain's active vCPUs."""
        domain = vcpu.domain
        active = max(1, len(domain.active_vcpus()))
        if self.config.per_vm_weight:
            return domain.weight / active
        return float(domain.weight)

    def _advance_min(self) -> None:
        candidates = [self.vruntime.get(v, 0.0) for v in self.waiting]
        for pcpu in self.machine.pool:
            if pcpu.current is not None:
                candidates.append(self.vruntime.get(pcpu.current, 0.0))
        if candidates:
            self._min_vruntime = max(self._min_vruntime, min(candidates))

    # ------------------------------------------------------------------
    # Entry points (same surface as CreditScheduler)
    # ------------------------------------------------------------------
    def vcpu_wake(self, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.BLOCKED:
            return
        now = self.sim.now
        vcpu.set_state(VCPUState.RUNNABLE, now)
        floor = self._min_vruntime - self.WAKE_BONUS_NS
        self.vruntime[vcpu] = max(self.vruntime.get(vcpu, floor), floor)
        vcpu.priority = Priority.UNDER
        self.waiting.append(vcpu)
        self._tickle(vcpu)

    def vcpu_block(self, vcpu: VCPU) -> None:
        now = self.sim.now
        target = VCPUState.BLOCKED
        if vcpu.freeze_pending:
            target = VCPUState.FROZEN
            vcpu.freeze_pending = False
        if vcpu.state is VCPUState.RUNNING:
            pcpu = vcpu.pcpu
            self._stop_running(vcpu)
            vcpu.set_state(target, now)
            self.machine.request_reschedule(pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            if vcpu in self.waiting:
                self.waiting.remove(vcpu)
            vcpu.set_state(target, now)
        elif vcpu.state is VCPUState.BLOCKED and target is VCPUState.FROZEN:
            vcpu.set_state(target, now)

    def vcpu_freeze(self, vcpu: VCPU) -> None:
        now = self.sim.now
        if vcpu.state is VCPUState.RUNNING:
            pcpu = vcpu.pcpu
            self._stop_running(vcpu)
            vcpu.set_state(VCPUState.FROZEN, now)
            self.machine.request_reschedule(pcpu)
        elif vcpu.state is VCPUState.RUNNABLE:
            if vcpu in self.waiting:
                self.waiting.remove(vcpu)
            vcpu.set_state(VCPUState.FROZEN, now)
        elif vcpu.state is VCPUState.BLOCKED:
            vcpu.set_state(VCPUState.FROZEN, now)

    def vcpu_unfreeze(self, vcpu: VCPU) -> None:
        vcpu.freeze_pending = False
        if vcpu.state is not VCPUState.FROZEN:
            return
        vcpu.set_state(VCPUState.BLOCKED, self.sim.now)

    def vcpu_yield(self, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.RUNNING:
            return
        pcpu = vcpu.pcpu
        self._stop_running(vcpu)
        vcpu.set_state(VCPUState.RUNNABLE, self.sim.now)
        # A yielding vCPU steps behind its peers by one granularity.
        self.vruntime[vcpu] = self.vruntime.get(vcpu, 0.0) + self.GRANULARITY_NS
        self.waiting.append(vcpu)
        self.machine.request_reschedule(pcpu)

    def tickle_vcpu(self, vcpu: VCPU) -> None:
        """Expedite a vCPU with a pending reconfiguration IPI."""
        if vcpu.state is not VCPUState.RUNNABLE:
            return
        self.vruntime[vcpu] = self._min_vruntime - self.WAKE_BONUS_NS
        self._tickle(vcpu)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def schedule(self, pcpu: "PCPU") -> None:
        now = self.sim.now
        current = pcpu.current
        if current is not None:
            self._stop_running(current)
            current.set_state(VCPUState.RUNNABLE, now)
            self.waiting.append(current)

        candidate = self._pick()
        if candidate is None:
            pcpu.set_idle(now)
            return
        self.waiting.remove(candidate)
        self._start_running(pcpu, candidate)

    def _pick(self) -> VCPU | None:
        if not self.waiting:
            return None
        return min(
            self.waiting,
            key=lambda v: (self.vruntime.get(v, 0.0), v.domain.name, v.index),
        )

    def _tickle(self, vcpu: VCPU) -> None:
        """Place a newly runnable vCPU: idle pCPU first, else preempt the
        pCPU whose current has the largest vruntime surplus."""
        for pcpu in self.machine.pool:
            if pcpu.current is None:
                self.machine.request_reschedule(pcpu)
                return
        new_vrt = self.vruntime.get(vcpu, 0.0)
        victim: "PCPU | None" = None
        worst_surplus = float(self.GRANULARITY_NS)
        for pcpu in self.machine.pool:
            current = pcpu.current
            assert current is not None
            surplus = self.vruntime.get(current, 0.0) - new_vrt
            if surplus > worst_surplus:
                worst_surplus = surplus
                victim = pcpu
        if victim is None:
            return
        started = victim.current.run_started_at
        ratelimit = self.config.ratelimit_ns
        if started is not None and self.sim.now - started < ratelimit:
            self.sim.schedule(
                started + ratelimit - self.sim.now,
                self._ratelimit_expired,
                victim,
                victim.current,
            )
        else:
            self.machine.request_reschedule(victim)

    def _ratelimit_expired(self, pcpu: "PCPU", expected: VCPU) -> None:
        if pcpu.current is expected and self.waiting:
            self.machine.request_reschedule(pcpu)

    # ------------------------------------------------------------------
    # Run accounting
    # ------------------------------------------------------------------
    def _start_running(self, pcpu: "PCPU", vcpu: VCPU) -> None:
        now = self.sim.now
        vcpu.set_state(VCPUState.RUNNING, now)
        vcpu.pcpu = pcpu
        vcpu.last_pcpu = pcpu
        vcpu.run_started_at = now
        pcpu.set_current(vcpu, now)
        pcpu.arm_slice(self.MAX_SLICE_NS)
        self.machine.vcpu_context_entered(vcpu)

    def _stop_running(self, vcpu: VCPU) -> None:
        now = self.sim.now
        pcpu = vcpu.pcpu
        assert pcpu is not None and vcpu.run_started_at is not None
        elapsed = now - vcpu.run_started_at
        self._charge(vcpu, elapsed)
        self.machine.vcpu_context_left(vcpu)
        pcpu.clear_current(now)
        vcpu.pcpu = None
        vcpu.run_started_at = None

    def _charge(self, vcpu: VCPU, elapsed: int) -> None:
        if elapsed <= 0:
            return
        weight = self._effective_weight(vcpu)
        # Normalize so a weight-256 vCPU advances 1ns of vruntime per ns.
        self.vruntime[vcpu] = self.vruntime.get(vcpu, 0.0) + elapsed * 256.0 / weight
        self.charge_domain(vcpu, elapsed)
        self._advance_min()

    # ------------------------------------------------------------------
    # Tick: charge in-flight runtimes, preempt laggards, rescue waiters
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        for pcpu in self.machine.pool:
            vcpu = pcpu.current
            if vcpu is None or vcpu.run_started_at is None:
                continue
            elapsed = now - vcpu.run_started_at
            if elapsed > 0:
                self._charge(vcpu, elapsed)
                vcpu.run_started_at = now
        if self.waiting:
            best = self._pick()
            assert best is not None
            best_vrt = self.vruntime.get(best, 0.0)
            for pcpu in self.machine.pool:
                if pcpu.current is None:
                    self.machine.request_reschedule(pcpu)
                elif (
                    self.vruntime.get(pcpu.current, 0.0)
                    > best_vrt + self.GRANULARITY_NS
                ):
                    self.machine.request_reschedule(pcpu)
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_runqueues(self)
            sanitizer.check_machine(self.machine.domains)
        self.sim.schedule(self.config.tick_ns, self._tick)

    # ------------------------------------------------------------------
    def runnable_backlog(self) -> int:
        return len(self.waiting)

    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        yield "pool", self.waiting

    def _state_extra(self) -> dict:
        return {
            "vruntime": {
                f"{v.domain.name}/{v.index}": vrt
                for v, vrt in sorted(
                    self.vruntime.items(),
                    key=lambda item: (item[0].domain.name, item[0].index),
                )
            },
            "min_vruntime": self._min_vruntime,
        }
