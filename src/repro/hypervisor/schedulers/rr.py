"""A plain round-robin scheduler: one global FIFO, fixed quantum.

The control group of the generality grid.  It ignores weights and caps
entirely — every runnable vCPU gets the same quantum in arrival order —
so it is deliberately *not* proportional-share.  vScale's Algorithm 1
computes extendability from the pool's slack and the domains' weights,
independent of how the host scheduler actually multiplexes, so the
``n_i = ceil(s_ext/t)`` policy must still hold here; what is lost is only
the weight-proportional allocation the other schedulers provide (the
conformance suite skips that property via ``weight_proportional=False``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.hypervisor.domain import VCPU
from repro.hypervisor.schedulers.base import QueueScheduler, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCPU


@register
class RoundRobinScheduler(QueueScheduler):
    """Global-FIFO round-robin with a fixed time slice."""

    name: ClassVar[str] = "rr"
    weight_proportional: ClassVar[bool] = False
    supports_caps: ClassVar[bool] = False
    uses_credit_accounting: ClassVar[bool] = False

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        #: Runnable vCPUs not on a pCPU, in arrival order.
        self.queue: list[VCPU] = []
        self._tickled = False

    # -- primitive hooks -------------------------------------------------
    def _enqueue(self, vcpu: VCPU) -> None:
        if self._tickled:
            # A reconfiguration-IPI tickle jumps the queue (paper §4.2).
            self.queue.insert(0, vcpu)
        else:
            self.queue.append(vcpu)

    def _dequeue(self, vcpu: VCPU) -> None:
        if vcpu in self.queue:
            self.queue.remove(vcpu)

    def _pick(self, pcpu: "PCPU") -> VCPU | None:
        return self.queue[0] if self.queue else None

    def _charge(self, vcpu: VCPU, elapsed: int) -> None:
        if elapsed <= 0:
            return
        self.charge_domain(vcpu, elapsed)

    def _on_tickle(self, vcpu: VCPU) -> None:
        self._tickled = True

    def _admit(self, vcpu: VCPU) -> None:
        try:
            super()._admit(vcpu)
        finally:
            self._tickled = False

    # -- introspection ---------------------------------------------------
    def runnable_backlog(self) -> int:
        return len(self.queue)

    def runqueues_view(self) -> Iterator[tuple[str, list[VCPU]]]:
        yield "pool", self.queue

    def _state_extra(self) -> dict:
        return {"tickled": self._tickled}
