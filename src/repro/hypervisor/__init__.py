"""Xen-like hypervisor substrate.

This package implements the pieces of Xen that vScale interacts with:

* :mod:`repro.hypervisor.machine` — the physical host, its CPU pool, and the
  hypercall surface exposed to guests.
* :mod:`repro.hypervisor.domain` — domains (VMs), virtual CPUs and the narrow
  guest-facing interface.
* :mod:`repro.hypervisor.schedulers` — the pluggable scheduler zoo behind the
  :class:`~repro.hypervisor.schedulers.Scheduler` interface: the
  proportional-share credit scheduler (30 ms slice, 10 ms tick, 30 ms
  accounting, BOOST/UNDER/OVER priorities — the paper's substrate), a
  Credit2-style scheduler, a CFS-style weight/vruntime scheduler, the
  global-queue vrt scheduler, and a round-robin baseline; selected by name
  via ``HostConfig.scheduler`` or ``REPRO_SCHEDULER``.
* :mod:`repro.hypervisor.irq` — virtual interrupts, IPIs and event channels,
  with post-to-delivery latency accounting.
* :mod:`repro.hypervisor.dom0` — the centralized dom0/libxl monitoring cost
  model that vScale's decentralized channel is compared against (Figure 4).
"""

from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import Domain, GuestInterface, VCPU, VCPUState
from repro.hypervisor.irq import EventChannel, IRQ, IRQClass
from repro.hypervisor.machine import Machine, PCPU
from repro.hypervisor.schedulers import (
    CfsScheduler,
    Credit2Scheduler,
    CreditScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerConfig,
    VrtScheduler,
    available as available_schedulers,
)

__all__ = [
    "HostConfig",
    "Scheduler",
    "SchedulerConfig",
    "CreditScheduler",
    "Credit2Scheduler",
    "CfsScheduler",
    "RoundRobinScheduler",
    "VrtScheduler",
    "available_schedulers",
    "Domain",
    "GuestInterface",
    "VCPU",
    "VCPUState",
    "EventChannel",
    "IRQ",
    "IRQClass",
    "Machine",
    "PCPU",
]
