"""Domains (VMs) and virtual CPUs.

A :class:`Domain` owns a set of :class:`VCPU` objects and a reference to a
guest implementation behind the :class:`GuestInterface` protocol.  The
hypervisor side never reaches into guest state — everything crosses the
boundary through that interface (downcalls) or through hypercall-style
methods on :class:`repro.hypervisor.machine.Machine` (upcalls), mirroring the
cross-layer boundary of the paper.
"""

from __future__ import annotations

import enum
from typing import Protocol, TYPE_CHECKING

from repro.metrics.collectors import Counter, LatencyReservoir, StateTimer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.irq import IRQ, EventChannel
    from repro.hypervisor.machine import Machine, PCPU


class VCPUState(enum.Enum):
    """Hypervisor-visible vCPU states.

    ``FROZEN`` corresponds to vScale's "frozen" vCPU: the guest has evicted
    all work from it and told the hypervisor to stop giving it credits.  It
    is distinct from ``BLOCKED`` (idle, wake-able by any event) because a
    frozen vCPU is skipped by credit accounting and never auto-woken; only
    an explicit unfreeze (or, for the function-call IPI corner case, a
    ``smp_call_function`` during shutdown) brings it back.
    """

    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FROZEN = "frozen"


class Priority(enum.IntEnum):
    """Credit-scheduler priorities, ordered best-first (Xen's csched)."""

    BOOST = 0
    UNDER = 1
    OVER = 2


class GuestInterface(Protocol):
    """What a guest must implement to be hosted by the hypervisor.

    The real system's analogue is the set of entry points Xen uses to run a
    paravirtualized guest: start/stop of a vCPU context and interrupt
    upcalls.
    """

    def vcpu_started(self, vcpu: "VCPU") -> None:
        """The vCPU just started running on ``vcpu.pcpu``."""

    def vcpu_stopped(self, vcpu: "VCPU") -> None:
        """The vCPU was descheduled; freeze all in-guest progress."""

    def deliver_irq(self, vcpu: "VCPU", irq: "IRQ") -> None:
        """An interrupt reached the (running) vCPU."""


class VCPU:
    """One virtual CPU of a domain, as seen by the credit scheduler."""

    __slots__ = (
        "domain",
        "index",
        "state",
        "priority",
        "credits",
        "pcpu",
        "last_pcpu",
        "pending_irqs",
        "boosted",
        "freeze_pending",
        "timer",
        "run_started_at",
        "irq_delivered",
        "ipi_received",
    )

    def __init__(self, domain: "Domain", index: int):
        self.domain = domain
        self.index = index
        self.state = VCPUState.BLOCKED
        self.priority = Priority.UNDER
        #: Credit balance in nanoseconds of pCPU time.
        self.credits: float = 0.0
        #: pCPU this vCPU is currently running on (None unless RUNNING).
        self.pcpu: "PCPU | None" = None
        #: Last pCPU it ran on — used for wake placement affinity.
        self.last_pcpu: "PCPU | None" = None
        #: Interrupts posted while not running, delivered at next start.
        self.pending_irqs: list["IRQ"] = []
        #: Set while the vCPU holds BOOST due to a wake-up.
        self.boosted = False
        #: Algorithm 2 step 3: the guest marked this vCPU for freezing.  It
        #: stops earning credits immediately but keeps running until its
        #: thread migration finishes and it idles into the FROZEN state.
        self.freeze_pending = False
        #: Time-in-state accounting (running / runnable / blocked / frozen).
        self.timer = StateTimer(VCPUState.BLOCKED.value)
        #: Start timestamp of the current RUNNING interval.
        self.run_started_at: int | None = None
        #: Counters for Table 2 / Figures 10 and 13.
        self.irq_delivered = Counter()
        self.ipi_received = Counter()

    @property
    def name(self) -> str:
        return f"{self.domain.name}/v{self.index}"

    @property
    def runnable_or_running(self) -> bool:
        return self.state in (VCPUState.RUNNING, VCPUState.RUNNABLE)

    def set_state(self, new_state: VCPUState, now: int) -> None:
        """Transition state, folding elapsed time into the state timer.

        Transitions into or out of FROZEN are announced to the guest
        *before* they take effect: a guest coalescing its off-CPU scheduler
        ticks must fold the elided ticks under the old freeze condition
        (see ``GuestKernel._coalesce_fold``).
        """
        machine = self.domain.machine
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_vcpu_transition(self, new_state)
        # Hot path: the enabled_for() set lookup keeps untraced runs from
        # paying for record construction on every transition.  The
        # runnable<->running edges are exactly the scheduler's sched/run
        # and sched/stop records (which also carry the pCPU), so emitting
        # them here would double the trace volume for no information.
        if (
            new_state is not self.state
            and machine.tracer.enabled_for("sched")
            and not (
                new_state is VCPUState.RUNNING
                and self.state is VCPUState.RUNNABLE
                or new_state is VCPUState.RUNNABLE
                and self.state is VCPUState.RUNNING
            )
        ):
            machine.tracer.emit(
                now, "sched", "state", self.name,
                old=self.state.value, new=new_state.value,
            )
        if (new_state is VCPUState.FROZEN) != (self.state is VCPUState.FROZEN):
            guest = self.domain.guest
            if guest is not None:
                edge = getattr(guest, "vcpu_frozen_edge", None)
                if edge is not None:
                    edge(self)
        blocked_edge = (new_state is VCPUState.BLOCKED) != (
            self.state is VCPUState.BLOCKED
        )
        self.timer.transition(new_state.value, now)
        self.state = new_state
        if blocked_edge:
            # A guest macro-stepping its ticks reads sibling BLOCKED states
            # (nohz kick), so BLOCKED edges re-evaluate its quiescent
            # regions — after the transition, so the hook sees the new
            # state.
            guest = self.domain.guest
            if guest is not None:
                edge = getattr(guest, "vcpu_blocked_edge", None)
                if edge is not None:
                    edge(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCPU {self.name} {self.state.value} prio={self.priority.name}>"


class Domain:
    """A virtual machine: weight/cap parameters, vCPUs and its guest."""

    def __init__(
        self,
        machine: "Machine",
        name: str,
        vcpu_count: int,
        weight: int = 256,
        cap: float | None = None,
        reservation: float = 0.0,
    ):
        if vcpu_count < 1:
            raise ValueError("a domain needs at least one vCPU")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if cap is not None and cap <= 0:
            raise ValueError("cap, when set, must be positive (in pCPUs)")
        if reservation < 0:
            raise ValueError("reservation cannot be negative")
        self.machine = machine
        self.name = name
        self.weight = weight
        #: Upper bound on CPU consumption, in pCPUs (None = uncapped).
        self.cap = cap
        #: Lower bound on CPU allocation, in pCPUs.
        self.reservation = reservation
        self.vcpus = [VCPU(self, i) for i in range(vcpu_count)]
        self.guest: GuestInterface | None = None
        self.event_channels: list["EventChannel"] = []
        #: CPU consumed in the current vScale accounting window (ns).
        self.window_consumed_ns: int = 0
        #: Latest extendability published by the hypervisor extension, in ns
        #: of CPU per period, and the derived optimal vCPU count.
        self.extendability_ns: int | None = None
        self.optimal_vcpus: int | None = None
        #: When the published values above were last refreshed (sim ns);
        #: the daemon's staleness guard compares against this.
        self.extendability_published_ns: int | None = None
        #: Cumulative consumption, for fairness tests.
        self.total_consumed_ns: int = 0
        #: Post-to-delivery latency distributions per IRQ class.
        self.ipi_delay = LatencyReservoir()
        self.io_delay = LatencyReservoir()

    # ------------------------------------------------------------------
    def attach_guest(self, guest: GuestInterface) -> None:
        if self.guest is not None:
            raise RuntimeError(f"{self.name} already has a guest attached")
        self.guest = guest

    def active_vcpus(self) -> list[VCPU]:
        """vCPUs participating in credit accounting.

        Excludes both fully frozen vCPUs and those marked freeze-pending:
        the paper's csched_acct change removes a vCPU from the domain's
        active list as soon as the guest marks it, so siblings start
        earning more credits without waiting for migration to finish.
        """
        return [
            v
            for v in self.vcpus
            if v.state is not VCPUState.FROZEN and not v.freeze_pending
        ]

    def frozen_vcpus(self) -> list[VCPU]:
        return [v for v in self.vcpus if v.state is VCPUState.FROZEN]

    def new_event_channel(self, name: str, bound_vcpu: int = 0) -> "EventChannel":
        from repro.hypervisor.irq import EventChannel

        channel = EventChannel(self, name, bound_vcpu)
        self.event_channels.append(channel)
        return channel

    # ------------------------------------------------------------------
    # Aggregate accounting helpers used by experiments
    # ------------------------------------------------------------------
    def total_wait_ns(self, now: int) -> int:
        """Total time any vCPU of this domain sat runnable-but-not-running."""
        total = 0
        for vcpu in self.vcpus:
            vcpu.timer.flush(now)
            total += vcpu.timer.total(VCPUState.RUNNABLE.value)
        return total

    def total_run_ns(self, now: int) -> int:
        total = 0
        for vcpu in self.vcpus:
            vcpu.timer.flush(now)
            total += vcpu.timer.total(VCPUState.RUNNING.value)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Domain {self.name} w={self.weight} vcpus={len(self.vcpus)}>"
