"""Compatibility shim: the vrt scheduler moved into the scheduler zoo.

Import :class:`VrtScheduler` from
:mod:`repro.hypervisor.schedulers.vrt` (or select it by name through
the registry in :mod:`repro.hypervisor.schedulers`).
"""

from repro.hypervisor.schedulers.vrt import VrtScheduler

__all__ = ["VrtScheduler"]
