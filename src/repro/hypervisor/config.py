"""Host-level configuration knobs.

Defaults follow the paper's testbed and Xen 4.5's credit-scheduler defaults:
a 30 ms time slice, 10 ms ticks, credit accounting every 30 ms, and a CPU
pool for guest domains that is separate from dom0's dedicated cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import MS, US  # noqa: F401 (US used by downstream configs)


@dataclass
class HostConfig:
    """Configuration of the simulated physical host and its scheduler."""

    #: Number of physical CPUs in the guest pool (dom0 runs outside it).
    pcpus: int = 8
    #: Scheduler time slice — Xen's default is 30 ms.
    timeslice_ns: int = 30 * MS
    #: Credit-burning tick period — Xen's default is 10 ms.
    tick_ns: int = 10 * MS
    #: Credit (re)allocation period — Xen runs accounting every 3 ticks.
    acct_ns: int = 30 * MS
    #: Cost of a world switch between vCPUs on a pCPU.
    ctx_switch_ns: int = 1500
    #: Xen's sched_ratelimit_us (default 1000): a vCPU that just started
    #: running cannot be preempted — even by a BOOST wake — until it has
    #: run this long.  This is what makes cross-vCPU wake-ups expensive
    #: under consolidation: every futex-wake IPI to a busy pCPU stalls up
    #: to a millisecond before the woken vCPU can run.
    ratelimit_ns: int = 1 * MS
    #: Latency of delivering a virtual interrupt to a *running* vCPU.
    irq_delivery_ns: int = 1 * US
    #: vScale extendability recalculation period (paper: 10 ms).
    vscale_period_ns: int = 10 * MS
    #: Use per-VM weight (the paper's modification).  When False, a domain's
    #: share scales with its active vCPU count, as in unmodified Xen 4.5 —
    #: kept for the ablation benchmark.
    per_vm_weight: bool = True
    #: Wake-up boost (Xen's BOOST priority) enabled.
    boost_enabled: bool = True
    #: Enable vCPU migration/stealing between pCPU runqueues.
    allow_stealing: bool = True
    #: Pool scheduler, by registry name (see
    #: :mod:`repro.hypervisor.schedulers`): "credit" (Xen 4.x csched, the
    #: paper's substrate), "credit2", "cfs", "vrt" or "rr".  Accepts a
    #: :class:`repro.hypervisor.schedulers.SchedulerConfig` too.  ``None``
    #: defers to the ``REPRO_SCHEDULER`` environment variable and then to
    #: "credit", resolved when the Machine is built.
    scheduler: str | None = None
    #: Extra labels for experiment bookkeeping.
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pcpus < 1:
            raise ValueError("need at least one pCPU")
        if self.timeslice_ns <= 0 or self.tick_ns <= 0 or self.acct_ns <= 0:
            raise ValueError("timeslice, tick and accounting period must be positive")
        if self.acct_ns % self.tick_ns:
            raise ValueError("accounting period must be a multiple of the tick")
        # Imported here: the schedulers package imports domain, and config
        # must stay importable before the registry is populated.
        from repro.hypervisor.schedulers import SchedulerConfig, get

        if isinstance(self.scheduler, SchedulerConfig):
            self.scheduler = self.scheduler.name
        if self.scheduler is not None:
            get(self.scheduler)  # raises ValueError for unknown names
