"""Wiring a :class:`~repro.tracelog.codec.TraceWriter` into a machine.

Two entry points:

* ``REPRO_TRACE=path`` in the environment — every machine built in the
  process streams its trace to ``path`` (``path``, ``path.1``, ``path.2``
  … when a run builds several machines).  Zero code changes needed; the
  hook is a no-op when the variable is unset, so untraced runs stay
  bit-identical to the goldens.
* :func:`capture_to` — a context manager for programmatic capture, used
  by the replay verifier and the per-cell capture in the parallel
  executor.

``REPRO_TRACE`` is a *single-process* facility: fork-pool workers would
race on the suffix counter.  Multi-process runs should pass
``--trace-dir`` to the experiment runner instead, which routes one
explicit path per cell through :func:`capture_to` inside each worker.
"""

from __future__ import annotations

import atexit
import contextlib
import os
from typing import TYPE_CHECKING, Iterator

from repro.sim.trace import Tracer
from repro.tracelog.codec import TraceWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine

#: Categories captured by default.  "dispatch" (one record per simulator
#: event) is opt-in via REPRO_TRACE_CATEGORIES / the categories argument:
#: it multiplies trace volume several-fold and is only needed when
#: debugging the engine itself.
DEFAULT_CATEGORIES = frozenset(Tracer.KNOWN_CATEGORIES - {"dispatch"})

#: Cap on machines traced per capture, so a pathological loop building
#: machines cannot fill the disk.  Override with REPRO_TRACE_LIMIT.
DEFAULT_MACHINE_LIMIT = 64


class _Capture:
    """One active capture: a base path plus per-machine writers."""

    def __init__(self, path: str, meta: dict | None, categories, limit: int):
        self.path = str(path)
        self.meta = dict(meta or {})
        self.categories = frozenset(categories or DEFAULT_CATEGORIES)
        self.limit = limit
        self.writers: list[TraceWriter] = []

    def _next_path(self) -> str:
        n = len(self.writers)
        return self.path if n == 0 else f"{self.path}.{n}"

    def attach(self, machine: "Machine") -> None:
        if len(self.writers) >= self.limit:
            return
        meta = dict(self.meta)
        meta["machine"] = len(self.writers)
        meta["seed"] = machine.seed
        meta["categories"] = sorted(self.categories)
        writer = TraceWriter(self._next_path(), meta)
        self.writers.append(writer)
        # Stream through the tracer's own record buffer (no per-record
        # sink call): emit's append feeds the writer's batch directly.
        tracer = machine.install_tracer(categories=self.categories)
        writer.stream_into(tracer)

    def close(self) -> None:
        for writer in self.writers:
            writer.close()


_active: _Capture | None = None


def maybe_install(machine: "Machine") -> None:
    """Machine.__init__ hook: attach the active capture, if any.

    Checks the in-process capture first (``capture_to``), then the
    environment.  When neither is set this is a cheap no-op — the
    untraced fast path.
    """
    global _active
    if _active is not None:
        _active.attach(machine)
        return
    path = os.environ.get("REPRO_TRACE")
    if not path:
        return
    categories = _categories_from_env()
    limit = int(os.environ.get("REPRO_TRACE_LIMIT", DEFAULT_MACHINE_LIMIT))
    _active = _Capture(path, {"source": "env"}, categories, limit)
    atexit.register(_close_env_capture)
    _active.attach(machine)


def _categories_from_env() -> frozenset:
    raw = os.environ.get("REPRO_TRACE_CATEGORIES")
    if not raw:
        return DEFAULT_CATEGORIES
    requested = frozenset(c.strip() for c in raw.split(",") if c.strip())
    unknown = requested - Tracer.KNOWN_CATEGORIES
    if unknown:
        raise ValueError(
            f"REPRO_TRACE_CATEGORIES names unknown categories: {sorted(unknown)}"
        )
    return requested


def _close_env_capture() -> None:
    global _active
    if _active is not None:
        _active.close()
        _active = None


@contextlib.contextmanager
def capture_to(
    path: str,
    meta: dict | None = None,
    categories=None,
    limit: int = DEFAULT_MACHINE_LIMIT,
) -> Iterator[_Capture]:
    """Capture every machine built inside the block to ``path``.

    Nesting is rejected: a second in-process capture (or an env capture
    already attached to a machine) would silently steal the other's
    machines.
    """
    global _active
    if _active is not None:
        raise RuntimeError("a trace capture is already active in this process")
    _active = capture = _Capture(path, meta, categories, limit)
    try:
        yield capture
    finally:
        _active = None
        capture.close()
