"""Binary trace streaming and deterministic replay (``repro.tracelog``).

* :mod:`repro.tracelog.codec` — the ``RTLG`` binary format: varint-delta
  timestamps, interned strings, typed detail values.
* :mod:`repro.tracelog.capture` — ``REPRO_TRACE=path`` / ``capture_to``
  wiring of a streaming writer into every machine built.
* :mod:`repro.tracelog.replay` — fingerprinting, replay-from-metadata,
  structured divergence reports.
* :mod:`repro.tracelog.render` / :mod:`repro.tracelog.stats` — Gantt
  timelines (ASCII + SVG) and wakeup-to-run latency distributions.
"""

from repro.tracelog.codec import TraceFormatError, TraceWriter, load
from repro.tracelog.capture import capture_to, maybe_install
from repro.tracelog.replay import (
    DivergenceReport,
    capture_run,
    compare_traces,
    replay_run,
    replay_verify,
    trace_fingerprint,
)

__all__ = [
    "TraceFormatError",
    "TraceWriter",
    "load",
    "capture_to",
    "maybe_install",
    "DivergenceReport",
    "capture_run",
    "compare_traces",
    "replay_run",
    "replay_verify",
    "trace_fingerprint",
]
