"""Replayable experiment cells with JSON-able signatures.

:func:`repro.tracelog.replay.capture_run` embeds a function reference
plus its kwargs in the trace header, so replay targets must take plain
JSON types.  The experiment entry points take enums
(:class:`repro.experiments.setups.Config`), so these thin wrappers
bridge by name — they are what ``scripts/trace_tools.py capture`` and
the CI ``trace-replay`` job invoke.
"""

from __future__ import annotations


def fig6_cell(
    app: str = "cg",
    vcpus: int = 4,
    config: str = "VSCALE",
    seed: int = 3,
    work_scale: float = 0.2,
    scheduler: str | None = None,
):
    """One fig6 NPB cell (active spinning), keyed by config name."""
    from repro.experiments.npb_common import run_cell
    from repro.experiments.setups import Config
    from repro.workloads.openmp import SPINCOUNT_ACTIVE

    return run_cell(
        app,
        vcpus,
        SPINCOUNT_ACTIVE,
        Config[config],
        seed=seed,
        work_scale=work_scale,
        scheduler=scheduler,
    )


def chaos_cell(
    profile: str = "crash",
    app: str = "cg",
    seed: int = 3,
    work_scale: float = 0.2,
    chaos_seed: int = 17,
    scheduler: str | None = None,
):
    """One chaos cell (fault profile + recovery protocols enabled)."""
    from repro.experiments.chaos import run_chaos_cell

    return run_chaos_cell(
        profile,
        app_name=app,
        seed=seed,
        work_scale=work_scale,
        chaos_seed=chaos_seed,
        scheduler=scheduler,
    )
