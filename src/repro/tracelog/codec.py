"""The ``repro.tracelog`` binary trace format.

A trace file is a compact, append-only stream of typed records::

    magic     b"RTLG" + one version byte
    header    varint length + canonical JSON metadata (sorted keys)
    records   a sequence of tagged records:
                0x01 STR    varint id, varint byte-length, UTF-8 bytes
                0x02 EVENT  varint zigzag time-delta (vs previous event),
                            varint category-id, varint event-id,
                            varint subject-id, varint detail count,
                            then per detail: varint key-id, tagged value
                0x03 END    varint total event count (truncation guard)

Every string (category, event name, subject, detail key, string value)
is *interned*: its bytes appear once, in a STR record emitted right
before first use, and every later reference is a small varint id.
Timestamps are zigzag varint deltas against the previous event's
timestamp — simulation time is (weakly) monotonic, so deltas are tiny.

Detail values are tagged:

====  =======================================================
tag   payload
====  =======================================================
0     zigzag varint integer
1     IEEE-754 float, 8 bytes big-endian
2     varint string id
3     boolean True (no payload)
4     boolean False (no payload)
5     None (no payload)
6     varint string id of a canonical-JSON fallback encoding
====  =======================================================

The encoding is a pure function of the record sequence: encoding the
same events always yields the same bytes, which is what makes "same
seed => byte-identical trace file" testable.  Nothing in this module
reads the wall clock or draws randomness.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Iterator

from repro.sim.trace import TraceRecord

MAGIC = b"RTLG"
VERSION = 1

_REC_STR = 0x01
_REC_EVENT = 0x02
_REC_END = 0x03

_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_STR = 2
_TAG_TRUE = 3
_TAG_FALSE = 4
_TAG_NONE = 5
_TAG_JSON = 6

#: Writer buffer flush threshold (bytes).
_FLUSH_BYTES = 1 << 16

#: Records queued before a batch encode.  Encoding per event from cold
#: simulator code pays heavy cache penalties; draining a large batch in
#: one tight loop runs at microbenchmark speed.  The on-disk trace lags
#: live execution by at most this many events (close() drains the rest).
_BATCH_RECORDS = 4096


class TraceFormatError(RuntimeError):
    """Raised for malformed, truncated, or wrong-version trace files."""


# ----------------------------------------------------------------------
# Primitive encoders
# ----------------------------------------------------------------------
def write_varint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_value(buf: bytearray, value: object, intern) -> None:
    # bool is an int subclass: test it first.
    if value is True:
        buf.append(_TAG_TRUE)
    elif value is False:
        buf.append(_TAG_FALSE)
    elif value is None:
        buf.append(_TAG_NONE)
    elif isinstance(value, int):
        buf.append(_TAG_INT)
        write_varint(buf, zigzag(value))
    elif isinstance(value, float):
        buf.append(_TAG_FLOAT)
        buf += struct.pack(">d", value)
    elif isinstance(value, str):
        buf.append(_TAG_STR)
        write_varint(buf, intern(value))
    else:
        # Anything else (lists, tuples, enums rendered by callers) rides
        # a canonical-JSON string so the round trip stays well defined.
        buf.append(_TAG_JSON)
        payload = json.dumps(value, sort_keys=True, default=str)
        write_varint(buf, intern(payload))


class TraceWriter:
    """Streams :class:`~repro.sim.trace.TraceRecord`s to a binary file.

    Usable directly as a :class:`~repro.sim.trace.Tracer` sink (the
    instance is callable).  Writes are buffered and flushed in
    ``_FLUSH_BYTES`` chunks so the per-event overhead stays bounded;
    :meth:`close` appends the END record and is idempotent.
    """

    def __init__(self, path: str, meta: dict | None = None):
        self.path = str(path)
        self.meta = dict(meta or {})
        self._fh: BinaryIO | None = open(self.path, "wb")
        self._buf = bytearray(MAGIC)
        self._buf.append(VERSION)
        header = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        write_varint(self._buf, len(header))
        self._buf += header
        self._strings: dict[str, int] = {}
        #: Encoded-body memo: most traces repeat a small set of payloads
        #: (a vCPU has four states, a pCPU set is small), so the encoded
        #: EVENT body (everything after the time delta) is cached.  Keyed
        #: two-level — ``(category, event, subject)`` to a short list of
        #: ``(details, body)`` pairs — because building a hashable key
        #: from the details dict per event costs more than the lookup.
        self._memo: dict[tuple[str, str, str], list] = {}
        self._pending: list[TraceRecord] = []
        self._last_time = 0
        self.records_written = 0
        #: The per-event fast path handed to ``Tracer.sinks``: a closure
        #: over the pending list, saving a method-dispatch frame per
        #: traced event.  Unlike :meth:`write` it skips the closed-writer
        #: check — events sunk after close() are silently dropped.
        self.sink = self._make_sink()

    def _make_sink(self):
        pending = self._pending
        append = pending.append
        drain = self._drain
        def sink(record: TraceRecord) -> None:
            append(record)
            if len(pending) >= _BATCH_RECORDS:
                drain()
        return sink

    def stream_into(self, tracer) -> None:
        """Make ``tracer`` stream through this writer with zero sink calls.

        The writer's pending batch is adopted as the tracer's record
        buffer, so ``Tracer.emit``'s ordinary append feeds the encoder
        directly — the cheapest capture wiring there is.  The trade-off:
        the tracer's in-memory buffer only holds the undrained tail
        (post-mortem consumers should read the trace file instead).
        """
        tracer.attach_stream(self._pending, self._drain, _BATCH_RECORDS)

    # -- interning -------------------------------------------------------
    def _intern(self, text: str) -> int:
        ident = self._strings.get(text)
        if ident is None:
            ident = self._strings[text] = len(self._strings)
            buf = self._buf
            buf.append(_REC_STR)
            write_varint(buf, ident)
            payload = text.encode("utf-8")
            write_varint(buf, len(payload))
            buf += payload
        return ident

    # -- record emission -------------------------------------------------
    def _encode_body(self, record: TraceRecord) -> bytes:
        # Encode everything after the time delta.  Interning and varint
        # encoding are inlined with single-byte fast paths (ids and
        # detail counts are almost always < 128).  STR records for any
        # new strings land in ``self._buf`` *before* the EVENT record
        # referencing them, hence the pre-pass over details.
        strings = self._strings
        intern = self._intern
        category_id = strings.get(record.category)
        if category_id is None:
            category_id = intern(record.category)
        event_id = strings.get(record.event)
        if event_id is None:
            event_id = intern(record.event)
        subject_id = strings.get(record.subject)
        if subject_id is None:
            subject_id = intern(record.subject)
        items = []
        for key, value in record.details.items():
            key_id = strings.get(key)
            if key_id is None:
                key_id = intern(key)
            if isinstance(value, str):
                value_id = strings.get(value)
                if value_id is None:
                    value_id = intern(value)
                items.append((key_id, _TAG_STR, value_id))
            elif value is None or isinstance(value, (int, float)):
                items.append((key_id, None, value))
            else:
                # JSON fallback — interned here, in the pre-pass, so the
                # STR record cannot land inside the EVENT record.
                payload = json.dumps(value, sort_keys=True, default=str)
                value_id = strings.get(payload)
                if value_id is None:
                    value_id = intern(payload)
                items.append((key_id, _TAG_JSON, value_id))

        body = bytearray()
        append = body.append
        for ident in (category_id, event_id, subject_id, len(items)):
            while ident > 0x7F:
                append((ident & 0x7F) | 0x80)
                ident >>= 7
            append(ident)
        for key_id, tag, value in items:
            while key_id > 0x7F:
                append((key_id & 0x7F) | 0x80)
                key_id >>= 7
            append(key_id)
            if tag is not None:  # _TAG_STR or _TAG_JSON: value is an id
                append(tag)
                while value > 0x7F:
                    append((value & 0x7F) | 0x80)
                    value >>= 7
                append(value)
            elif value is True:
                append(_TAG_TRUE)
            elif value is False:
                append(_TAG_FALSE)
            elif value is None:
                append(_TAG_NONE)
            elif isinstance(value, int):
                append(_TAG_INT)
                value = value << 1 if value >= 0 else ((-value) << 1) - 1
                while value > 0x7F:
                    append((value & 0x7F) | 0x80)
                    value >>= 7
                append(value)
            else:
                append(_TAG_FLOAT)
                body += struct.pack(">d", value)
        return bytes(body)

    def write(self, record: TraceRecord) -> None:
        """Queue one record; encoding happens in :meth:`_drain`'s tight
        loop once a batch accumulates (or on flush/close).  Per-event
        encoding from the middle of cold simulator code would pay heavy
        cache penalties; a drained batch runs at microbenchmark speed."""
        if self._fh is None:
            raise TraceFormatError(f"writer for {self.path} is closed")
        self.sink(record)

    def _drain(self) -> None:
        # Traces repeat a small set of payloads almost always, so the
        # encoded body is looked up in the memo first and only built
        # (with its STR records) on a miss.  A dict-equality probe alone
        # would conflate ``True == 1 == 1.0``, which encode differently,
        # so equal values must also be identical or of the same class.
        # Memo hits are safe to replay because the strings a cached body
        # references were interned — written to the stream — when that
        # body was first built.
        # The sink closure holds a reference to self._pending, so the
        # list is cleared in place rather than rebound.
        pending = self._pending
        if not pending:
            return
        memo = self._memo
        encode_body = self._encode_body
        buf = self._buf
        append = buf.append
        last_time = self._last_time
        for record in pending:
            details = record.details
            body = None
            entries = memo.get((record.category, record.event, record.subject))
            if entries is not None:
                for stored, cached in entries:
                    if stored == details:
                        for key, value in details.items():
                            sv = stored[key]
                            if (
                                sv is not value
                                and sv.__class__ is not value.__class__
                            ):
                                break
                        else:
                            body = cached
                            break
            if body is None:
                body = encode_body(record)
                # High-variance payloads (e.g. a per-event latency
                # integer) would churn the memo, so each slot caches a
                # few shapes and then gives up.
                if entries is None:
                    memo[(record.category, record.event, record.subject)] = [
                        (dict(details), body)
                    ]
                elif len(entries) < 8:
                    entries.append((dict(details), body))
            append(_REC_EVENT)
            time_ns = record.time_ns
            delta = time_ns - last_time
            last_time = time_ns
            value = delta << 1 if delta >= 0 else ((-delta) << 1) - 1
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            buf += body
        self._last_time = last_time
        self.records_written += len(pending)
        pending.clear()
        if len(buf) >= _FLUSH_BYTES:
            self._write_out()

    __call__ = write

    # -- lifecycle -------------------------------------------------------
    def _write_out(self) -> None:
        if self._fh is not None and self._buf:
            self._fh.write(self._buf)
            self._buf = bytearray()

    def flush(self) -> None:
        """Encode queued records and push everything to the OS file —
        after this, the trace so far is readable with ``strict=False``."""
        self._drain()
        self._write_out()
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is None:
            return
        self._drain()
        self._buf.append(_REC_END)
        write_varint(self._buf, self.records_written)
        self._write_out()
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
class _Cursor:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        try:
            value = self.data[self.pos]
        except IndexError:
            raise TraceFormatError(
                f"truncated trace at offset {self.pos}"
            ) from None
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise TraceFormatError(f"truncated trace at offset {self.pos}")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise TraceFormatError(
                    f"varint overflow at offset {self.pos}"
                )

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


def read_header(data: bytes) -> tuple[dict, _Cursor]:
    """Validate magic/version and return (metadata, record cursor)."""
    if data[: len(MAGIC)] != MAGIC:
        raise TraceFormatError("not a repro.tracelog file (bad magic)")
    cursor = _Cursor(data)
    cursor.pos = len(MAGIC)
    version = cursor.byte()
    if version != VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {version} (expected {VERSION})"
        )
    length = cursor.varint()
    try:
        meta = json.loads(cursor.take(length).decode("utf-8"))
    except ValueError as exc:
        raise TraceFormatError(f"corrupt trace metadata: {exc}") from None
    if not isinstance(meta, dict):
        raise TraceFormatError("trace metadata must be a JSON object")
    return meta, cursor


def iter_records(cursor: _Cursor, strict: bool = True) -> Iterator[TraceRecord]:
    """Decode EVENT records from a cursor positioned after the header.

    ``strict=True`` (the default, used by replay verification) raises
    :class:`TraceFormatError` when the END record is missing or its
    count disagrees — both signs of a truncated or corrupted file.
    ``strict=False`` (the post-mortem ``dump`` path) yields whatever
    prefix decodes cleanly from a crashed run's partial trace.
    """
    strings: dict[int, str] = {}
    last_time = 0
    count = 0

    def lookup(ident: int) -> str:
        try:
            return strings[ident]
        except KeyError:
            raise TraceFormatError(
                f"reference to undefined string id {ident}"
            ) from None

    while True:
        if cursor.exhausted:
            if strict:
                raise TraceFormatError(
                    "truncated trace: end marker missing"
                )
            return
        try:
            kind = cursor.byte()
            if kind == _REC_STR:
                ident = cursor.varint()
                length = cursor.varint()
                strings[ident] = cursor.take(length).decode("utf-8")
                continue
            if kind == _REC_END:
                declared = cursor.varint()
                if declared != count:
                    raise TraceFormatError(
                        f"corrupt trace: end marker declares {declared} "
                        f"events, decoded {count}"
                    )
                return
            if kind != _REC_EVENT:
                raise TraceFormatError(
                    f"unknown record kind 0x{kind:02x} at offset {cursor.pos - 1}"
                )
            last_time += unzigzag(cursor.varint())
            category = lookup(cursor.varint())
            event = lookup(cursor.varint())
            subject = lookup(cursor.varint())
            details: dict = {}
            for _ in range(cursor.varint()):
                key = lookup(cursor.varint())
                tag = cursor.byte()
                if tag == _TAG_INT:
                    details[key] = unzigzag(cursor.varint())
                elif tag == _TAG_FLOAT:
                    details[key] = struct.unpack(">d", cursor.take(8))[0]
                elif tag == _TAG_STR:
                    details[key] = lookup(cursor.varint())
                elif tag == _TAG_TRUE:
                    details[key] = True
                elif tag == _TAG_FALSE:
                    details[key] = False
                elif tag == _TAG_NONE:
                    details[key] = None
                elif tag == _TAG_JSON:
                    details[key] = json.loads(lookup(cursor.varint()))
                else:
                    raise TraceFormatError(
                        f"unknown value tag {tag} at offset {cursor.pos - 1}"
                    )
        except TraceFormatError:
            if strict:
                raise
            return
        count += 1
        yield TraceRecord(last_time, category, event, subject, details)


def load(path: str, strict: bool = True) -> tuple[dict, list[TraceRecord]]:
    """Read a whole trace file: ``(metadata, records)``."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from None
    meta, cursor = read_header(data)
    return meta, list(iter_records(cursor, strict=strict))
