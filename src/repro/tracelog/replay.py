"""Replay verification: prove a trace reproduces from its own metadata.

A trace captured through :func:`capture_run` embeds a ``run`` entry in
its header — the dotted reference of the cell function plus its JSON
kwargs.  :func:`replay_run` imports that function and re-executes it
under a fresh capture; :func:`replay_verify` then compares the two event
sequences.  Because the whole stack is deterministic, the replay must be
*identical* — the comparison is a sha256 fingerprint over the canonical
rendering of every event, and any mismatch produces a structured
:class:`DivergenceReport` with the first diverging record and the trace
tail leading up to it (the same shape as the sanitizer's
``InvariantViolation`` tails, so the two read alike in CI logs).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.sim.trace import TraceRecord
from repro.tracelog import codec
from repro.tracelog.capture import capture_to

#: Records shown before the divergence point in a report.
TAIL = 10


def _canonical_line(record: TraceRecord) -> str:
    details = json.dumps(record.details, sort_keys=True, default=str)
    return (
        f"{record.time_ns}\x1f{record.category}\x1f{record.event}"
        f"\x1f{record.subject}\x1f{details}\n"
    )


def fingerprint_records(records: list[TraceRecord]) -> str:
    """SHA-256 over the canonical rendering of an event sequence.

    Metadata is deliberately excluded: two captures of the same run
    through different paths (env vs. executor) must fingerprint alike.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(_canonical_line(record).encode("utf-8"))
    return digest.hexdigest()


def trace_fingerprint(path: str) -> str:
    _, records = codec.load(path)
    return fingerprint_records(records)


@dataclass
class DivergenceReport:
    """Structured outcome of comparing two event sequences."""

    match: bool
    fingerprint_a: str
    fingerprint_b: str
    count_a: int
    count_b: int
    first_divergence: int | None = None
    expected: TraceRecord | None = None
    actual: TraceRecord | None = None
    tail_a: list[TraceRecord] = field(default_factory=list)
    tail_b: list[TraceRecord] = field(default_factory=list)

    def render(self) -> str:
        if self.match:
            return (
                f"traces match: {self.count_a} events, "
                f"fingerprint {self.fingerprint_a[:16]}"
            )
        lines = [
            "trace divergence detected:",
            f"  fingerprint A: {self.fingerprint_a}",
            f"  fingerprint B: {self.fingerprint_b}",
            f"  events: A={self.count_a} B={self.count_b}",
        ]
        if self.first_divergence is not None:
            lines.append(f"  first divergence at event #{self.first_divergence}:")
            lines.append(f"    expected: {self.expected}")
            lines.append(f"    actual:   {self.actual}")
        if self.tail_a:
            lines.append(f"  last {len(self.tail_a)} events before divergence (A):")
            lines.extend(f"    {record}" for record in self.tail_a)
        if self.tail_b and self.tail_b != self.tail_a:
            lines.append(f"  last {len(self.tail_b)} events before divergence (B):")
            lines.extend(f"    {record}" for record in self.tail_b)
        return "\n".join(lines)


def compare_records(
    a: list[TraceRecord], b: list[TraceRecord]
) -> DivergenceReport:
    fp_a = fingerprint_records(a)
    fp_b = fingerprint_records(b)
    if fp_a == fp_b:
        return DivergenceReport(True, fp_a, fp_b, len(a), len(b))
    index = None
    for i, (ra, rb) in enumerate(zip(a, b)):
        if _canonical_line(ra) != _canonical_line(rb):
            index = i
            break
    if index is None:
        # One sequence is a strict prefix of the other.
        index = min(len(a), len(b))
    return DivergenceReport(
        False,
        fp_a,
        fp_b,
        len(a),
        len(b),
        first_divergence=index,
        expected=a[index] if index < len(a) else None,
        actual=b[index] if index < len(b) else None,
        tail_a=a[max(0, index - TAIL):index],
        tail_b=b[max(0, index - TAIL):index],
    )


def compare_traces(path_a: str, path_b: str) -> DivergenceReport:
    _, records_a = codec.load(path_a)
    _, records_b = codec.load(path_b)
    return compare_records(records_a, records_b)


def snapshot_markers(records: list[TraceRecord]) -> list[TraceRecord]:
    """The snapshot-capture markers in a trace — the instants from which
    a checkpoint restore could resume the run mid-stream."""
    return [r for r in records if r.category == "snapshot"]


# ----------------------------------------------------------------------
# Run capture / replay
# ----------------------------------------------------------------------
def _fn_ref(fn) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def _resolve(ref: str):
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname or "." in qualname:
        raise ValueError(f"unsupported function reference: {ref!r}")
    module = importlib.import_module(module_name)
    return getattr(module, qualname)


def capture_run(fn, kwargs: dict, path: str, categories=None):
    """Run ``fn(**kwargs)`` with tracing to ``path``; embed replay meta.

    ``fn`` must be a module-level function and ``kwargs`` JSON-able —
    the constraint that makes the trace self-describing for replay.
    """
    meta = {
        "source": "capture_run",
        "run": {"fn": _fn_ref(fn), "kwargs": kwargs},
    }
    with capture_to(path, meta=meta, categories=categories):
        return fn(**kwargs)


def replay_run(path: str, out_path: str | None = None) -> str:
    """Re-execute the run described in a trace's metadata.

    Returns the path of the freshly captured trace (a temp file unless
    ``out_path`` is given).  Raises ``ValueError`` when the trace has no
    embedded run reference (e.g. env captures of arbitrary scripts).
    """
    meta, _ = codec.load(path)
    run = meta.get("run")
    if not run or "fn" not in run:
        raise ValueError(
            f"trace {path} has no embedded run metadata; "
            "only traces written by capture_run can be replayed"
        )
    fn = _resolve(run["fn"])
    kwargs = run.get("kwargs", {})
    if out_path is None:
        fd, out_path = tempfile.mkstemp(suffix=".rtl", prefix="replay-")
        os.close(fd)
    categories = meta.get("categories")
    capture_run(fn, kwargs, out_path, categories=categories)
    return out_path


def replay_verify(path: str, keep_replay: bool = False) -> DivergenceReport:
    """Replay a trace and compare event sequences.  The core CI check."""
    replayed = replay_run(path)
    try:
        return compare_traces(path, replayed)
    finally:
        if not keep_replay:
            try:
                os.unlink(replayed)
            except OSError:
                pass
