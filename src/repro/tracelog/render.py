"""Gantt rendering of vCPU↔pCPU occupancy from a trace.

Built from the scheduler's ``sched/run`` (carries ``pcpu=``) and
``sched/stop`` events, with freeze intervals overlaid from
``vscale/freeze_mark`` / ``vscale/unfreeze``.  Two backends: a
fixed-width ASCII timeline (one row per vCPU, one column per time
bucket) and a standalone SVG with one rect per occupancy interval and
dashed edges at freeze boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import TraceRecord

_IDLE = "."
_FROZEN = "F"
_PCPU_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"

_SVG_COLORS = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


@dataclass(frozen=True)
class Interval:
    subject: str
    start_ns: int
    end_ns: int
    pcpu: int | None  # None for freeze intervals


def occupancy_intervals(
    records: list[TraceRecord], until_ns: int | None = None
) -> tuple[list[Interval], list[Interval]]:
    """Extract (run intervals, freeze intervals) from a trace.

    Open intervals (a vCPU still running / still frozen when the trace
    ends) are closed at the last event timestamp so partial traces from
    crashed runs still render.
    """
    end = until_ns if until_ns is not None else (
        records[-1].time_ns if records else 0
    )
    runs: list[Interval] = []
    freezes: list[Interval] = []
    running: dict[str, tuple[int, int]] = {}  # subject -> (start, pcpu)
    frozen: dict[str, int] = {}  # subject -> start

    for record in records:
        subject = record.subject
        if record.category == "sched":
            if record.event == "run" and "pcpu" in record.details:
                running[subject] = (record.time_ns, record.details["pcpu"])
            elif record.event == "stop":
                started = running.pop(subject, None)
                if started is not None and record.time_ns > started[0]:
                    runs.append(
                        Interval(subject, started[0], record.time_ns, started[1])
                    )
        elif record.category == "vscale":
            if record.event == "freeze_mark":
                frozen.setdefault(subject, record.time_ns)
            elif record.event == "unfreeze":
                started_at = frozen.pop(subject, None)
                if started_at is not None and record.time_ns > started_at:
                    freezes.append(Interval(subject, started_at, record.time_ns, None))

    for subject, (start, pcpu) in sorted(running.items()):
        if end > start:
            runs.append(Interval(subject, start, end, pcpu))
    for subject, start in sorted(frozen.items()):
        if end > start:
            freezes.append(Interval(subject, start, end, None))
    return runs, freezes


def _subjects(runs: list[Interval], freezes: list[Interval]) -> list[str]:
    return sorted({iv.subject for iv in runs} | {iv.subject for iv in freezes})


def ascii_gantt(records: list[TraceRecord], width: int = 100) -> str:
    """One row per vCPU; each column is a time bucket whose glyph is the
    pCPU index the vCPU occupied ('.' idle, 'F' frozen)."""
    runs, freezes = occupancy_intervals(records)
    subjects = _subjects(runs, freezes)
    if not subjects:
        return "(no sched occupancy events in trace)"
    t0 = min(iv.start_ns for iv in runs + freezes)
    t1 = max(iv.end_ns for iv in runs + freezes)
    span = max(t1 - t0, 1)
    bucket = span / width

    rows = {s: [_IDLE] * width for s in subjects}
    for iv in runs:
        glyph = _PCPU_GLYPHS[iv.pcpu % len(_PCPU_GLYPHS)]
        lo = int((iv.start_ns - t0) / bucket)
        hi = max(lo + 1, int((iv.end_ns - t0) / bucket))
        for col in range(lo, min(hi, width)):
            rows[iv.subject][col] = glyph
    # Freeze overlays win: a frozen vCPU must read as frozen even if a
    # run interval brushes the same bucket.
    for iv in freezes:
        lo = int((iv.start_ns - t0) / bucket)
        hi = max(lo + 1, int((iv.end_ns - t0) / bucket))
        for col in range(lo, min(hi, width)):
            rows[iv.subject][col] = _FROZEN

    label_w = max(len(s) for s in subjects)
    lines = [
        f"time: {t0} .. {t1} ns  ({span / 1e6:.3f} ms, "
        f"{bucket / 1e3:.1f} us/col)  glyph=pcpu  .=idle  F=frozen"
    ]
    lines.extend(f"{s:<{label_w}} |{''.join(rows[s])}|" for s in subjects)
    return "\n".join(lines)


def svg_gantt(records: list[TraceRecord], width: int = 960) -> str:
    """A standalone SVG: one lane per vCPU, colored rects per pCPU
    occupancy, hatched overlays for freeze intervals."""
    runs, freezes = occupancy_intervals(records)
    subjects = _subjects(runs, freezes)
    if not subjects:
        return "<svg xmlns='http://www.w3.org/2000/svg'/>"
    t0 = min(iv.start_ns for iv in runs + freezes)
    t1 = max(iv.end_ns for iv in runs + freezes)
    span = max(t1 - t0, 1)

    lane_h, gap, label_w = 22, 6, 140
    height = len(subjects) * (lane_h + gap) + gap + 20
    scale = (width - label_w - 10) / span
    lane = {s: i for i, s in enumerate(subjects)}

    def x(t: int) -> float:
        return label_w + (t - t0) * scale

    def y(subject: str) -> int:
        return gap + lane[subject] * (lane_h + gap)

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='monospace' font-size='11'>",
        "<defs><pattern id='freeze' width='6' height='6' "
        "patternUnits='userSpaceOnUse' patternTransform='rotate(45)'>"
        "<rect width='6' height='6' fill='none'/>"
        "<line x1='0' y1='0' x2='0' y2='6' stroke='#d62728' "
        "stroke-width='2'/></pattern></defs>",
    ]
    for subject in subjects:
        parts.append(
            f"<text x='4' y='{y(subject) + lane_h - 6}'>{subject}</text>"
        )
        parts.append(
            f"<rect x='{label_w}' y='{y(subject)}' "
            f"width='{width - label_w - 10}' height='{lane_h}' "
            "fill='#f4f4f4'/>"
        )
    for iv in runs:
        color = _SVG_COLORS[iv.pcpu % len(_SVG_COLORS)]
        parts.append(
            f"<rect x='{x(iv.start_ns):.2f}' y='{y(iv.subject)}' "
            f"width='{max((iv.end_ns - iv.start_ns) * scale, 0.5):.2f}' "
            f"height='{lane_h}' fill='{color}'>"
            f"<title>{iv.subject} on pcpu{iv.pcpu} "
            f"[{iv.start_ns}..{iv.end_ns}]</title></rect>"
        )
    for iv in freezes:
        parts.append(
            f"<rect x='{x(iv.start_ns):.2f}' y='{y(iv.subject)}' "
            f"width='{max((iv.end_ns - iv.start_ns) * scale, 0.5):.2f}' "
            f"height='{lane_h}' fill='url(#freeze)' stroke='#d62728' "
            f"stroke-dasharray='3,2'>"
            f"<title>{iv.subject} frozen "
            f"[{iv.start_ns}..{iv.end_ns}]</title></rect>"
        )
    parts.append(
        f"<text x='{label_w}' y='{height - 4}'>"
        f"{t0} .. {t1} ns ({span / 1e6:.3f} ms)</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
