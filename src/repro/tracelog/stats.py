"""Latency and volume statistics derived from a trace.

The headline metric is *wakeup-to-run latency*: how long a vCPU sat
``runnable`` before a scheduler put it on a pCPU, extracted from the
``sched/state`` transition events.  This is the per-scheduler signal the
ROADMAP's latency-conformance axis compares (Akita-style per-VM latency
accounting), and what the ``stats`` subcommand of
``scripts/trace_tools.py`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import TraceRecord


@dataclass
class LatencyDist:
    """Order statistics over a sample of integer-ns latencies."""

    samples: list[int] = field(default_factory=list)

    def add(self, value: int) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> int:
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "p50_ns": self.percentile(0.50),
            "p95_ns": self.percentile(0.95),
            "p99_ns": self.percentile(0.99),
            "max_ns": max(self.samples) if self.samples else 0,
            "mean_ns": (
                sum(self.samples) // len(self.samples) if self.samples else 0
            ),
        }


def wakeup_latency(records: list[TraceRecord]) -> dict[str, LatencyDist]:
    """Per-vCPU runnable→running latency distributions.

    A sample starts when a ``sched/state`` event enters ``runnable`` (a
    genuine wakeup — the runnable↔running edges themselves are not
    traced as state events, being implied by dispatch records) and ends
    at the next ``sched/run`` dispatch of the same subject.
    """
    pending: dict[str, int] = {}
    dists: dict[str, LatencyDist] = {}
    for record in records:
        if record.category != "sched":
            continue
        subject = record.subject
        if record.event == "state":
            if record.details.get("new") == "runnable":
                pending[subject] = record.time_ns
            else:
                pending.pop(subject, None)
        elif record.event == "run":
            started = pending.pop(subject, None)
            if started is not None:
                dists.setdefault(subject, LatencyDist()).add(
                    record.time_ns - started
                )
    return dists


def irq_delay(records: list[TraceRecord]) -> LatencyDist:
    """Distribution of posted-to-delivered IRQ delays (``irq/deliver``
    events carry ``delay_ns``)."""
    dist = LatencyDist()
    for record in records:
        if record.category == "irq" and record.event == "deliver":
            delay = record.details.get("delay_ns")
            if isinstance(delay, int):
                dist.add(delay)
    return dist


def event_counts(records: list[TraceRecord]) -> dict[str, int]:
    """Event volume per ``category/event`` key, sorted by key."""
    counts: dict[str, int] = {}
    for record in records:
        key = f"{record.category}/{record.event}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def render_stats(records: list[TraceRecord]) -> str:
    """The ``trace_tools.py stats`` report."""
    lines = [f"events: {len(records)}"]
    if records:
        span = records[-1].time_ns - records[0].time_ns
        lines.append(
            f"span: {records[0].time_ns} .. {records[-1].time_ns} ns "
            f"({span / 1e6:.3f} ms)"
        )
    lines.append("")
    lines.append("event counts:")
    for key, count in event_counts(records).items():
        lines.append(f"  {key:<28} {count}")

    dists = wakeup_latency(records)
    if dists:
        lines.append("")
        lines.append("wakeup-to-run latency (runnable -> running), per vCPU:")
        header = f"  {'vcpu':<16} {'n':>6} {'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}  (ns)"
        lines.append(header)
        total = LatencyDist()
        for subject in sorted(dists):
            s = dists[subject].summary()
            lines.append(
                f"  {subject:<16} {s['count']:>6} {s['p50_ns']:>10} "
                f"{s['p95_ns']:>10} {s['p99_ns']:>10} {s['max_ns']:>10}"
            )
            total.samples.extend(dists[subject].samples)
        s = total.summary()
        lines.append(
            f"  {'(all)':<16} {s['count']:>6} {s['p50_ns']:>10} "
            f"{s['p95_ns']:>10} {s['p99_ns']:>10} {s['max_ns']:>10}"
        )

    irq = irq_delay(records)
    if irq.count:
        s = irq.summary()
        lines.append("")
        lines.append(
            f"irq post->deliver delay: n={s['count']} p50={s['p50_ns']} "
            f"p95={s['p95_ns']} p99={s['p99_ns']} max={s['max_ns']} ns"
        )
    return "\n".join(lines)
