"""A guest-side hang watchdog for wedged vCPUs.

Crash-stop model: a scripted ``vcpu_hang`` fault wedges one vCPU — an
RT-class thread pinned there spins forever, so fair-class application
threads on that runqueue make no progress (RT always wins).  The vCPU
still burns CPU and answers ticks, which is exactly the failure shape of
a guest kernel soft lockup: alive to the hypervisor, dead to the
workload.

The recovery protocol is a watchdog thread (RT, pinned to vCPU0, like
the vScale daemon): each period it sweeps the hung set in two phases —
first it clears the wedge flag (the spinner exits at its next chunk
boundary), then on the following sweep it drives a freeze/unfreeze cycle
through the balancer, which migrates stranded threads off the runqueue
and brings the vCPU back as schedulable.  Transient freeze failures are
retried next period.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.balancer import VScaleBalancer
from repro.faults.errors import FreezeFailure
from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread

#: How long the wedge spinner computes between exit checks.
_WEDGE_CHUNK_NS = 200 * US


class HangWatchdog:
    """Injects scripted vCPU hangs and clears them with freeze/unfreeze."""

    def __init__(
        self,
        kernel: "GuestKernel",
        balancer: VScaleBalancer | None = None,
        period_ns: int | None = None,
    ):
        self.kernel = kernel
        self.balancer = balancer or VScaleBalancer(kernel)
        #: Sweep period; default two hypervisor recalculation periods.
        self.period_ns = period_ns or 2 * kernel.machine.config.vscale_period_ns
        #: vCPU indices currently wedged (insertion-ordered for determinism).
        self.hung: dict[int, None] = {}
        #: Indices whose wedge was cleared and await the freeze/unfreeze
        #: cycle on the next sweep (the spinner needs one chunk to exit).
        self._clearing: dict[int, None] = {}
        self.thread: "Thread | None" = None

    # ------------------------------------------------------------------
    def install(self) -> "Thread":
        """Spawn the watchdog thread and schedule scripted hang onsets."""
        if self.thread is not None:
            raise RuntimeError("watchdog already installed")
        self.thread = self.kernel.spawn(
            self._behavior(), name="hangdogd", rt=True, pinned_to=0
        )
        faults = self.kernel.machine.faults
        if faults is not None:
            sim = self.kernel.sim
            for at_ns, index in faults.hang_schedule():
                sim.schedule_at(max(at_ns, sim.now), self._start_hang, index)
        return self.thread

    # ------------------------------------------------------------------
    def _recovery(self):
        faults = self.kernel.machine.faults
        return faults.recovery if faults is not None else None

    def _start_hang(self, index: int) -> None:
        """Scripted onset: wedge ``index`` with an RT spinner."""
        kernel = self.kernel
        if index <= 0 or index >= len(kernel.runqueues):
            return
        if index in self.hung or index in self._clearing:
            return
        if index in kernel.cpu_freeze_mask:
            # A frozen vCPU runs nothing, so the hang has no surface yet;
            # the latent fault waits for the vCPU to come back online.
            kernel.sim.schedule(self.period_ns, self._start_hang, index)
            return
        self.hung[index] = None
        recovery = self._recovery()
        if recovery is not None:
            recovery.hangs_injected += 1
        kernel.machine.tracer.emit(
            kernel.sim.now, "fault", "vcpu_hang", f"{kernel.domain.name}/v{index}"
        )
        kernel.spawn(
            self._wedge(index), name=f"wedge/{index}", rt=True, pinned_to=index
        )

    def _wedge(self, index: int):
        while index in self.hung:
            yield Compute(_WEDGE_CHUNK_NS)

    # ------------------------------------------------------------------
    def _behavior(self):
        kernel = self.kernel
        while True:
            timer = SpinFlag("hangdogd.timer")
            kernel.start_timer(self.period_ns, timer)
            yield BlockOn(timer)
            # Phase 2: freeze/unfreeze vCPUs whose spinner has exited.
            for index in list(self._clearing):
                try:
                    if index not in kernel.cpu_freeze_mask:
                        self.balancer.freeze(index)
                        yield Compute(0)
                    self.balancer.unfreeze(index)
                    yield Compute(0)
                except FreezeFailure:
                    # Transient syscall failure: retry at the next sweep.
                    yield Compute(0)
                    continue
                del self._clearing[index]
                recovery = self._recovery()
                if recovery is not None:
                    recovery.watchdog_clears += 1
                kernel.machine.tracer.emit(
                    kernel.sim.now, "vscale", "watchdog_clear",
                    f"{kernel.domain.name}/v{index}",
                )
            # Phase 1: release newly detected wedges; the spinner exits at
            # its next chunk boundary, well before the next sweep.
            for index in list(self.hung):
                del self.hung[index]
                self._clearing[index] = None
