"""Counters for crash-stop faults and their recovery protocols.

Kept separate from :class:`repro.faults.injector.FaultStats` on purpose:
the transient-fault counters are embedded (via ``asdict``) in the pinned
fault-matrix goldens, so growing that dataclass would shift every golden
byte.  Crash/recovery accounting lives here instead and is attached to
the injector as ``FaultInjector.recovery``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class RecoveryStats:
    """What crashed, what recovered, and how long recovery took."""

    #: Daemon crash-stop events injected (process state lost).
    daemon_crashes: int = 0
    #: Daemon restart paths executed after a crash.
    daemon_restarts: int = 0
    #: Restarts that found durable state in xenstore and restored it.
    state_restores: int = 0
    #: Restarts that completed a full post-crash reconvergence cycle.
    recoveries: int = 0
    #: Sum of epochs-to-reconverge over all completed recoveries.
    recovery_epochs_total: int = 0
    #: Worst single recovery, in epochs.
    recovery_epochs_max: int = 0
    #: vCPU hangs injected.
    hangs_injected: int = 0
    #: Hangs cleared by a watchdog freeze/unfreeze cycle.
    watchdog_clears: int = 0
    #: Balancer outage onsets observed by the dom0 poll loop.
    balancer_outages: int = 0
    #: Full re-sync sweeps run when the balancer came back.
    balancer_resyncs: int = 0
    #: Per-domain naive fallback decisions taken while degraded.
    naive_fallback_decisions: int = 0

    @property
    def total_crash_events(self) -> int:
        return self.daemon_crashes + self.hangs_injected + self.balancer_outages

    def mean_recovery_epochs(self) -> float:
        """Average epochs-to-reconverge (0.0 when nothing recovered)."""
        if self.recoveries == 0:
            return 0.0
        return self.recovery_epochs_total / self.recoveries

    def to_dict(self) -> dict:
        return asdict(self)
