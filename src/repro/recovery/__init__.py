"""Crash-stop recovery protocols and deterministic checkpoint/restore.

Three layers (see DESIGN.md §12):

* :mod:`repro.recovery.stats` — crash/recovery counters, attached to the
  fault injector as ``FaultInjector.recovery``;
* :mod:`repro.recovery.watchdog` — the guest-side vCPU hang watchdog;
* :mod:`repro.recovery.checkpoint` — replay-based ``Machine.snapshot()``
  / ``Machine.restore()`` with fingerprint verification.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    RestoreMismatch,
    capture,
    fingerprint,
    restore,
    state_dict,
)
from repro.recovery.stats import RecoveryStats
from repro.recovery.watchdog import HangWatchdog

__all__ = [
    "Checkpoint",
    "HangWatchdog",
    "RecoveryStats",
    "RestoreMismatch",
    "capture",
    "fingerprint",
    "restore",
    "state_dict",
]
